//! F1 — regenerate Figure 1: "Coalitions and Service Links in the
//! Medical World". Prints the live topology (coalitions with members,
//! service links with their paper-style names) read back from the
//! running deployment's co-databases, not from the static tables — so
//! the figure reflects what the federation actually knows.

use webfindit_bench::header;
use webfindit_healthcare::{build_healthcare, coalitions, service_links};

fn main() {
    header(
        "Figure 1",
        "Coalitions and Service Links in the Medical World",
    );
    let dep = build_healthcare(1999).expect("healthcare deployment");

    println!("\nCoalitions ({}):", coalitions().len());
    for (name, doc, _) in coalitions() {
        // Read membership from a live co-database, not the static table.
        let mut members: Vec<String> = Vec::new();
        for site in dep.fed.site_names() {
            let handle = dep.fed.site(&site).expect("site");
            let found = handle.codb.read().members(name).ok();
            if let Some(m) = found {
                members = m;
                break;
            }
        }
        println!("  {name} — {doc}");
        for m in members {
            println!("      * {m}");
        }
    }

    println!("\nService links ({}):", service_links().len());
    for link in service_links() {
        println!(
            "  {:<38} {} → {}   [{}]",
            link.link_name(),
            link.from,
            link.to,
            link.description
        );
    }

    println!("\nDatabases: {}", dep.fed.site_names().len());
    for site in dep.fed.site_names() {
        let handle = dep.fed.site(&site).expect("site");
        let memberships = handle.codb.read().memberships(&site);
        println!(
            "  {:<28} coalitions: {}",
            site,
            if memberships.is_empty() {
                "(service links only)".to_owned()
            } else {
                memberships.join(", ")
            }
        );
    }
    dep.fed.shutdown();
}
