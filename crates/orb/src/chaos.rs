//! Scripted, deterministic fault injection for a running federation.
//!
//! The paper's sites are *autonomous*: they join, crash, and leave the
//! federation without coordination, and WebFINDIT is expected to keep
//! educating the user from whatever metadata remains reachable. This
//! module supplies the adversary for that claim. A [`ChaosPlan`] scripts
//! a schedule of faults — kill or restart a site's server loop, stall a
//! servant, drop/corrupt/delay frames on a specific endpoint, make a
//! co-database refuse connections — keyed to integer *steps* that the
//! test interleaves with its own invocations. Schedules are either
//! hand-written or generated from a `webfindit-base` seed, so a chaos
//! run replays exactly: same seed, same schedule, same outcome.
//!
//! The plumbing half is the [`ChaosRegistry`], shared by every
//! [`IiopChannel`](crate::channel::IiopChannel) in a domain. It owns one
//! [`FaultSlot`] per advertised endpoint (installed into each dialed
//! connection, so flips reach *live* traffic) and the set of endpoints
//! currently refusing connections. The actions a registry cannot express
//! — killing and restarting whole server loops, stalling servants — are
//! delegated to the deployment layer through the [`ChaosHost`] trait.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;
use webfindit_base::rng::StdRng;
use webfindit_base::sync::RwLock;
use webfindit_wire::transport::{Fault, FaultSlot};

/// Shared fault-control plane for every channel in an ORB domain.
///
/// Channels consult the registry at dial time (connection refusals,
/// fault-slot installation); chaos plans mutate it at any time.
#[derive(Default)]
pub struct ChaosRegistry {
    slots: RwLock<BTreeMap<(String, u16), FaultSlot>>,
    refusals: RwLock<BTreeSet<(String, u16)>>,
}

impl ChaosRegistry {
    /// A fresh registry with no faults scheduled.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// The shared fault slot for an advertised endpoint, created on
    /// first use. Every connection dialed to the endpoint installs this
    /// slot, so setting a fault here reaches live traffic immediately.
    pub fn fault_slot(&self, host: &str, port: u16) -> FaultSlot {
        let key = (host.to_owned(), port);
        if let Some(slot) = self.slots.read().get(&key) {
            return slot.clone();
        }
        self.slots.write().entry(key).or_default().clone()
    }

    /// Activate `fault` on every current and future connection to the
    /// endpoint.
    pub fn set_fault(&self, host: &str, port: u16, fault: Fault) {
        self.fault_slot(host, port).set(fault);
    }

    /// Restore faultless delivery for the endpoint.
    pub fn clear_fault(&self, host: &str, port: u16) {
        self.fault_slot(host, port).clear();
    }

    /// Make new connections to the endpoint fail as if refused.
    pub fn refuse(&self, host: &str, port: u16) {
        self.refusals.write().insert((host.to_owned(), port));
    }

    /// Let the endpoint accept connections again.
    pub fn accept(&self, host: &str, port: u16) {
        self.refusals.write().remove(&(host.to_owned(), port));
    }

    /// Whether the endpoint currently refuses new connections.
    pub fn refuses(&self, host: &str, port: u16) -> bool {
        self.refusals.read().contains(&(host.to_owned(), port))
    }

    /// Clear every scheduled fault and refusal.
    pub fn reset(&self) {
        for slot in self.slots.read().values() {
            slot.clear();
        }
        self.refusals.write().clear();
    }
}

impl fmt::Debug for ChaosRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChaosRegistry")
            .field("endpoints", &self.slots.read().len())
            .field("refusals", &self.refusals.read().len())
            .finish()
    }
}

/// One fault to inflict on the federation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosAction {
    /// Tear down a site's server loop; its IORs go dark.
    KillSite(String),
    /// Bring a killed site back on its advertised endpoint.
    RestartSite(String),
    /// Make the site's servants hold every request for `millis`.
    StallSite {
        /// Site to stall.
        site: String,
        /// Hold time per request, in milliseconds.
        millis: u64,
    },
    /// Lift a stall.
    UnstallSite(String),
    /// Activate a wire fault on all traffic to an endpoint.
    EndpointFault {
        /// Advertised host.
        host: String,
        /// Advertised port.
        port: u16,
        /// The wire fault to inject.
        fault: Fault,
    },
    /// Restore faultless delivery to an endpoint.
    ClearEndpoint {
        /// Advertised host.
        host: String,
        /// Advertised port.
        port: u16,
    },
    /// Make an endpoint (a co-database) refuse new connections.
    RefuseConnections {
        /// Advertised host.
        host: String,
        /// Advertised port.
        port: u16,
    },
    /// Let a refusing endpoint accept connections again.
    AcceptConnections {
        /// Advertised host.
        host: String,
        /// Advertised port.
        port: u16,
    },
}

/// A [`ChaosAction`] scheduled at a test-defined step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosEvent {
    /// The step at which the action fires (tests advance steps between
    /// their own invocations; steps are logical, never wall-clock).
    pub step: u32,
    /// What happens at that step.
    pub action: ChaosAction,
}

/// The sites and endpoints a generated plan may target.
#[derive(Debug, Clone, Default)]
pub struct ChaosTargets {
    /// Site identifiers understood by the [`ChaosHost`].
    pub sites: Vec<String>,
    /// Advertised endpoints faults may be placed on.
    pub endpoints: Vec<(String, u16)>,
}

/// What a deployment must expose for a plan to act on it.
///
/// The registry half (frame faults, refusals) is generic; killing,
/// restarting, and stalling are deployment-specific, so the federation
/// layer implements this trait.
pub trait ChaosHost {
    /// Tear down the named site's server loop. Returns `false` if the
    /// site is unknown or already down.
    fn kill_site(&self, site: &str) -> bool;
    /// Restart a killed site on its original advertised endpoint.
    /// Returns `false` if the site is unknown or already up.
    fn restart_site(&self, site: &str) -> bool;
    /// Make the site's servants stall each request for `millis`.
    /// Returns `false` if the site is unknown.
    fn stall_site(&self, site: &str, millis: u64) -> bool;
    /// Lift a stall. Returns `false` if the site is unknown.
    fn unstall_site(&self, site: &str) -> bool;
    /// The registry shared with the deployment's channels.
    fn chaos_registry(&self) -> Arc<ChaosRegistry>;
}

/// A deterministic, replayable schedule of faults.
///
/// Build one by hand with [`ChaosPlan::push`], or generate one from a
/// seed with [`ChaosPlan::generate`]; either way, [`ChaosPlan::digest`]
/// fingerprints the schedule so two runs can prove they executed the
/// same faults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosPlan {
    seed: u64,
    events: Vec<ChaosEvent>,
}

impl ChaosPlan {
    /// An empty plan labeled with `seed` (use [`ChaosPlan::push`] to
    /// script it by hand).
    pub fn new(seed: u64) -> ChaosPlan {
        ChaosPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// The seed this plan was labeled or generated with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[ChaosEvent] {
        &self.events
    }

    /// Schedule `action` at `step`.
    pub fn push(&mut self, step: u32, action: ChaosAction) -> &mut Self {
        self.events.push(ChaosEvent { step, action });
        self
    }

    /// Generate `count` scheduled faults against `targets` from `seed`.
    ///
    /// The schedule is a pure function of `(seed, targets, count)`:
    /// kills are followed by restarts of the same site later in the
    /// plan, endpoint faults by clears, refusals by accepts — so a
    /// generated plan always returns the federation to health by its
    /// final step.
    pub fn generate(seed: u64, targets: &ChaosTargets, count: usize) -> ChaosPlan {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = ChaosPlan::new(seed);
        let mut step = 1u32;
        for _ in 0..count {
            let (inflict, heal) = Self::random_pair(&mut rng, targets);
            let Some(inflict) = inflict else { continue };
            plan.push(step, inflict);
            let gap = rng.gen_range(1u32..=3);
            if let Some(heal) = heal {
                plan.push(step + gap, heal);
            }
            step += gap + 1;
        }
        plan
    }

    /// One random inflict/heal action pair over `targets`.
    fn random_pair(
        rng: &mut StdRng,
        targets: &ChaosTargets,
    ) -> (Option<ChaosAction>, Option<ChaosAction>) {
        let endpoint = |rng: &mut StdRng| {
            let (h, p) = targets.endpoints[rng.gen_range(0..targets.endpoints.len())].clone();
            (h, p)
        };
        // Draw the kind first so the stream of rng values consumed per
        // event is stable regardless of which targets exist.
        let kind = rng.gen_range(0u32..4);
        match kind {
            0 if !targets.sites.is_empty() => {
                let site = targets.sites[rng.gen_range(0..targets.sites.len())].clone();
                (
                    Some(ChaosAction::KillSite(site.clone())),
                    Some(ChaosAction::RestartSite(site)),
                )
            }
            1 if !targets.sites.is_empty() => {
                let site = targets.sites[rng.gen_range(0..targets.sites.len())].clone();
                let millis = rng.gen_range(5u64..=40);
                (
                    Some(ChaosAction::StallSite {
                        site: site.clone(),
                        millis,
                    }),
                    Some(ChaosAction::UnstallSite(site)),
                )
            }
            2 if !targets.endpoints.is_empty() => {
                let (host, port) = endpoint(rng);
                // Note `DropAfter` is deliberately absent: which pooled
                // connection carries which request is scheduler-dependent,
                // so a frame-counting fault would make replay transcripts
                // diverge. Scripted plans may still use it.
                let fault = match rng.gen_range(0u32..4) {
                    0 => Fault::DropFrames,
                    1 => Fault::DelayMs(rng.gen_range(1u64..=20)),
                    2 => Fault::CloseMidFrame,
                    _ => Fault::CorruptMagic,
                };
                (
                    Some(ChaosAction::EndpointFault {
                        host: host.clone(),
                        port,
                        fault,
                    }),
                    Some(ChaosAction::ClearEndpoint { host, port }),
                )
            }
            3 if !targets.endpoints.is_empty() => {
                let (host, port) = endpoint(rng);
                (
                    Some(ChaosAction::RefuseConnections {
                        host: host.clone(),
                        port,
                    }),
                    Some(ChaosAction::AcceptConnections { host, port }),
                )
            }
            _ => (None, None),
        }
    }

    /// Events scheduled at exactly `step`, in insertion order.
    pub fn events_at(&self, step: u32) -> impl Iterator<Item = &ChaosEvent> {
        self.events.iter().filter(move |e| e.step == step)
    }

    /// The last step any event is scheduled at (0 for an empty plan).
    pub fn last_step(&self) -> u32 {
        self.events.iter().map(|e| e.step).max().unwrap_or(0)
    }

    /// Apply every event scheduled at `step` to `host`, returning one
    /// human-readable line per event (for trace output).
    pub fn apply_step(&self, step: u32, host: &dyn ChaosHost) -> Vec<String> {
        let registry = host.chaos_registry();
        let mut applied = Vec::new();
        for event in self.events_at(step) {
            let ok = match &event.action {
                ChaosAction::KillSite(site) => host.kill_site(site),
                ChaosAction::RestartSite(site) => host.restart_site(site),
                ChaosAction::StallSite { site, millis } => host.stall_site(site, *millis),
                ChaosAction::UnstallSite(site) => host.unstall_site(site),
                ChaosAction::EndpointFault {
                    host: h,
                    port,
                    fault,
                } => {
                    registry.set_fault(h, *port, *fault);
                    true
                }
                ChaosAction::ClearEndpoint { host: h, port } => {
                    registry.clear_fault(h, *port);
                    true
                }
                ChaosAction::RefuseConnections { host: h, port } => {
                    registry.refuse(h, *port);
                    true
                }
                ChaosAction::AcceptConnections { host: h, port } => {
                    registry.accept(h, *port);
                    true
                }
            };
            let tag = if ok { "applied" } else { "no-op" };
            applied.push(format!("step {step}: {tag} {:?}", event.action));
        }
        applied
    }

    /// Run the whole plan step by step, calling `between(step)` after
    /// each step's events fire — the hook where a test issues its own
    /// invocations against the degraded federation.
    pub fn run(&self, host: &dyn ChaosHost, mut between: impl FnMut(u32)) -> Vec<String> {
        let mut log = Vec::new();
        for step in 1..=self.last_step() {
            log.extend(self.apply_step(step, host));
            between(step);
        }
        log
    }

    /// A stable fingerprint of the schedule (FNV-1a over the debug
    /// rendering of every event). Two runs of the same seeded plan must
    /// produce identical digests; the CI chaos job fails on divergence.
    pub fn digest(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for event in &self.events {
            for byte in format!("{event:?}").bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webfindit_base::sync::Mutex;

    fn targets() -> ChaosTargets {
        ChaosTargets {
            sites: vec!["site-a".into(), "site-b".into(), "site-c".into()],
            endpoints: vec![("host-a".into(), 9000), ("host-b".into(), 9001)],
        }
    }

    #[test]
    fn registry_shares_slots_with_live_handles() {
        let reg = ChaosRegistry::new();
        let slot = reg.fault_slot("h", 1);
        assert_eq!(slot.get(), Fault::None);
        reg.set_fault("h", 1, Fault::DropFrames);
        // The handle taken before the fault was set sees the flip.
        assert_eq!(slot.get(), Fault::DropFrames);
        reg.clear_fault("h", 1);
        assert_eq!(slot.get(), Fault::None);
    }

    #[test]
    fn registry_tracks_refusals() {
        let reg = ChaosRegistry::new();
        assert!(!reg.refuses("h", 1));
        reg.refuse("h", 1);
        assert!(reg.refuses("h", 1));
        assert!(!reg.refuses("h", 2));
        reg.accept("h", 1);
        assert!(!reg.refuses("h", 1));
    }

    #[test]
    fn reset_clears_faults_and_refusals() {
        let reg = ChaosRegistry::new();
        let slot = reg.fault_slot("h", 1);
        reg.set_fault("h", 1, Fault::CorruptMagic);
        reg.refuse("h", 2);
        reg.reset();
        assert_eq!(slot.get(), Fault::None);
        assert!(!reg.refuses("h", 2));
    }

    #[test]
    fn generated_plans_replay_exactly() {
        let t = targets();
        let a = ChaosPlan::generate(1999, &t, 12);
        let b = ChaosPlan::generate(1999, &t, 12);
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
        assert!(!a.events().is_empty());
        let c = ChaosPlan::generate(7, &t, 12);
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn generated_plans_heal_every_inflicted_fault() {
        let t = targets();
        let plan = ChaosPlan::generate(42, &t, 20);
        let mut down: BTreeSet<String> = BTreeSet::new();
        let mut faulted: BTreeSet<(String, u16)> = BTreeSet::new();
        let mut refusing: BTreeSet<(String, u16)> = BTreeSet::new();
        let mut stalled: BTreeSet<String> = BTreeSet::new();
        for step in 1..=plan.last_step() {
            for e in plan.events_at(step) {
                match &e.action {
                    ChaosAction::KillSite(s) => {
                        down.insert(s.clone());
                    }
                    ChaosAction::RestartSite(s) => {
                        down.remove(s);
                    }
                    ChaosAction::StallSite { site, .. } => {
                        stalled.insert(site.clone());
                    }
                    ChaosAction::UnstallSite(s) => {
                        stalled.remove(s);
                    }
                    ChaosAction::EndpointFault { host, port, .. } => {
                        faulted.insert((host.clone(), *port));
                    }
                    ChaosAction::ClearEndpoint { host, port } => {
                        faulted.remove(&(host.clone(), *port));
                    }
                    ChaosAction::RefuseConnections { host, port } => {
                        refusing.insert((host.clone(), *port));
                    }
                    ChaosAction::AcceptConnections { host, port } => {
                        refusing.remove(&(host.clone(), *port));
                    }
                }
            }
        }
        assert!(down.is_empty(), "unrestarted sites: {down:?}");
        assert!(stalled.is_empty(), "unstalled sites: {stalled:?}");
        assert!(faulted.is_empty(), "uncleared faults: {faulted:?}");
        assert!(refusing.is_empty(), "unaccepted refusals: {refusing:?}");
    }

    struct FakeHost {
        registry: Arc<ChaosRegistry>,
        up: Mutex<BTreeSet<String>>,
        log: Mutex<Vec<String>>,
    }

    impl ChaosHost for FakeHost {
        fn kill_site(&self, site: &str) -> bool {
            self.log.lock().push(format!("kill {site}"));
            self.up.lock().remove(site)
        }
        fn restart_site(&self, site: &str) -> bool {
            self.log.lock().push(format!("restart {site}"));
            self.up.lock().insert(site.to_owned())
        }
        fn stall_site(&self, site: &str, millis: u64) -> bool {
            self.log.lock().push(format!("stall {site} {millis}"));
            self.up.lock().contains(site)
        }
        fn unstall_site(&self, site: &str) -> bool {
            self.log.lock().push(format!("unstall {site}"));
            self.up.lock().contains(site)
        }
        fn chaos_registry(&self) -> Arc<ChaosRegistry> {
            Arc::clone(&self.registry)
        }
    }

    #[test]
    fn scripted_plan_drives_the_host_in_step_order() {
        let host = FakeHost {
            registry: ChaosRegistry::new(),
            up: Mutex::new(["a".to_owned()].into()),
            log: Mutex::new(Vec::new()),
        };
        let mut plan = ChaosPlan::new(0);
        plan.push(1, ChaosAction::KillSite("a".into()))
            .push(
                2,
                ChaosAction::RefuseConnections {
                    host: "h".into(),
                    port: 1,
                },
            )
            .push(3, ChaosAction::RestartSite("a".into()))
            .push(
                3,
                ChaosAction::AcceptConnections {
                    host: "h".into(),
                    port: 1,
                },
            );
        let mut steps_seen = Vec::new();
        let log = plan.run(&host, |s| {
            steps_seen.push(s);
            if s == 2 {
                assert!(
                    host.registry.refuses("h", 1),
                    "refusal should be active mid-plan"
                );
            }
        });
        assert_eq!(steps_seen, vec![1, 2, 3]);
        assert_eq!(*host.log.lock(), vec!["kill a", "restart a"]);
        assert!(host.up.lock().contains("a"));
        assert!(!host.registry.refuses("h", 1));
        assert_eq!(log.len(), 4);
        assert!(log[0].contains("applied"));

        // Unknown site → reported as a no-op, not a panic.
        let mut bad = ChaosPlan::new(0);
        bad.push(1, ChaosAction::KillSite("ghost".into()));
        let lines = bad.apply_step(1, &host);
        assert!(lines[0].contains("no-op"));
    }
}
