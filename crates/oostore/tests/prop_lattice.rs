//! Property-based tests for the object store's class lattice.
//!
//! Invariants:
//! * the lattice is acyclic by construction (`is_subclass_of` never
//!   holds in both directions for distinct classes);
//! * `instances_of(c, true)` equals the union of direct extents over
//!   `{c} ∪ subclasses_transitive(c)`;
//! * attribute visibility is monotonic: a subclass sees every ancestor
//!   attribute name;
//! * delete removes exactly the deleted object from every view.

use webfindit_base::prop::{self, vec_of};
use webfindit_base::rng::StdRng;
use webfindit_oostore::model::{ClassDef, OType, OValue};
use webfindit_oostore::ObjectStore;

/// A random lattice description: class i gets parents drawn from the
/// classes 0..i (guaranteeing acyclicity the same way real schema
/// evolution does: you can only extend what already exists).
#[derive(Debug, Clone)]
struct LatticeSpec {
    /// parents[i] ⊆ 0..i
    parents: Vec<Vec<usize>>,
    /// objects: (class index, value)
    objects: Vec<(usize, i64)>,
}

fn arb_lattice(rng: &mut StdRng) -> LatticeSpec {
    let n = rng.gen_range(2usize..10);
    let parents = (0..n)
        .map(|i| {
            if i == 0 {
                Vec::new()
            } else {
                vec_of(rng, 0..i.min(2) + 1, |r| r.gen_range(0..i))
            }
        })
        .collect();
    let objects = vec_of(rng, 0..30, |r| (r.gen_range(0..n), r.next_u64() as i64));
    LatticeSpec { parents, objects }
}

fn class_name(i: usize) -> String {
    format!("C{i}")
}

fn build(spec: &LatticeSpec) -> ObjectStore {
    let mut store = ObjectStore::new("prop");
    for (i, parents) in spec.parents.iter().enumerate() {
        let mut def = ClassDef::root(class_name(i)).attr(format!("a{i}"), OType::Int);
        let mut seen = std::collections::BTreeSet::new();
        for &p in parents {
            if seen.insert(p) {
                def = def.extends(class_name(p));
            }
        }
        store.define_class(def).expect("acyclic by construction");
    }
    for (class, v) in &spec.objects {
        store
            .create(
                &class_name(*class),
                [(format!("a{class}"), OValue::Int(*v))],
            )
            .expect("valid attr");
    }
    store
}

#[test]
fn lattice_is_acyclic() {
    prop::cases(64, |rng| {
        let spec = arb_lattice(rng);
        let store = build(&spec);
        let n = spec.parents.len();
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let ij = store
                    .is_subclass_of(&class_name(i), &class_name(j))
                    .unwrap();
                let ji = store
                    .is_subclass_of(&class_name(j), &class_name(i))
                    .unwrap();
                assert!(!(ij && ji), "cycle between C{i} and C{j}");
            }
        }
    });
}

#[test]
fn extent_closure_matches_subclass_union() {
    prop::cases(64, |rng| {
        let spec = arb_lattice(rng);
        let store = build(&spec);
        for i in 0..spec.parents.len() {
            let name = class_name(i);
            let mut expected: Vec<_> = store.instances_of(&name, false).unwrap();
            for sub in store.subclasses_transitive(&name).unwrap() {
                expected.extend(store.instances_of(&sub, false).unwrap());
            }
            expected.sort();
            expected.dedup();
            let closure = store.instances_of(&name, true).unwrap();
            assert_eq!(closure, expected);
        }
    });
}

#[test]
fn subclass_sees_ancestor_attributes() {
    prop::cases(64, |rng| {
        let spec = arb_lattice(rng);
        let store = build(&spec);
        let n = spec.parents.len();
        for i in 0..n {
            let attrs: Vec<String> = store
                .all_attributes(&class_name(i))
                .unwrap()
                .into_iter()
                .map(|a| a.name)
                .collect();
            for j in 0..n {
                if store
                    .is_subclass_of(&class_name(i), &class_name(j))
                    .unwrap()
                {
                    assert!(attrs.contains(&format!("a{j}")), "C{i} must see a{j}");
                }
            }
        }
    });
}

#[test]
fn delete_removes_exactly_one() {
    prop::cases(64, |rng| {
        let spec = arb_lattice(rng);
        let mut store = build(&spec);
        let total = store.object_count();
        if let Some(oid) = store
            .instances_of(&class_name(0), true)
            .unwrap()
            .first()
            .copied()
        {
            let class = store.object(oid).unwrap().class.clone();
            store.delete(oid).unwrap();
            assert_eq!(store.object_count(), total - 1);
            assert!(!store.instances_of(&class, false).unwrap().contains(&oid));
            assert!(store.object(oid).is_err());
        }
    });
}

#[test]
fn drop_class_is_exhaustive() {
    prop::cases(64, |rng| {
        let spec = arb_lattice(rng);
        let mut store = build(&spec);
        // Drop class 1 (if it exists) and verify nothing references it.
        if spec.parents.len() > 1 {
            let doomed = store.drop_class(&class_name(1)).unwrap();
            assert!(doomed.contains(&class_name(1)));
            assert!(store.class(&class_name(1)).is_err());
            // No surviving class lists a doomed parent.
            for name in store.class_names() {
                for parent in store.superclasses(&name).unwrap() {
                    assert!(
                        store.class(&parent).is_ok(),
                        "{name} references dropped parent {parent}"
                    );
                }
            }
            // No orphaned objects.
            for c in store.class_names() {
                for oid in store.instances_of(&c, false).unwrap() {
                    assert!(store.object(oid).is_ok());
                }
            }
        }
    });
}
