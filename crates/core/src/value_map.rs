//! Serialization between engine-level results and wire [`Value`]s.
//!
//! Everything crossing an ORB boundary is a self-describing [`Value`];
//! these helpers define the canonical encodings for relational result
//! sets, object rows, and information-source descriptors, with strict
//! decoders (malformed payloads become [`WebfinditError::Protocol`]).

use crate::{WebfinditError, WfResult};
use webfindit_codb::{ExportedFunction, ExportedType, InformationSource};
use webfindit_oostore::OValue;
use webfindit_relstore::exec::ResultSet;
use webfindit_relstore::types::{format_date, Datum};
use webfindit_wire::Value;

/// Encode a [`Datum`] (dates travel as ISO strings tagged by position).
pub fn datum_to_value(d: &Datum) -> Value {
    match d {
        Datum::Null => Value::Null,
        Datum::Int(v) => Value::LongLong(*v),
        Datum::Double(v) => Value::Double(*v),
        Datum::Text(s) => Value::Str(s.clone()),
        Datum::Bool(b) => Value::Bool(*b),
        Datum::Date(days) => Value::record([("date", Value::string(format_date(*days)))]),
    }
}

/// Decode a [`Datum`].
pub fn value_to_datum(v: &Value) -> WfResult<Datum> {
    Ok(match v {
        Value::Null | Value::Void => Datum::Null,
        Value::LongLong(v) => Datum::Int(*v),
        Value::Long(v) => Datum::Int(*v as i64),
        Value::Short(v) => Datum::Int(*v as i64),
        Value::ULong(v) => Datum::Int(*v as i64),
        Value::Double(v) => Datum::Double(*v),
        Value::Float(v) => Datum::Double(*v as f64),
        Value::Str(s) => Datum::Text(s.clone()),
        Value::Bool(b) => Datum::Bool(*b),
        Value::Struct(_) => {
            let iso = v
                .field("date")
                .and_then(Value::as_str)
                .ok_or_else(|| WebfinditError::Protocol("struct datum is not a date".into()))?;
            Datum::Date(
                webfindit_relstore::types::parse_date(iso)
                    .ok_or_else(|| WebfinditError::Protocol(format!("bad date {iso}")))?,
            )
        }
        other => {
            return Err(WebfinditError::Protocol(format!(
                "unexpected datum encoding: {other}"
            )))
        }
    })
}

/// Encode an [`OValue`] (object references travel as their OID number).
pub fn ovalue_to_value(v: &OValue) -> Value {
    match v {
        OValue::Null => Value::Null,
        OValue::Int(i) => Value::LongLong(*i),
        OValue::Double(d) => Value::Double(*d),
        OValue::Text(s) => Value::Str(s.clone()),
        OValue::Bool(b) => Value::Bool(*b),
        OValue::List(items) => Value::Sequence(items.iter().map(ovalue_to_value).collect()),
        OValue::Ref(oid) => Value::record([("oid", Value::ULong(oid.0 as u32))]),
    }
}

/// Encode a relational [`ResultSet`].
pub fn result_set_to_value(rs: &ResultSet) -> Value {
    Value::record([
        (
            "columns",
            Value::Sequence(
                rs.columns
                    .iter()
                    .map(|c| Value::string(c.clone()))
                    .collect(),
            ),
        ),
        (
            "rows",
            Value::Sequence(
                rs.rows
                    .iter()
                    .map(|r| Value::Sequence(r.iter().map(datum_to_value).collect()))
                    .collect(),
            ),
        ),
    ])
}

/// Decode a relational [`ResultSet`].
pub fn value_to_result_set(v: &Value) -> WfResult<ResultSet> {
    let columns = v
        .field("columns")
        .and_then(Value::as_sequence)
        .ok_or_else(|| WebfinditError::Protocol("result set missing columns".into()))?
        .iter()
        .map(|c| {
            c.as_str()
                .map(str::to_owned)
                .ok_or_else(|| WebfinditError::Protocol("non-string column name".into()))
        })
        .collect::<WfResult<Vec<String>>>()?;
    let rows_v = v
        .field("rows")
        .and_then(Value::as_sequence)
        .ok_or_else(|| WebfinditError::Protocol("result set missing rows".into()))?;
    let mut rows = Vec::with_capacity(rows_v.len());
    for r in rows_v {
        let cells = r
            .as_sequence()
            .ok_or_else(|| WebfinditError::Protocol("row is not a sequence".into()))?;
        rows.push(
            cells
                .iter()
                .map(value_to_datum)
                .collect::<WfResult<Vec<Datum>>>()?,
        );
    }
    Ok(ResultSet { columns, rows })
}

/// Encode an information-source descriptor.
pub fn descriptor_to_value(d: &InformationSource) -> Value {
    Value::record([
        ("name", Value::string(d.name.clone())),
        (
            "information_type",
            Value::string(d.information_type.clone()),
        ),
        ("documentation", Value::string(d.documentation_url.clone())),
        ("location", Value::string(d.location.clone())),
        ("wrapper", Value::string(d.wrapper.clone())),
        (
            "interface",
            Value::Sequence(d.interface.iter().map(exported_type_to_value).collect()),
        ),
    ])
}

fn exported_type_to_value(t: &ExportedType) -> Value {
    Value::record([
        ("name", Value::string(t.name.clone())),
        ("description", Value::string(t.description.clone())),
        (
            "attributes",
            Value::Sequence(
                t.attributes
                    .iter()
                    .map(|(ty, name)| {
                        Value::record([
                            ("type", Value::string(ty.clone())),
                            ("name", Value::string(name.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "functions",
            Value::Sequence(
                t.functions
                    .iter()
                    .map(|f| {
                        Value::record([
                            ("name", Value::string(f.name.clone())),
                            ("returns", Value::string(f.returns.clone())),
                            (
                                "params",
                                Value::Sequence(
                                    f.params.iter().map(|p| Value::string(p.clone())).collect(),
                                ),
                            ),
                            ("description", Value::string(f.description.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Decode an information-source descriptor.
pub fn value_to_descriptor(v: &Value) -> WfResult<InformationSource> {
    let get = |name: &str| -> WfResult<String> {
        v.field(name)
            .and_then(Value::as_str)
            .map(str::to_owned)
            .ok_or_else(|| WebfinditError::Protocol(format!("descriptor missing {name}")))
    };
    let mut interface = Vec::new();
    if let Some(types) = v.field("interface").and_then(Value::as_sequence) {
        for t in types {
            interface.push(value_to_exported_type(t)?);
        }
    }
    Ok(InformationSource {
        name: get("name")?,
        information_type: get("information_type")?,
        documentation_url: get("documentation")?,
        location: get("location")?,
        wrapper: get("wrapper")?,
        interface,
    })
}

fn value_to_exported_type(v: &Value) -> WfResult<ExportedType> {
    let name = v
        .field("name")
        .and_then(Value::as_str)
        .ok_or_else(|| WebfinditError::Protocol("exported type missing name".into()))?
        .to_owned();
    let description = v
        .field("description")
        .and_then(Value::as_str)
        .unwrap_or("")
        .to_owned();
    let mut attributes = Vec::new();
    if let Some(attrs) = v.field("attributes").and_then(Value::as_sequence) {
        for a in attrs {
            let ty = a
                .field("type")
                .and_then(Value::as_str)
                .unwrap_or("string")
                .to_owned();
            let an = a
                .field("name")
                .and_then(Value::as_str)
                .ok_or_else(|| WebfinditError::Protocol("attribute missing name".into()))?
                .to_owned();
            attributes.push((ty, an));
        }
    }
    let mut functions = Vec::new();
    if let Some(funcs) = v.field("functions").and_then(Value::as_sequence) {
        for f in funcs {
            functions.push(ExportedFunction {
                name: f
                    .field("name")
                    .and_then(Value::as_str)
                    .ok_or_else(|| WebfinditError::Protocol("function missing name".into()))?
                    .to_owned(),
                returns: f
                    .field("returns")
                    .and_then(Value::as_str)
                    .unwrap_or("void")
                    .to_owned(),
                params: f
                    .field("params")
                    .and_then(Value::as_sequence)
                    .map(|ps| {
                        ps.iter()
                            .filter_map(|p| p.as_str().map(str::to_owned))
                            .collect()
                    })
                    .unwrap_or_default(),
                description: f
                    .field("description")
                    .and_then(Value::as_str)
                    .unwrap_or("")
                    .to_owned(),
            });
        }
    }
    Ok(ExportedType {
        name,
        attributes,
        functions,
        description,
    })
}

/// Decode a list of strings (coalition names, member names, …).
pub fn value_to_strings(v: &Value) -> WfResult<Vec<String>> {
    v.as_sequence()
        .ok_or_else(|| WebfinditError::Protocol("expected a string sequence".into()))?
        .iter()
        .map(|s| {
            s.as_str()
                .map(str::to_owned)
                .ok_or_else(|| WebfinditError::Protocol("expected a string".into()))
        })
        .collect()
}

/// Encode a list of strings.
pub fn strings_to_value<I: IntoIterator<Item = String>>(items: I) -> Value {
    Value::Sequence(items.into_iter().map(Value::Str).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datum_roundtrip() {
        let data = vec![
            Datum::Null,
            Datum::Int(42),
            Datum::Double(2.5),
            Datum::Text("x".into()),
            Datum::Bool(true),
            Datum::Date(webfindit_relstore::types::parse_date("1999-06-15").unwrap()),
        ];
        for d in data {
            let v = datum_to_value(&d);
            assert_eq!(value_to_datum(&v).unwrap(), d);
        }
    }

    #[test]
    fn result_set_roundtrip() {
        let rs = ResultSet {
            columns: vec!["id".into(), "name".into()],
            rows: vec![
                vec![Datum::Int(1), Datum::Text("a".into())],
                vec![Datum::Int(2), Datum::Null],
            ],
        };
        let v = result_set_to_value(&rs);
        assert_eq!(value_to_result_set(&v).unwrap(), rs);
    }

    #[test]
    fn descriptor_roundtrip() {
        let d = InformationSource {
            name: "RBH".into(),
            information_type: "Research and Medical".into(),
            documentation_url: "http://docs/RBH".into(),
            location: "dba.icis.qut.edu.au".into(),
            wrapper: "dba.icis.qut.edu.au/WebTassiliOracle".into(),
            interface: vec![ExportedType {
                name: "ResearchProjects".into(),
                attributes: vec![("string".into(), "Title".into())],
                functions: vec![ExportedFunction {
                    name: "Funding".into(),
                    params: vec!["Title x".into()],
                    returns: "real".into(),
                    description: "budget".into(),
                }],
                description: "projects".into(),
            }],
        };
        let v = descriptor_to_value(&d);
        assert_eq!(value_to_descriptor(&v).unwrap(), d);
    }

    #[test]
    fn malformed_payloads_rejected() {
        assert!(value_to_result_set(&Value::Long(5)).is_err());
        assert!(value_to_descriptor(&Value::record([("name", Value::Long(1))])).is_err());
        assert!(value_to_strings(&Value::Long(1)).is_err());
        assert!(value_to_datum(&Value::Sequence(vec![])).is_err());
    }
}
