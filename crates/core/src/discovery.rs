//! The incremental discovery algorithm of §2, parallelized.
//!
//! "Initially, the user specifies the query in terms of relevant
//! information […] The query is sent to a local metadata repository […]
//! If the local metadata repository fails to resolve the user's query,
//! using the information on clusters' inter-relationships, the local
//! repository sends the query to one or more remote metadata
//! repositories."
//!
//! [`DiscoveryEngine::find`] implements that as a breadth-first search
//! over co-databases:
//!
//! * **Level 0** — the local co-database (a local lookup; the user is a
//!   user of a participating database, so this costs no network).
//! * **Level k ≥ 1** — remote co-databases reached through the previous
//!   level's inter-relationships: coalition peers (other members of the
//!   coalitions known there) and service-link endpoints. Each remote
//!   probe is a naming lookup plus GIOP invocations, all counted in
//!   [`DiscoveryStats`].
//!
//! The search stops at the first level that produces leads (all leads
//! of that level are returned, supporting the paper's "the system
//! prompts the user to select the most interesting leads").
//!
//! # Parallel wave fanout
//!
//! The sites of one BFS wave are independent: each probe talks to a
//! different co-database. [`DiscoveryEngine::find`] therefore dispatches
//! every wave over a bounded pool of [`DiscoveryEngine::max_workers`]
//! scoped threads, so naming resolution, the `find_coalitions` /
//! `find_links` queries, and coalition-member expansion of several sites
//! are in flight at once. Results are merged **in site-name order**, so
//! the outcome (leads, degraded sites, visit counts) is byte-identical
//! to a serial run (`max_workers = 1`); parallelism changes only the
//! wall-clock. Chaos-killed sites surface in
//! [`DiscoveryOutcome::degraded`] exactly as they do serially.
//!
//! # Metadata caching
//!
//! Two caches cut the per-probe round-trips:
//!
//! * the federation-wide [`webfindit_orb::naming::IorCache`] in front of
//!   naming resolution (a hit skips the naming round-trip entirely;
//!   entries are invalidated the moment an invocation on the cached
//!   reference fails), and
//! * a per-site [`CodbAnswerCache`] of co-database answers (topic →
//!   coalitions/links, coalition → members, the coalition and link
//!   lists), keyed by the co-database's **version stamp**. Every visit
//!   makes exactly one live `version` call — the liveness probe and the
//!   coherence check in one round-trip. Any registration or mutation
//!   bumps the stamp, so stale answers are never served; a site that
//!   cannot answer the version call is degraded, never served from
//!   cache.

use crate::failure::degrade_reason;
use crate::federation::Federation;
use crate::servants::value_to_link;
use crate::value_map::value_to_strings;
use crate::{WebfinditError, WfResult};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use webfindit_base::sync::Mutex;
use webfindit_codb::{LinkEnd, ServiceLink};
use webfindit_orb::OrbError;
use webfindit_wire::{Ior, Value};

/// What a discovery found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lead {
    /// A coalition advertising the requested information.
    Coalition {
        /// Coalition name.
        name: String,
        /// The site whose co-database reported it.
        via_site: String,
        /// BFS distance (0 = local).
        distance: usize,
    },
    /// A service link whose description matches the request.
    Link {
        /// The link.
        link: ServiceLink,
        /// The site whose co-database reported it.
        via_site: String,
        /// BFS distance.
        distance: usize,
    },
}

impl Lead {
    /// Distance at which this lead was found.
    pub fn distance(&self) -> usize {
        match self {
            Lead::Coalition { distance, .. } | Lead::Link { distance, .. } => *distance,
        }
    }

    /// The coalition name, if this is a coalition lead.
    pub fn coalition_name(&self) -> Option<&str> {
        match self {
            Lead::Coalition { name, .. } => Some(name),
            Lead::Link { .. } => None,
        }
    }
}

/// Cost accounting for one discovery.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiscoveryStats {
    /// GIOP invocations on remote co-database servants. Answers served
    /// from the metadata cache cost none; the per-visit `version` probe
    /// always costs one.
    pub codb_queries: u64,
    /// Naming-service resolutions that went to the wire ([`IorCache`]
    /// hits cost none).
    ///
    /// [`IorCache`]: webfindit_orb::naming::IorCache
    pub naming_lookups: u64,
    /// Distinct sites whose co-database was consulted (incl. local).
    pub sites_visited: usize,
    /// BFS level at which the first lead appeared (None = nothing found).
    pub found_at_level: Option<usize>,
}

impl DiscoveryStats {
    /// Total remote round-trips (codb queries + naming lookups).
    pub fn total_round_trips(&self) -> u64 {
        self.codb_queries + self.naming_lookups
    }
}

pub use crate::failure::SiteFailure;

/// The outcome of one discovery.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscoveryOutcome {
    /// All leads found at the first productive level.
    pub leads: Vec<Lead>,
    /// Sites the traversal could not reach; non-empty means `leads`
    /// covers only the surviving subtree of the federation.
    pub degraded: Vec<SiteFailure>,
    /// Cost accounting.
    pub stats: DiscoveryStats,
}

impl DiscoveryOutcome {
    /// True if anything was found.
    pub fn found(&self) -> bool {
        !self.leads.is_empty()
    }

    /// True if every consulted site answered (the result is complete).
    pub fn complete(&self) -> bool {
        self.degraded.is_empty()
    }

    /// Names of the sites that could not be consulted.
    pub fn degraded_sites(&self) -> Vec<&str> {
        self.degraded.iter().map(|f| f.site.as_str()).collect()
    }
}

/// Cached answers of one co-database, valid for one version stamp.
#[derive(Debug, Clone, Default)]
struct SiteAnswers {
    version: u64,
    coalitions_by_topic: HashMap<String, Vec<String>>,
    links_by_topic: HashMap<String, Vec<ServiceLink>>,
    coalition_list: Option<Vec<String>>,
    members: HashMap<String, Vec<String>>,
    service_links: Option<Vec<ServiceLink>>,
}

/// A per-site cache of co-database answers, keyed by version stamp.
///
/// Every [`webfindit_codb::CoDatabase`] mutation bumps its version
/// stamp; a cached answer is served only when a **live** `version` call
/// on the site returns the stamp the answer was recorded under, so the
/// cache can never hide a registration, a withdrawal, or a dead site.
/// Hits and misses are counted in the client ORB's
/// [`webfindit_orb::OrbMetrics`].
#[derive(Debug, Default)]
pub struct CodbAnswerCache {
    sites: Mutex<HashMap<String, SiteAnswers>>,
}

impl CodbAnswerCache {
    /// An empty cache.
    pub fn new() -> CodbAnswerCache {
        CodbAnswerCache::default()
    }

    /// Number of sites with cached answers.
    pub fn len(&self) -> usize {
        self.sites.lock().len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.sites.lock().is_empty()
    }

    /// Drop every cached answer.
    pub fn clear(&self) {
        self.sites.lock().clear();
    }

    /// Drop whatever is cached for `site` (its probe failed).
    fn forget(&self, site: &str) {
        self.sites.lock().remove(&site.to_ascii_lowercase());
    }

    fn with_current<T>(
        &self,
        site: &str,
        version: u64,
        read: impl FnOnce(&SiteAnswers) -> Option<T>,
    ) -> Option<T> {
        let guard = self.sites.lock();
        guard
            .get(site)
            .filter(|e| e.version == version)
            .and_then(read)
    }

    fn store(&self, site: &str, version: u64, write: impl FnOnce(&mut SiteAnswers)) {
        let mut guard = self.sites.lock();
        let entry = guard.entry(site.to_owned()).or_default();
        if entry.version != version {
            *entry = SiteAnswers {
                version,
                ..SiteAnswers::default()
            };
        }
        write(entry);
    }
}

/// Expand a co-database's inter-relationships into candidate sites:
/// members of every known coalition, database link endpoints directly,
/// and coalition link endpoints via the member lists. `members_of`
/// answers `None` for unknown coalitions (or unreachable servants);
/// those expand to nothing, matching the tolerant serial behaviour.
fn expand_interrelationships(
    coalitions: &[String],
    links: &[ServiceLink],
    members_of: &mut dyn FnMut(&str) -> Option<Vec<String>>,
    out: &mut Vec<String>,
) {
    for c in coalitions {
        if let Some(m) = members_of(c) {
            out.extend(m);
        }
    }
    for link in links {
        for end in [&link.from, &link.to] {
            match end {
                LinkEnd::Database(name) => out.push(name.clone()),
                LinkEnd::Coalition(c) => {
                    if let Some(m) = members_of(c) {
                        out.extend(m);
                    }
                }
            }
        }
    }
}

/// Case-normalized frontier insertion: one entry per site regardless of
/// the case its name arrived in, keeping the first-seen spelling for
/// the (case-sensitive) naming lookup.
fn propose(frontier: &mut BTreeMap<String, String>, name: String) {
    frontier.entry(name.to_ascii_lowercase()).or_insert(name);
}

/// Everything one site probe produced, merged serially after the wave.
struct SiteProbe {
    site: String,
    leads: Vec<Lead>,
    failure: Option<SiteFailure>,
    expansion: Vec<String>,
    naming_lookups: u64,
    codb_queries: u64,
    /// The failure was a circuit-breaker rejection — possibly a
    /// half-open race against a wave-mate (see [`DiscoveryEngine::run_wave`]).
    breaker_rejected: bool,
}

impl SiteProbe {
    fn new(site: &str) -> SiteProbe {
        SiteProbe {
            site: site.to_owned(),
            leads: Vec::new(),
            failure: None,
            expansion: Vec::new(),
            naming_lookups: 0,
            codb_queries: 0,
            breaker_rejected: false,
        }
    }

    fn fail(&mut self, distance: usize, e: &WebfinditError) {
        self.breaker_rejected = matches!(e, WebfinditError::Orb(OrbError::CircuitOpen { .. }));
        self.failure = Some(SiteFailure {
            site: self.site.clone(),
            distance,
            reason: degrade_reason(e),
        });
    }
}

/// The §2 resolution engine.
pub struct DiscoveryEngine {
    fed: Arc<Federation>,
    /// Maximum BFS depth (levels of remote expansion).
    pub max_depth: usize,
    /// Worker-pool bound for one wave's concurrent site probes.
    /// `1` reproduces the serial engine exactly; larger values change
    /// only the wall-clock, never the outcome.
    pub max_workers: usize,
    codb_cache: Arc<CodbAnswerCache>,
}

impl DiscoveryEngine {
    /// Create an engine over a federation with the default depth and
    /// fanout bounds.
    pub fn new(fed: Arc<Federation>) -> DiscoveryEngine {
        DiscoveryEngine {
            fed,
            max_depth: 8,
            max_workers: 8,
            codb_cache: Arc::new(CodbAnswerCache::new()),
        }
    }

    /// The engine's co-database answer cache (kept across finds; a
    /// benchmark clears it to measure cold-cache latency).
    pub fn codb_cache(&self) -> &Arc<CodbAnswerCache> {
        &self.codb_cache
    }

    fn fetch_strings(&self, ior: &Ior, op: &str, args: &[Value]) -> WfResult<Vec<String>> {
        let v = self.fed.invoke(ior, op, args)?;
        value_to_strings(&v)
    }

    fn fetch_links(&self, ior: &Ior, op: &str, args: &[Value]) -> WfResult<Vec<ServiceLink>> {
        let v = self.fed.invoke(ior, op, args)?;
        v.as_sequence()
            .ok_or_else(|| WebfinditError::Protocol("expected link sequence".into()))?
            .iter()
            .map(|l| value_to_link(l).map_err(|e| WebfinditError::Protocol(e.to_string())))
            .collect()
    }

    /// Probe one remote site: resolve its co-database, check liveness
    /// and cache coherence with a single `version` call, collect leads,
    /// and (when it has none) expand its inter-relationships. Runs on a
    /// wave worker thread; everything it touches is `Sync`.
    fn probe_site(&self, site: &str, topic: &str, depth: usize) -> SiteProbe {
        let mut probe = SiteProbe::new(site);
        let nc = self.fed.naming_client();
        let binding = format!("codb/{site}");
        let (ior, from_cache) = match nc.resolve_detailed(&binding) {
            Ok(r) => r,
            Err(e) => {
                probe.fail(depth, &WebfinditError::Orb(e));
                return probe;
            }
        };
        if !from_cache {
            probe.naming_lookups += 1;
        }

        // The one mandatory live call: liveness probe + coherence check.
        probe.codb_queries += 1;
        let version = match self.fed.invoke(&ior, "version", &[]) {
            Ok(Value::LongLong(n)) => n as u64,
            Ok(_) => 0,
            Err(e) => {
                // The cached reference (if any) is unusable and the
                // site's cached answers are unverifiable: drop both.
                nc.invalidate(&binding);
                self.codb_cache.forget(site);
                probe.fail(depth, &e);
                return probe;
            }
        };

        let key = site.to_ascii_lowercase();
        let cache = &self.codb_cache;
        let metrics = self.fed.client_orb().metrics();

        // Leads: find_coalitions then find_links, cache-first.
        let coalitions = match cache
            .with_current(&key, version, |e| e.coalitions_by_topic.get(topic).cloned())
        {
            Some(hit) => {
                metrics.record_codb_cache(true);
                hit
            }
            None => {
                metrics.record_codb_cache(false);
                probe.codb_queries += 1;
                match self.fetch_strings(&ior, "find_coalitions", &[Value::string(topic)]) {
                    Ok(v) => {
                        cache.store(&key, version, |e| {
                            e.coalitions_by_topic.insert(topic.to_owned(), v.clone());
                        });
                        v
                    }
                    Err(e) => {
                        nc.invalidate(&binding);
                        probe.fail(depth, &e);
                        return probe;
                    }
                }
            }
        };
        for name in coalitions {
            probe.leads.push(Lead::Coalition {
                name,
                via_site: probe.site.clone(),
                distance: depth,
            });
        }
        let links =
            match cache.with_current(&key, version, |e| e.links_by_topic.get(topic).cloned()) {
                Some(hit) => {
                    metrics.record_codb_cache(true);
                    hit
                }
                None => {
                    metrics.record_codb_cache(false);
                    probe.codb_queries += 1;
                    match self.fetch_links(&ior, "find_links", &[Value::string(topic)]) {
                        Ok(v) => {
                            cache.store(&key, version, |e| {
                                e.links_by_topic.insert(topic.to_owned(), v.clone());
                            });
                            v
                        }
                        Err(e) => {
                            nc.invalidate(&binding);
                            probe.fail(depth, &e);
                            return probe;
                        }
                    }
                }
            };
        for link in links {
            probe.leads.push(Lead::Link {
                link,
                via_site: probe.site.clone(),
                distance: depth,
            });
        }
        if !probe.leads.is_empty() {
            return probe;
        }

        // No leads here: expand its inter-relationships. Expansion
        // failures are tolerated (the reachable part still expands).
        let coalition_list = match cache.with_current(&key, version, |e| e.coalition_list.clone()) {
            Some(hit) => {
                metrics.record_codb_cache(true);
                hit
            }
            None => {
                metrics.record_codb_cache(false);
                probe.codb_queries += 1;
                match self.fetch_strings(&ior, "coalitions", &[]) {
                    Ok(v) => {
                        cache.store(&key, version, |e| e.coalition_list = Some(v.clone()));
                        v
                    }
                    Err(_) => Vec::new(),
                }
            }
        };
        let service_links = match cache.with_current(&key, version, |e| e.service_links.clone()) {
            Some(hit) => {
                metrics.record_codb_cache(true);
                hit
            }
            None => {
                metrics.record_codb_cache(false);
                probe.codb_queries += 1;
                match self.fetch_links(&ior, "service_links", &[]) {
                    Ok(v) => {
                        cache.store(&key, version, |e| e.service_links = Some(v.clone()));
                        v
                    }
                    Err(_) => Vec::new(),
                }
            }
        };
        let mut codb_queries = 0u64;
        let mut expansion: Vec<String> = Vec::new();
        let mut members_of = |c: &str| -> Option<Vec<String>> {
            if let Some(hit) = cache.with_current(&key, version, |e| e.members.get(c).cloned()) {
                metrics.record_codb_cache(true);
                return Some(hit);
            }
            metrics.record_codb_cache(false);
            codb_queries += 1;
            match self.fetch_strings(&ior, "members", &[Value::string(c)]) {
                Ok(v) => {
                    cache.store(&key, version, |e| {
                        e.members.insert(c.to_owned(), v.clone());
                    });
                    Some(v)
                }
                Err(_) => None,
            }
        };
        expand_interrelationships(
            &coalition_list,
            &service_links,
            &mut members_of,
            &mut expansion,
        );
        probe.codb_queries += codb_queries;
        probe.expansion = expansion;
        probe
    }

    /// Probe every site of one wave, concurrently on up to
    /// `max_workers` scoped threads, returning the probes **in wave
    /// (site-name) order** regardless of completion order.
    fn run_wave(&self, wave: &[String], topic: &str, depth: usize) -> Vec<SiteProbe> {
        let workers = self.max_workers.max(1).min(wave.len());
        let mut probes: Vec<SiteProbe> = if workers <= 1 {
            wave.iter()
                .map(|site| self.probe_site(site, topic, depth))
                .collect()
        } else {
            let next = AtomicUsize::new(0);
            let mut slots: Vec<Option<SiteProbe>> = Vec::new();
            slots.resize_with(wave.len(), || None);
            std::thread::scope(|scope| {
                let next = &next;
                let run = move || {
                    let mut mine = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= wave.len() {
                            break;
                        }
                        mine.push((i, self.probe_site(&wave[i], topic, depth)));
                    }
                    mine
                };
                // The dispatching thread doubles as a worker, so a wave
                // of width N costs N - 1 spawns, not N — warm-cache
                // probes are cheap enough that the spawn itself would
                // otherwise show up in the wave latency.
                let handles: Vec<_> = (1..workers).map(|_| scope.spawn(run)).collect();
                for (i, probe) in run() {
                    slots[i] = Some(probe);
                }
                for handle in handles {
                    for (i, probe) in handle.join().expect("discovery wave worker panicked") {
                        slots[i] = Some(probe);
                    }
                }
            });
            slots
                .into_iter()
                .map(|s| s.expect("every wave slot probed"))
                .collect()
        };
        // A half-open breaker admits exactly one call, so wave-mates
        // probing the same endpoint concurrently can be rejected while
        // the admitted probe goes on to close the breaker — a race a
        // serial traversal never loses. Re-probe breaker rejections
        // once, serially, after the wave settles: a breaker the wave
        // healed now admits the probe, and one that is still open
        // rejects instantly without touching the wire.
        for probe in &mut probes {
            if probe.breaker_rejected {
                *probe = self.probe_site(&probe.site, topic, depth);
            }
        }
        probes
    }

    /// Run discovery for `topic`, starting at `start_site`.
    ///
    /// A dead or unreachable site never aborts the traversal: it is
    /// recorded in [`DiscoveryOutcome::degraded`] and the search keeps
    /// walking the surviving subtree of coalitions and service links.
    /// Each wave's sites are probed concurrently (see
    /// [`DiscoveryEngine::max_workers`]); the merge is in site-name
    /// order, so the outcome is identical to a serial traversal.
    pub fn find(&self, start_site: &str, topic: &str) -> WfResult<DiscoveryOutcome> {
        let mut stats = DiscoveryStats::default();
        let mut degraded: Vec<SiteFailure> = Vec::new();
        let start = self.fed.site(start_site)?;
        let mut visited: BTreeSet<String> = BTreeSet::new();
        visited.insert(start.name.to_ascii_lowercase());
        stats.sites_visited = 1;

        // ---- level 0: the local co-database, no network ----
        let mut leads: Vec<Lead> = Vec::new();
        let mut frontier: BTreeMap<String, String> = BTreeMap::new();
        {
            let codb = start.codb.read();
            for c in codb.find_coalitions(topic) {
                leads.push(Lead::Coalition {
                    name: c,
                    via_site: start.name.clone(),
                    distance: 0,
                });
            }
            for l in codb.find_links(topic) {
                leads.push(Lead::Link {
                    link: l.clone(),
                    via_site: start.name.clone(),
                    distance: 0,
                });
            }
            if leads.is_empty() {
                // Expand through local inter-relationships.
                let coalitions = codb.coalitions();
                let links: Vec<ServiceLink> = codb.service_links().to_vec();
                let mut proposals = Vec::new();
                expand_interrelationships(
                    &coalitions,
                    &links,
                    &mut |c| codb.members(c).ok(),
                    &mut proposals,
                );
                for name in proposals {
                    propose(&mut frontier, name);
                }
            }
        }
        if !leads.is_empty() {
            stats.found_at_level = Some(0);
            return Ok(DiscoveryOutcome {
                leads,
                degraded,
                stats,
            });
        }

        // ---- levels 1..max_depth: remote co-databases, one wave each ----
        let metrics = self.fed.client_orb().metrics();
        for depth in 1..=self.max_depth {
            let wave: Vec<String> = frontier
                .iter()
                .filter(|(key, _)| !visited.contains(key.as_str()))
                .map(|(_, raw)| raw.clone())
                .collect();
            frontier.clear();
            if wave.is_empty() {
                break;
            }
            for site in &wave {
                visited.insert(site.to_ascii_lowercase());
            }
            stats.sites_visited += wave.len();
            metrics.record_fanout_wave(wave.len() as u64);

            // Merge in wave order — the probes ran concurrently, the
            // outcome reads as if they ran one by one.
            for probe in self.run_wave(&wave, topic, depth) {
                stats.naming_lookups += probe.naming_lookups;
                stats.codb_queries += probe.codb_queries;
                leads.extend(probe.leads);
                if let Some(failure) = probe.failure {
                    degraded.push(failure);
                }
                for name in probe.expansion {
                    propose(&mut frontier, name);
                }
            }
            if !leads.is_empty() {
                stats.found_at_level = Some(depth);
                return Ok(DiscoveryOutcome {
                    leads,
                    degraded,
                    stats,
                });
            }
        }
        Ok(DiscoveryOutcome {
            leads,
            degraded,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn answer_cache_serves_only_matching_versions() {
        let cache = CodbAnswerCache::new();
        assert!(cache.is_empty());
        cache.store("rbh", 3, |e| {
            e.coalition_list = Some(vec!["Research".into()]);
            e.members.insert("Research".into(), vec!["RBH".into()]);
        });
        assert_eq!(cache.len(), 1);
        assert_eq!(
            cache.with_current("rbh", 3, |e| e.coalition_list.clone()),
            Some(vec!["Research".to_string()])
        );
        // A bumped version makes every cached answer invisible…
        assert_eq!(
            cache.with_current("rbh", 4, |e| e.coalition_list.clone()),
            None
        );
        // …and the first store under the new version resets the entry.
        cache.store("rbh", 4, |e| {
            e.coalition_list = Some(vec!["Medical".into()])
        });
        assert_eq!(
            cache.with_current("rbh", 4, |e| e.members.get("Research").cloned()),
            None,
            "stale members must not survive a version bump"
        );
        assert_eq!(
            cache.with_current("rbh", 4, |e| e.coalition_list.clone()),
            Some(vec!["Medical".to_string()])
        );
        cache.forget("rbh");
        assert!(cache.is_empty());
        cache.clear();
    }

    #[test]
    fn frontier_proposals_normalize_case_keeping_first_spelling() {
        let mut frontier = BTreeMap::new();
        propose(&mut frontier, "Royal Brisbane Hospital".into());
        propose(&mut frontier, "ROYAL BRISBANE HOSPITAL".into());
        propose(&mut frontier, "royal brisbane hospital".into());
        propose(&mut frontier, "Medicare".into());
        assert_eq!(frontier.len(), 2, "one entry per site, not per spelling");
        assert_eq!(
            frontier.get("royal brisbane hospital").map(String::as_str),
            Some("Royal Brisbane Hospital"),
            "the first-seen spelling is kept for the naming lookup"
        );
    }

    #[test]
    fn unreachable_endpoints_degrade_to_one_canonical_reason() {
        let unknown = WebfinditError::Orb(OrbError::UnknownHost {
            host: "qut.orbix.net".into(),
            port: 9000,
        });
        let open = WebfinditError::Orb(OrbError::CircuitOpen {
            host: "qut.orbix.net".into(),
            port: 9000,
        });
        assert_eq!(degrade_reason(&unknown), degrade_reason(&open));
        let other = WebfinditError::Protocol("bad frame".into());
        assert_eq!(degrade_reason(&other), other.to_string());
    }
}
