//! Fixture: federated fan-out-merge. `merge_eager` holds the merge
//! lock across the whole shipping wave — every subquery's wire round
//! trip happens under the guard, which is the guard-across-blocking
//! finding. `merge_after_wave` is the sanctioned shape: ship first,
//! then take the lock only to fold the slots in wave order.

pub fn merge_eager(w: &Wave) {
    let g = w.slots.lock();
    ship_wave(w);
    drop(g);
}

pub fn merge_after_wave(w: &Wave) {
    let rows = ship_wave(w);
    let g = w.slots.lock();
    g.fold(rows);
    drop(g);
}

fn ship_wave(w: &Wave) -> Rows {
    let mut rows = Rows::new();
    for member in &w.members {
        rows.extend(ship_one(w, member));
    }
    rows
}
