//! WebTassili recursive-descent parser.
//!
//! Multi-word names ("Royal Brisbane Hospital") are parsed by consuming
//! words until a structural keyword (`Of`, `To`, `From`, `Under`,
//! `Documentation`, `Description`) or a terminator (`;`, end of input).

use crate::ast::{Arg, FedScope, LinkTarget, Literal, PredOp, Predicate, SemiJoin, Statement};
use crate::lexer::{tokenize, Spanned, Tok};
use crate::{TassiliError, TassiliResult};

/// Parse one WebTassili statement (trailing `;` optional).
pub fn parse(input: &str) -> TassiliResult<Statement> {
    let toks = tokenize(input)?;
    let mut p = Parser { toks, pos: 0 };
    let stmt = p.statement()?;
    p.eat_sym(";");
    p.expect_eof()?;
    Ok(stmt)
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].0
    }

    fn offset(&self) -> usize {
        self.toks[self.pos].1
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].0.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> TassiliResult<T> {
        Err(TassiliError::Parse {
            message: msg.into(),
            offset: self.offset(),
        })
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Word(w) if w.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> TassiliResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(format!("expected '{kw}'"))
        }
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), Tok::Sym(s) if *s == sym) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_eof(&self) -> TassiliResult<()> {
        if matches!(self.peek(), Tok::Eof) {
            Ok(())
        } else {
            Err(TassiliError::Parse {
                message: format!("unexpected trailing input: {:?}", self.peek()),
                offset: self.offset(),
            })
        }
    }

    fn word(&mut self) -> TassiliResult<String> {
        match self.bump() {
            Tok::Word(w) => Ok(w),
            other => self.err(format!("expected a word, found {other:?}")),
        }
    }

    /// Consume words into a multi-word name until a stop keyword, a
    /// symbol, or end of input. At least one word is required.
    fn name_until(&mut self, stops: &[&str]) -> TassiliResult<String> {
        let mut words = Vec::new();
        loop {
            match self.peek() {
                Tok::Word(w) if !stops.iter().any(|s| w.eq_ignore_ascii_case(s)) => {
                    words.push(self.word()?);
                }
                _ => break,
            }
        }
        if words.is_empty() {
            self.err("expected a name")
        } else {
            Ok(words.join(" "))
        }
    }

    fn statement(&mut self) -> TassiliResult<Statement> {
        if self.eat_kw("find") {
            let kind = self.word()?;
            self.expect_kw("with")?;
            self.expect_kw("information")?;
            let topic = self.name_until(&[])?;
            return if kind.eq_ignore_ascii_case("coalitions") {
                Ok(Statement::FindCoalitions { topic })
            } else if kind.eq_ignore_ascii_case("databases") {
                Ok(Statement::FindDatabases { topic })
            } else {
                self.err("expected Coalitions or Databases after Find")
            };
        }
        if self.eat_kw("connect") {
            self.expect_kw("to")?;
            self.expect_kw("coalition")?;
            let name = self.name_until(&[])?;
            return Ok(Statement::ConnectToCoalition { name });
        }
        if self.eat_kw("display") {
            if self.eat_kw("subclasses") {
                self.expect_kw("of")?;
                self.expect_kw("class")?;
                let class = self.name_until(&[])?;
                return Ok(Statement::DisplaySubclasses { class });
            }
            if self.eat_kw("instances") {
                self.expect_kw("of")?;
                self.expect_kw("class")?;
                let class = self.name_until(&[])?;
                return Ok(Statement::DisplayInstances { class });
            }
            if self.eat_kw("document") || self.eat_kw("documentation") {
                self.expect_kw("of")?;
                self.expect_kw("instance")?;
                let instance = self.name_until(&["of"])?;
                let class = if self.eat_kw("of") {
                    self.expect_kw("class")?;
                    Some(self.name_until(&[])?)
                } else {
                    None
                };
                return Ok(Statement::DisplayDocument { instance, class });
            }
            if self.eat_kw("access") {
                self.expect_kw("information")?;
                self.expect_kw("of")?;
                self.expect_kw("instance")?;
                let instance = self.name_until(&[])?;
                return Ok(Statement::DisplayAccessInfo { instance });
            }
            if self.eat_kw("interface") {
                self.expect_kw("of")?;
                self.expect_kw("instance")?;
                let instance = self.name_until(&[])?;
                return Ok(Statement::DisplayInterface { instance });
            }
            return self.err(
                "expected SubClasses, Instances, Document, Access, or Interface after Display",
            );
        }
        if self.eat_kw("invoke") {
            let type_name = self.word()?;
            if !self.eat_sym(".") {
                return self.err("expected '.' after type name");
            }
            let function = self.word()?;
            if !self.eat_sym("(") {
                return self.err("expected '(' after function name");
            }
            let mut args = Vec::new();
            if !self.eat_sym(")") {
                loop {
                    args.push(self.arg()?);
                    if self.eat_sym(",") {
                        continue;
                    }
                    if self.eat_sym(")") {
                        break;
                    }
                    return self.err("expected ',' or ')' in argument list");
                }
            }
            if self.eat_kw("at") {
                let scope = self.fed_scope()?;
                let semi = if self.eat_kw("where") {
                    Some(self.semi_join()?)
                } else {
                    None
                };
                let limit = if self.eat_kw("limit") {
                    match self.bump() {
                        Tok::Int(n) if n >= 0 => Some(n as u64),
                        other => {
                            return self
                                .err(format!("expected a row count after Limit, found {other:?}"))
                        }
                    }
                } else {
                    None
                };
                return Ok(Statement::FedInvoke {
                    type_name,
                    function,
                    args,
                    scope,
                    semi,
                    limit,
                });
            }
            self.expect_kw("on")?;
            self.expect_kw("instance")?;
            let instance = self.name_until(&[])?;
            return Ok(Statement::Invoke {
                instance,
                type_name,
                function,
                args,
            });
        }
        if self.eat_kw("submit") {
            self.expect_kw("native")?;
            let query = match self.bump() {
                Tok::Str(s) => s,
                other => return self.err(format!("expected a quoted query, found {other:?}")),
            };
            self.expect_kw("to")?;
            self.expect_kw("instance")?;
            let instance = self.name_until(&[])?;
            return Ok(Statement::Native { instance, query });
        }
        if self.eat_kw("create") {
            self.expect_kw("coalition")?;
            let name = self.name_until(&["under", "documentation"])?;
            let parent = if self.eat_kw("under") {
                Some(self.name_until(&["documentation"])?)
            } else {
                None
            };
            let documentation = if self.eat_kw("documentation") {
                match self.bump() {
                    Tok::Str(s) => Some(s),
                    other => return self.err(format!("expected a quoted string, found {other:?}")),
                }
            } else {
                None
            };
            return Ok(Statement::CreateCoalition {
                name,
                parent,
                documentation,
            });
        }
        if self.eat_kw("dissolve") {
            self.expect_kw("coalition")?;
            let name = self.name_until(&[])?;
            return Ok(Statement::DissolveCoalition { name });
        }
        if self.eat_kw("join") {
            self.expect_kw("instance")?;
            let instance = self.name_until(&["to"])?;
            self.expect_kw("to")?;
            self.expect_kw("coalition")?;
            let coalition = self.name_until(&[])?;
            return Ok(Statement::Join {
                instance,
                coalition,
            });
        }
        if self.eat_kw("leave") {
            self.expect_kw("instance")?;
            let instance = self.name_until(&["from"])?;
            self.expect_kw("from")?;
            self.expect_kw("coalition")?;
            let coalition = self.name_until(&[])?;
            return Ok(Statement::Leave {
                instance,
                coalition,
            });
        }
        if self.eat_kw("link") {
            let from = self.link_target(&["to"])?;
            self.expect_kw("to")?;
            let to = self.link_target(&["description"])?;
            let description = if self.eat_kw("description") {
                match self.bump() {
                    Tok::Str(s) => Some(s),
                    other => return self.err(format!("expected a quoted string, found {other:?}")),
                }
            } else {
                None
            };
            return Ok(Statement::AddLink {
                from,
                to,
                description,
            });
        }
        if self.eat_kw("explain") {
            let inner = self.statement()?;
            return Ok(Statement::Explain(Box::new(inner)));
        }
        self.err(format!("unrecognized statement start: {:?}", self.peek()))
    }

    /// `Coalition <name>` or `Sites With Information <topic>` (the `At`
    /// keyword has already been consumed).
    fn fed_scope(&mut self) -> TassiliResult<FedScope> {
        if self.eat_kw("coalition") {
            let name = self.name_until(&["where", "limit"])?;
            return Ok(FedScope::Coalition(name));
        }
        if self.eat_kw("sites") {
            self.expect_kw("with")?;
            self.expect_kw("information")?;
            let topic = self.name_until(&["where", "limit"])?;
            return Ok(FedScope::Topic(topic));
        }
        self.err("expected Coalition or Sites after At")
    }

    /// `<probe path> In <BuildType>.<BuildAttr>(args…)` (the `Where`
    /// keyword has already been consumed).
    fn semi_join(&mut self) -> TassiliResult<SemiJoin> {
        let probe_attr = self.dotted_path()?;
        self.expect_kw("in")?;
        let build_type = self.word()?;
        if !self.eat_sym(".") {
            return self.err("expected '.' after the build-side type name");
        }
        let build_attr = self.word()?;
        if !self.eat_sym("(") {
            return self.err("expected '(' after the build-side attribute");
        }
        let mut build_args = Vec::new();
        if !self.eat_sym(")") {
            loop {
                build_args.push(self.arg()?);
                if self.eat_sym(",") {
                    continue;
                }
                if self.eat_sym(")") {
                    break;
                }
                return self.err("expected ',' or ')' in the build-side argument list");
            }
        }
        Ok(SemiJoin {
            probe_attr,
            build_type,
            build_attr,
            build_args,
        })
    }

    fn link_target(&mut self, stops: &[&str]) -> TassiliResult<LinkTarget> {
        if self.eat_kw("coalition") {
            Ok(LinkTarget::Coalition(self.name_until(stops)?))
        } else if self.eat_kw("instance") {
            Ok(LinkTarget::Instance(self.name_until(stops)?))
        } else {
            self.err("expected Coalition or Instance")
        }
    }

    fn arg(&mut self) -> TassiliResult<Arg> {
        match self.peek().clone() {
            // A parenthesized predicate. The paren is part of the
            // predicate grammar (grouping), so pred_not consumes it —
            // this also makes `((a) Or (b))` parse as one argument.
            Tok::Sym("(") => Ok(Arg::Predicate(self.pred_or()?)),
            Tok::Str(s) => {
                self.bump();
                Ok(Arg::Literal(Literal::Str(s)))
            }
            Tok::Int(v) => {
                self.bump();
                Ok(Arg::Literal(Literal::Int(v)))
            }
            Tok::Float(v) => {
                self.bump();
                Ok(Arg::Literal(Literal::Float(v)))
            }
            Tok::Word(w) if w.eq_ignore_ascii_case("true") => {
                self.bump();
                Ok(Arg::Literal(Literal::Bool(true)))
            }
            Tok::Word(w) if w.eq_ignore_ascii_case("false") => {
                self.bump();
                Ok(Arg::Literal(Literal::Bool(false)))
            }
            Tok::Word(_) => Ok(Arg::AttrRef(self.dotted_path()?)),
            other => self.err(format!("unexpected token in arguments: {other:?}")),
        }
    }

    fn dotted_path(&mut self) -> TassiliResult<String> {
        let mut path = self.word()?;
        while self.eat_sym(".") {
            path.push('.');
            path.push_str(&self.word()?);
        }
        Ok(path)
    }

    fn pred_or(&mut self) -> TassiliResult<Predicate> {
        let mut left = self.pred_and()?;
        while self.eat_kw("or") {
            let right = self.pred_and()?;
            left = Predicate::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn pred_and(&mut self) -> TassiliResult<Predicate> {
        let mut left = self.pred_not()?;
        while self.eat_kw("and") {
            let right = self.pred_not()?;
            left = Predicate::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn pred_not(&mut self) -> TassiliResult<Predicate> {
        if self.eat_kw("not") {
            let inner = self.pred_not()?;
            return Ok(Predicate::Not(Box::new(inner)));
        }
        if self.eat_sym("(") {
            let inner = self.pred_or()?;
            if !self.eat_sym(")") {
                return self.err("expected ')'");
            }
            return Ok(inner);
        }
        let path = self.dotted_path()?;
        if self.eat_kw("in") {
            if !self.eat_sym("(") {
                return self.err("expected '(' after In");
            }
            let mut values = vec![self.literal()?];
            while self.eat_sym(",") {
                values.push(self.literal()?);
            }
            if !self.eat_sym(")") {
                return self.err("expected ')' after the In list");
            }
            return Ok(Predicate::InList { path, values });
        }
        if self.eat_kw("like") {
            let value = self.literal()?;
            return Ok(Predicate::Cmp {
                path,
                op: PredOp::Like,
                value,
            });
        }
        let op = match self.bump() {
            Tok::Sym("=") => PredOp::Eq,
            Tok::Sym("<>") => PredOp::Ne,
            Tok::Sym("<=") => PredOp::Le,
            Tok::Sym(">=") => PredOp::Ge,
            Tok::Sym("<") => PredOp::Lt,
            Tok::Sym(">") => PredOp::Gt,
            other => return self.err(format!("expected comparison, found {other:?}")),
        };
        let value = self.literal()?;
        Ok(Predicate::Cmp { path, op, value })
    }

    fn literal(&mut self) -> TassiliResult<Literal> {
        match self.bump() {
            Tok::Str(s) => Ok(Literal::Str(s)),
            Tok::Int(v) => Ok(Literal::Int(v)),
            Tok::Float(v) => Ok(Literal::Float(v)),
            Tok::Word(w) if w.eq_ignore_ascii_case("true") => Ok(Literal::Bool(true)),
            Tok::Word(w) if w.eq_ignore_ascii_case("false") => Ok(Literal::Bool(false)),
            other => self.err(format!("expected a literal, found {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_papers_exploration_queries() {
        assert_eq!(
            parse("Find Coalitions With Information Medical Research;").unwrap(),
            Statement::FindCoalitions {
                topic: "Medical Research".into()
            }
        );
        assert_eq!(
            parse("Find Coalitions With Information Medical Insurance;").unwrap(),
            Statement::FindCoalitions {
                topic: "Medical Insurance".into()
            }
        );
        assert_eq!(
            parse("Connect To Coalition Research;").unwrap(),
            Statement::ConnectToCoalition {
                name: "Research".into()
            }
        );
        assert_eq!(
            parse("Display SubClasses of Class Research").unwrap(),
            Statement::DisplaySubclasses {
                class: "Research".into()
            }
        );
        assert_eq!(
            parse("Display Instances of Class Research;").unwrap(),
            Statement::DisplayInstances {
                class: "Research".into()
            }
        );
        assert_eq!(
            parse("Display Document of Instance Royal Brisbane Hospital Of Class Research;")
                .unwrap(),
            Statement::DisplayDocument {
                instance: "Royal Brisbane Hospital".into(),
                class: Some("Research".into())
            }
        );
        assert_eq!(
            parse("Display Access Information of Instance Royal Brisbane Hospital;").unwrap(),
            Statement::DisplayAccessInfo {
                instance: "Royal Brisbane Hospital".into()
            }
        );
    }

    #[test]
    fn the_papers_funding_invocation() {
        let stmt = parse(
            "Invoke ResearchProjects.Funding(ResearchProjects.Title, \
             (ResearchProjects.Title = 'AIDS and drugs')) On Instance Royal Brisbane Hospital;",
        )
        .unwrap();
        match stmt {
            Statement::Invoke {
                instance,
                type_name,
                function,
                args,
            } => {
                assert_eq!(instance, "Royal Brisbane Hospital");
                assert_eq!(type_name, "ResearchProjects");
                assert_eq!(function, "Funding");
                assert_eq!(args.len(), 2);
                assert_eq!(args[0], Arg::AttrRef("ResearchProjects.Title".into()));
                assert_eq!(
                    args[1],
                    Arg::Predicate(Predicate::Cmp {
                        path: "ResearchProjects.Title".into(),
                        op: PredOp::Eq,
                        value: Literal::Str("AIDS and drugs".into())
                    })
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn native_submission() {
        let stmt = parse(
            "Submit Native 'select * from medical_students' To Instance Royal Brisbane Hospital",
        )
        .unwrap();
        assert_eq!(
            stmt,
            Statement::Native {
                instance: "Royal Brisbane Hospital".into(),
                query: "select * from medical_students".into()
            }
        );
    }

    #[test]
    fn management_statements() {
        assert_eq!(
            parse("Create Coalition Medical Insurance Under Medical Documentation 'insurers';")
                .unwrap(),
            Statement::CreateCoalition {
                name: "Medical Insurance".into(),
                parent: Some("Medical".into()),
                documentation: Some("insurers".into())
            }
        );
        assert_eq!(
            parse("Dissolve Coalition Superannuation;").unwrap(),
            Statement::DissolveCoalition {
                name: "Superannuation".into()
            }
        );
        assert_eq!(
            parse("Join Instance Prince Charles Hospital To Coalition Medical;").unwrap(),
            Statement::Join {
                instance: "Prince Charles Hospital".into(),
                coalition: "Medical".into()
            }
        );
        assert_eq!(
            parse("Leave Instance AMP From Coalition Superannuation;").unwrap(),
            Statement::Leave {
                instance: "AMP".into(),
                coalition: "Superannuation".into()
            }
        );
        assert_eq!(
            parse("Link Coalition Medical To Coalition Medical Insurance Description 'medical cover';")
                .unwrap(),
            Statement::AddLink {
                from: LinkTarget::Coalition("Medical".into()),
                to: LinkTarget::Coalition("Medical Insurance".into()),
                description: Some("medical cover".into())
            }
        );
        assert_eq!(
            parse("Link Instance Ambulance To Coalition Medical;").unwrap(),
            Statement::AddLink {
                from: LinkTarget::Instance("Ambulance".into()),
                to: LinkTarget::Coalition("Medical".into()),
                description: None
            }
        );
    }

    #[test]
    fn complex_predicates() {
        let stmt =
            parse("Invoke T.F((A.x > 3 And A.y Like 'z%') Or Not (A.w = true)) On Instance D;")
                .unwrap();
        match stmt {
            Statement::Invoke { args, .. } => {
                assert!(matches!(args[0], Arg::Predicate(Predicate::Or(_, _))));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse("").is_err());
        assert!(parse("Find Something With Information X").is_err());
        assert!(parse("Display Nothing of Class X").is_err());
        assert!(parse("Invoke T.F( On Instance D").is_err());
        assert!(parse("Submit Native noquote To Instance D").is_err());
        assert!(parse("Connect To Coalition").is_err());
        assert!(parse("Find Coalitions With Information X trailing ; garbage").is_err());
        assert!(parse("Link Nothing To Coalition X").is_err());
    }

    #[test]
    fn federated_invoke_at_coalition() {
        let stmt = parse(
            "Invoke ResearchProjects.Funding((ResearchProjects.Title Like 'AIDS%')) \
             At Coalition Research;",
        )
        .unwrap();
        match stmt {
            Statement::FedInvoke {
                type_name,
                function,
                args,
                scope,
                semi,
                limit,
            } => {
                assert_eq!(type_name, "ResearchProjects");
                assert_eq!(function, "Funding");
                assert_eq!(args.len(), 1);
                assert_eq!(scope, FedScope::Coalition("Research".into()));
                assert!(semi.is_none());
                assert!(limit.is_none());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn federated_invoke_at_topic_with_limit() {
        let stmt =
            parse("Invoke Claims.Amount() At Sites With Information Medical Insurance Limit 10;")
                .unwrap();
        match stmt {
            Statement::FedInvoke { scope, limit, .. } => {
                assert_eq!(scope, FedScope::Topic("Medical Insurance".into()));
                assert_eq!(limit, Some(10));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn federated_semi_join_clause() {
        let stmt = parse(
            "Invoke Policies.Premium() At Coalition Medical Insurance \
             Where Policies.Holder In Members.Name((Members.Plan = 'gold'));",
        )
        .unwrap();
        match stmt {
            Statement::FedInvoke { semi: Some(s), .. } => {
                assert_eq!(s.probe_attr, "Policies.Holder");
                assert_eq!(s.build_type, "Members");
                assert_eq!(s.build_attr, "Name");
                assert_eq!(s.build_args.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn in_list_predicate() {
        let stmt = parse("Invoke T.F((T.name In ('a', 'b', 'c'))) On Instance D;").unwrap();
        match stmt {
            Statement::Invoke { args, .. } => {
                assert_eq!(
                    args[0],
                    Arg::Predicate(Predicate::InList {
                        path: "T.name".into(),
                        values: vec![
                            Literal::Str("a".into()),
                            Literal::Str("b".into()),
                            Literal::Str("c".into()),
                        ]
                    })
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn explain_wraps_a_statement() {
        let stmt = parse("Explain Invoke T.F() At Coalition Research;").unwrap();
        match stmt {
            Statement::Explain(inner) => {
                assert!(matches!(*inner, Statement::FedInvoke { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn federated_errors_are_reported() {
        assert!(parse("Invoke T.F() At Nowhere X;").is_err());
        assert!(parse("Invoke T.F() At Coalition R Limit 'ten';").is_err());
        assert!(parse("Invoke T.F() At Coalition R Where T.k In B;").is_err());
        assert!(parse("Invoke T.F((T.x In ())) On Instance D;").is_err());
        assert!(parse("Explain;").is_err());
    }

    #[test]
    fn display_roundtrip() {
        for text in [
            "Find Coalitions With Information Medical Research;",
            "Display Document of Instance Royal Brisbane Hospital Of Class Research;",
            "Join Instance AMP To Coalition Superannuation;",
            "Submit Native 'select * from medical_students' To Instance RBH;",
            "Invoke ResearchProjects.Funding() At Coalition Research;",
            "Invoke Policies.Premium() At Coalition Medical Insurance \
             Where Policies.Holder In Members.Name() Limit 5;",
            "Invoke Claims.Amount((Claims.Provider In ('RBH', 'PCH'))) \
             At Sites With Information Medical;",
            "Explain Invoke ResearchProjects.Funding() At Coalition Research;",
        ] {
            let stmt = parse(text).unwrap();
            let printed = stmt.to_string();
            assert_eq!(parse(&printed).unwrap(), stmt, "roundtrip of {text}");
        }
    }
}
