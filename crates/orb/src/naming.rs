//! A CORBA-style naming service, implemented as an ordinary servant.
//!
//! WebFINDIT needs a bootstrap step: given the *name* of a co-database
//! or information source ("RBH", "Medicare"), obtain its IOR. CORBA
//! solves this with the COS Naming service — itself a CORBA object — and
//! so do we: [`NamingService`] is a [`Servant`] whose `bind`/`resolve`/
//! `unbind`/`list` operations travel through GIOP like any other call.
//! IORs cross the wire in their stringified `IOR:…` form, exactly how
//! 1990s deployments moved references between ORBs.

use crate::servant::{InvokeResult, Servant, ServantError};
use crate::{Orb, OrbError, OrbResult};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};
use webfindit_base::sync::{Mutex, RwLock};
use webfindit_wire::{Ior, Value};

/// Interface repository id of the naming service.
pub const NAMING_INTERFACE_ID: &str = "IDL:webfindit/NamingContext:1.0";

/// Conventional object key under which the naming servant is activated.
pub const NAMING_OBJECT_KEY: &[u8] = b"naming/root";

/// The server-side naming context: a flat name → IOR table.
#[derive(Default)]
pub struct NamingService {
    bindings: RwLock<BTreeMap<String, Ior>>,
}

impl NamingService {
    /// Create an empty naming context.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Direct (in-process) bind, used during deployment bootstrap.
    pub fn bind_direct(&self, name: impl Into<String>, ior: Ior) {
        self.bindings.write().insert(name.into(), ior);
    }

    /// Direct resolve, used by tests.
    pub fn resolve_direct(&self, name: &str) -> Option<Ior> {
        self.bindings.read().get(name).cloned()
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.bindings.read().len()
    }

    /// True when no names are bound.
    pub fn is_empty(&self) -> bool {
        self.bindings.read().is_empty()
    }
}

impl Servant for NamingService {
    fn interface_id(&self) -> &str {
        NAMING_INTERFACE_ID
    }

    fn invoke(&self, operation: &str, args: &[Value]) -> InvokeResult {
        match operation {
            "bind" => {
                let name = args
                    .first()
                    .and_then(Value::as_str)
                    .ok_or_else(|| ServantError::BadArguments("bind(name, ior)".into()))?;
                let ior_str = args
                    .get(1)
                    .and_then(Value::as_str)
                    .ok_or_else(|| ServantError::BadArguments("bind(name, ior)".into()))?;
                let ior = Ior::from_stringified(ior_str)
                    .map_err(|e| ServantError::BadArguments(format!("unparseable IOR: {e}")))?;
                self.bindings.write().insert(name.to_owned(), ior);
                Ok(Value::Void)
            }
            "resolve" => {
                let name = args
                    .first()
                    .and_then(Value::as_str)
                    .ok_or_else(|| ServantError::BadArguments("resolve(name)".into()))?;
                match self.bindings.read().get(name) {
                    Some(ior) => Ok(Value::string(ior.to_stringified())),
                    None => Err(ServantError::Application(format!("NotFound: {name}"))),
                }
            }
            "unbind" => {
                let name = args
                    .first()
                    .and_then(Value::as_str)
                    .ok_or_else(|| ServantError::BadArguments("unbind(name)".into()))?;
                match self.bindings.write().remove(name) {
                    Some(_) => Ok(Value::Void),
                    None => Err(ServantError::Application(format!("NotFound: {name}"))),
                }
            }
            "list" => Ok(Value::Sequence(
                self.bindings
                    .read()
                    .keys()
                    .map(|k| Value::string(k.clone()))
                    .collect(),
            )),
            other => Err(ServantError::UnknownOperation(other.to_owned())),
        }
    }

    fn operations(&self) -> Vec<String> {
        ["bind", "resolve", "unbind", "list"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    }
}

/// A client-side TTL'd cache of naming resolutions.
///
/// Naming lookups dominate lookup-heavy workloads (every discovery
/// probe starts with a `resolve`), yet bindings change only at
/// deployment or restart time. The cache keeps resolved IORs for a
/// bounded lifetime and is **invalidated eagerly** the moment an
/// invocation on a cached reference fails (connection failure,
/// deadline, breaker-open) — the standard client-side-caching fix for
/// CORBA naming traffic. Shared via `Arc` across every stub a
/// deployment hands out.
pub struct IorCache {
    ttl: Duration,
    entries: Mutex<HashMap<String, (Ior, Instant)>>,
}

impl IorCache {
    /// Create an empty cache whose entries expire after `ttl`.
    pub fn new(ttl: Duration) -> Arc<IorCache> {
        Arc::new(IorCache {
            ttl,
            entries: Mutex::new_labeled(HashMap::new(), "orb::IorCache.entries"),
        })
    }

    /// The configured entry lifetime.
    pub fn ttl(&self) -> Duration {
        self.ttl
    }

    /// A cached, unexpired resolution of `name`. Expired entries are
    /// dropped on access.
    pub fn get(&self, name: &str) -> Option<Ior> {
        let mut entries = self.entries.lock();
        match entries.get(name) {
            Some((_, at)) if at.elapsed() >= self.ttl => {
                entries.remove(name);
                None
            }
            Some((ior, _)) => Some(ior.clone()),
            None => None,
        }
    }

    /// Cache a fresh resolution.
    pub fn put(&self, name: &str, ior: &Ior) {
        self.entries
            .lock()
            .insert(name.to_owned(), (ior.clone(), Instant::now()));
    }

    /// Drop the entry for `name` (an invocation on it failed).
    /// Returns true when an entry was actually dropped.
    pub fn invalidate(&self, name: &str) -> bool {
        self.entries.lock().remove(name).is_some()
    }

    /// Drop every entry.
    pub fn clear(&self) {
        self.entries.lock().clear();
    }

    /// Number of live entries (including any not yet swept).
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }
}

/// Client-side stub for a (possibly remote) naming service.
pub struct NamingClient {
    orb: Arc<Orb>,
    naming_ior: Ior,
    cache: Option<Arc<IorCache>>,
}

impl NamingClient {
    /// Create a stub that calls the naming service at `naming_ior`
    /// through `orb`.
    pub fn new(orb: Arc<Orb>, naming_ior: Ior) -> Self {
        NamingClient {
            orb,
            naming_ior,
            cache: None,
        }
    }

    /// Create a stub that consults (and feeds) a shared [`IorCache`]
    /// before going to the wire. Hits and misses are counted in the
    /// client ORB's [`crate::OrbMetrics`].
    pub fn with_cache(orb: Arc<Orb>, naming_ior: Ior, cache: Arc<IorCache>) -> Self {
        NamingClient {
            orb,
            naming_ior,
            cache: Some(cache),
        }
    }

    /// The shared IOR cache, when this stub carries one.
    pub fn cache(&self) -> Option<&Arc<IorCache>> {
        self.cache.as_ref()
    }

    /// Bind `name` to `ior`.
    pub fn bind(&self, name: &str, ior: &Ior) -> OrbResult<()> {
        self.orb.invoke(
            &self.naming_ior,
            "bind",
            &[Value::string(name), Value::string(ior.to_stringified())],
        )?;
        // A rebind supersedes whatever the cache held for the name.
        if let Some(cache) = &self.cache {
            cache.invalidate(name);
        }
        Ok(())
    }

    /// Resolve `name` to an IOR, consulting the cache first when one is
    /// attached.
    pub fn resolve(&self, name: &str) -> OrbResult<Ior> {
        self.resolve_detailed(name).map(|(ior, _)| ior)
    }

    /// Resolve `name`, also reporting whether the answer came from the
    /// cache (`true`) or cost a naming-service round-trip (`false`).
    pub fn resolve_detailed(&self, name: &str) -> OrbResult<(Ior, bool)> {
        let metrics = self.orb.metrics();
        if let Some(cache) = &self.cache {
            if let Some(ior) = cache.get(name) {
                metrics.ior_cache_hits.fetch_add(1, Ordering::Relaxed);
                return Ok((ior, true));
            }
            metrics.ior_cache_misses.fetch_add(1, Ordering::Relaxed);
        }
        let ior = self.resolve_remote(name)?;
        if let Some(cache) = &self.cache {
            cache.put(name, &ior);
        }
        Ok((ior, false))
    }

    /// Drop `name` from the attached cache because an invocation on the
    /// cached reference failed (or the endpoint's breaker opened). The
    /// next resolve will go back to the naming service.
    pub fn invalidate(&self, name: &str) {
        if let Some(cache) = &self.cache {
            if cache.invalidate(name) {
                self.orb
                    .metrics()
                    .ior_cache_invalidations
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn resolve_remote(&self, name: &str) -> OrbResult<Ior> {
        match self
            .orb
            .invoke(&self.naming_ior, "resolve", &[Value::string(name)])
        {
            Ok(v) => {
                let s = v.as_str().ok_or_else(|| OrbError::RemoteException {
                    system: true,
                    description: "resolve returned a non-string".into(),
                })?;
                Ior::from_stringified(s).map_err(OrbError::from)
            }
            Err(OrbError::RemoteException {
                system: false,
                description,
            }) if description.starts_with("NotFound") => Err(OrbError::NameNotFound {
                name: name.to_owned(),
            }),
            Err(e) => Err(e),
        }
    }

    /// Remove the binding for `name`.
    pub fn unbind(&self, name: &str) -> OrbResult<()> {
        self.orb
            .invoke(&self.naming_ior, "unbind", &[Value::string(name)])?;
        if let Some(cache) = &self.cache {
            cache.invalidate(name);
        }
        Ok(())
    }

    /// All bound names.
    pub fn list(&self) -> OrbResult<Vec<String>> {
        let v = self.orb.invoke(&self.naming_ior, "list", &[])?;
        Ok(v.as_sequence()
            .unwrap_or(&[])
            .iter()
            .filter_map(|x| x.as_str().map(str::to_owned))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orb::OrbConfig;
    use crate::servant::EchoServant;
    use crate::OrbDomain;
    use webfindit_wire::cdr::ByteOrder;

    #[test]
    fn naming_over_the_wire() {
        let domain = OrbDomain::new();
        let server = Orb::start(
            OrbConfig::new("Orbix", "ns.qut.edu.au", 9000, ByteOrder::BigEndian),
            Arc::clone(&domain),
        )
        .unwrap();
        let client_orb = Orb::start(
            OrbConfig::new("OrbixWeb", "cl.qut.edu.au", 9001, ByteOrder::LittleEndian),
            Arc::clone(&domain),
        )
        .unwrap();

        let naming = NamingService::new();
        let naming_ior = server.activate(NAMING_OBJECT_KEY, naming);
        let echo_ior = server.activate("echo/1", Arc::new(EchoServant));

        let nc = NamingClient::new(Arc::clone(&client_orb), naming_ior);
        nc.bind("RBH", &echo_ior).unwrap();
        assert_eq!(nc.list().unwrap(), vec!["RBH".to_string()]);

        let resolved = nc.resolve("RBH").unwrap();
        assert_eq!(resolved, echo_ior);

        // The resolved reference is usable.
        let out = client_orb.invoke(&resolved, "ping", &[]).unwrap();
        assert_eq!(out, Value::string("pong"));

        nc.unbind("RBH").unwrap();
        assert!(matches!(
            nc.resolve("RBH"),
            Err(OrbError::NameNotFound { .. })
        ));

        server.shutdown();
        client_orb.shutdown();
    }

    #[test]
    fn cached_resolution_hits_skip_the_wire_and_invalidate_on_demand() {
        let domain = OrbDomain::new();
        let server = Orb::start(
            OrbConfig::new("Orbix", "ns.qut.edu.au", 9010, ByteOrder::BigEndian),
            Arc::clone(&domain),
        )
        .unwrap();
        let client_orb = Orb::start(
            OrbConfig::new("OrbixWeb", "cl.qut.edu.au", 9011, ByteOrder::LittleEndian),
            Arc::clone(&domain),
        )
        .unwrap();
        let naming = NamingService::new();
        let naming_ior = server.activate(NAMING_OBJECT_KEY, naming);
        let echo_ior = server.activate("echo/1", Arc::new(EchoServant));

        let cache = IorCache::new(Duration::from_secs(60));
        let nc = NamingClient::with_cache(Arc::clone(&client_orb), naming_ior, Arc::clone(&cache));
        nc.bind("RBH", &echo_ior).unwrap();

        let before = client_orb.metrics().snapshot();
        let (first, hit1) = nc.resolve_detailed("RBH").unwrap();
        let (second, hit2) = nc.resolve_detailed("RBH").unwrap();
        assert_eq!(first, echo_ior);
        assert_eq!(second, echo_ior);
        assert!(!hit1, "cold resolve goes to the wire");
        assert!(hit2, "warm resolve is served from cache");
        let d = client_orb.metrics().snapshot().since(&before);
        assert_eq!(d.ior_cache_hits, 1);
        assert_eq!(d.ior_cache_misses, 1);
        assert_eq!(
            d.requests_sent, 1,
            "only the miss costs a naming round-trip"
        );

        // Invalidation forces the next resolve back to the wire.
        nc.invalidate("RBH");
        let (_, hit3) = nc.resolve_detailed("RBH").unwrap();
        assert!(!hit3, "invalidated entry must re-resolve");
        assert_eq!(client_orb.metrics().snapshot().ior_cache_invalidations, 1);

        // Unbinding drops the cache entry too: no stale hit after the
        // binding is gone.
        nc.unbind("RBH").unwrap();
        assert!(matches!(
            nc.resolve("RBH"),
            Err(OrbError::NameNotFound { .. })
        ));

        server.shutdown();
        client_orb.shutdown();
    }

    #[test]
    fn ior_cache_entries_expire_after_ttl() {
        let cache = IorCache::new(Duration::from_millis(20));
        let ior = Ior::new_iiop("IDL:X:1.0", "h", 1, b"k".to_vec());
        cache.put("a", &ior);
        assert_eq!(cache.get("a"), Some(ior));
        assert_eq!(cache.len(), 1);
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(cache.get("a"), None, "entry outlived its TTL");
        assert!(cache.is_empty(), "expired entry is swept on access");
        assert!(!cache.invalidate("a"));
    }

    #[test]
    fn direct_bindings() {
        let ns = NamingService::new();
        assert!(ns.is_empty());
        ns.bind_direct("a", Ior::new_iiop("IDL:X:1.0", "h", 1, b"k".to_vec()));
        assert_eq!(ns.len(), 1);
        assert!(ns.resolve_direct("a").is_some());
        assert!(ns.resolve_direct("b").is_none());
    }

    #[test]
    fn bad_arguments_rejected() {
        let ns = NamingService::new();
        assert!(ns.invoke("bind", &[]).is_err());
        assert!(ns
            .invoke("bind", &[Value::string("x"), Value::string("junk")])
            .is_err());
        assert!(ns.invoke("resolve", &[Value::Long(1)]).is_err());
        assert!(ns.invoke("nonsense", &[]).is_err());
    }
}
