//! Fuzz-by-mutation for the WebTassili lexer and parser.
//!
//! Start from the real corpus — the §5 session script plus one of each
//! remaining statement form — and apply seeded random mutations: byte
//! flips, splices, truncations, duplications, case changes, token
//! shuffles. Whatever comes out, `tokenize` and `parse` must return
//! `Ok` or `Err`; a panic fails the property and prints the seed that
//! reproduces it.

use webfindit_base::prop::{self, pick, string_of};
use webfindit_base::rng::StdRng;
use webfindit_tassili::lexer::tokenize;
use webfindit_tassili::parse;

/// The paper's §5 session script plus an exemplar of every other
/// statement form the grammar accepts.
const CORPUS: &[&str] = &[
    "Find Coalitions With Information Medical Research;",
    "Find Databases With Information Medical Insurance;",
    "Connect To Coalition Research;",
    "Display SubClasses of Class Research;",
    "Display Instances of Class Research;",
    "Display Document of Instance Royal Brisbane Hospital Of Class Research;",
    "Display Access Information of Instance Royal Brisbane Hospital;",
    "Display Interface of Instance Royal Brisbane Hospital;",
    "Invoke ResearchProjects.Funding(ResearchProjects.Title, \
     (ResearchProjects.Title = 'AIDS and drugs')) On Instance Royal Brisbane Hospital;",
    "Submit Native 'select * from medical_students' To Instance Royal Brisbane Hospital;",
    "Create Coalition Medical Insurance Under Medical Documentation 'insurers';",
    "Dissolve Coalition Superannuation;",
    "Join Instance Prince Charles Hospital To Coalition Medical;",
    "Leave Instance AMP From Coalition Superannuation;",
    "Link Coalition Medical To Coalition Medical Insurance Description 'medical cover';",
    "Invoke T.F((A.x > 3 And A.y Like 'z%') Or Not (A.w = true)) On Instance D;",
];

const NOISE: &str = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 '();.,=<>*_-%";

/// Apply one random mutation to `s`.
fn mutate(rng: &mut StdRng, s: &str) -> String {
    let mut bytes: Vec<u8> = s.bytes().collect();
    match rng.gen_range(0..7) {
        // Replace one byte with printable noise.
        0 if !bytes.is_empty() => {
            let i = rng.gen_range(0..bytes.len());
            bytes[i] = rng.gen_range(0x20u8..0x7f);
        }
        // Delete a random span.
        1 if !bytes.is_empty() => {
            let start = rng.gen_range(0..bytes.len());
            let len = rng.gen_range(1..=8.min(bytes.len() - start));
            bytes.drain(start..start + len);
        }
        // Insert a random printable string.
        2 => {
            let at = rng.gen_range(0..=bytes.len());
            let ins = string_of(rng, NOISE, 1..9);
            bytes.splice(at..at, ins.bytes());
        }
        // Truncate.
        3 if !bytes.is_empty() => {
            let keep = rng.gen_range(0..bytes.len());
            bytes.truncate(keep);
        }
        // Duplicate a span in place (repeated keywords, doubled quotes).
        4 if !bytes.is_empty() => {
            let start = rng.gen_range(0..bytes.len());
            let len = rng.gen_range(1..=6.min(bytes.len() - start));
            let span: Vec<u8> = bytes[start..start + len].to_vec();
            bytes.splice(start..start, span);
        }
        // Flip ASCII case across a span (keyword matching is
        // case-insensitive; identifiers are not).
        5 => {
            for b in bytes.iter_mut() {
                if rng.gen_bool(0.3) {
                    if b.is_ascii_lowercase() {
                        *b = b.to_ascii_uppercase();
                    } else if b.is_ascii_uppercase() {
                        *b = b.to_ascii_lowercase();
                    }
                }
            }
        }
        // Swap two whitespace-delimited tokens.
        _ => {
            let mut words: Vec<&[u8]> = Vec::new();
            let text = bytes.clone();
            for w in text.split(|b| b.is_ascii_whitespace()) {
                if !w.is_empty() {
                    words.push(w);
                }
            }
            if words.len() >= 2 {
                let i = rng.gen_range(0..words.len());
                let j = rng.gen_range(0..words.len());
                words.swap(i, j);
                bytes = words.join(&b' ');
            }
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

#[test]
fn prop_mutated_corpus_never_panics() {
    prop::cases(512, |rng| {
        let mut text = (*pick(rng, CORPUS)).to_owned();
        let rounds = rng.gen_range(1..6usize);
        for _ in 0..rounds {
            text = mutate(rng, &text);
        }
        // Both layers must return, never unwind.
        let toks = tokenize(&text);
        let parsed = parse(&text);
        // Coherence: if the lexer rejects the text, the parser (which
        // lexes internally) must reject it too.
        if toks.is_err() {
            assert!(
                parsed.is_err(),
                "lexer rejected but parser accepted {text:?}"
            );
        }
    });
}

#[test]
fn prop_corpus_crossover_never_panics() {
    // Splice the head of one corpus statement onto the tail of another
    // — grammatical fragments in ungrammatical orders.
    prop::cases(256, |rng| {
        let a = *pick(rng, CORPUS);
        let b = *pick(rng, CORPUS);
        let cut_a = rng.gen_range(0..=a.len());
        let cut_b = rng.gen_range(0..=b.len());
        let mut text = String::new();
        text.push_str(&a[..cut_a]);
        text.push_str(&b[cut_b..]);
        let _ = tokenize(&text);
        let _ = parse(&text);
    });
}

#[test]
fn unmutated_corpus_parses() {
    // Anchor: every corpus statement is genuinely grammatical, so the
    // mutation tests start from accepted inputs.
    for stmt in CORPUS {
        tokenize(stmt).unwrap_or_else(|e| panic!("lexing {stmt:?}: {e}"));
        parse(stmt).unwrap_or_else(|e| panic!("parsing {stmt:?}: {e}"));
    }
}
