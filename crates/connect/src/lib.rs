//! # webfindit-connect — the JDBC/JNI connectivity substrate
//!
//! The paper reaches its databases through three kinds of bridges
//! (Figure 2):
//!
//! * **JDBC** — relational products (Oracle, mSQL, DB2, Sybase) accessed
//!   from Java CORBA servers through the driver-manager/driver/
//!   connection API;
//! * **JNI** — the Ontos object database accessed from a Java CORBA
//!   server through native glue;
//! * **C++ method invocation** — ObjectStore accessed in-process from
//!   C++ CORBA servers.
//!
//! This crate rebuilds that stack against the simulated engines:
//!
//! * [`manager`] — a `DriverManager` with URL-scheme driver
//!   registration (`jdbc:oracle://host/db`, `jni:ontos://host/db`,
//!   `native:objectstore://host/db`);
//! * [`api`] — `Driver` / `Connection` traits and result types;
//! * [`drivers`] — one relational driver per vendor, plus the two OO
//!   bridges, each tagged with its [`BridgeKind`] and instrumented with
//!   per-bridge call counters (experiment E3 reads these);
//! * [`registry`] — the "network" of running database instances that
//!   URLs resolve against;
//! * [`compensate`] — a gateway-side compensating connection that
//!   absorbs vendor feature gaps (mSQL's missing aggregates/joins) by
//!   staging base tables locally and finishing the query in a canonical
//!   engine — exactly the fetch-and-compute wrapper trick of the era.

#![warn(missing_docs)]

pub mod api;
pub mod compensate;
pub mod drivers;
pub mod manager;
pub mod registry;

pub use api::{parse_url, BridgeKind, Connection, DataMetrics, Driver, QueryOutput, UrlParts};
pub use compensate::CompensatingConnection;
pub use manager::DriverManager;
pub use registry::DataSourceRegistry;

use std::fmt;
use webfindit_oostore::OoError;
use webfindit_relstore::RelError;

/// Errors surfaced by the connectivity layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum ConnectError {
    /// No registered driver accepts the URL.
    NoDriver(String),
    /// The URL is syntactically malformed.
    BadUrl(String),
    /// The URL names a data source that is not registered.
    UnknownDataSource(String),
    /// The underlying relational engine failed.
    Rel(RelError),
    /// The underlying object store failed.
    Oo(OoError),
    /// The connection has been closed.
    Closed,
    /// The operation is not meaningful for this connection kind
    /// (e.g. SQL against an object store).
    WrongParadigm(String),
}

impl fmt::Display for ConnectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConnectError::NoDriver(url) => write!(f, "no suitable driver for {url}"),
            ConnectError::BadUrl(url) => write!(f, "malformed connection URL: {url}"),
            ConnectError::UnknownDataSource(name) => {
                write!(f, "unknown data source: {name}")
            }
            ConnectError::Rel(e) => write!(f, "relational engine: {e}"),
            ConnectError::Oo(e) => write!(f, "object store: {e}"),
            ConnectError::Closed => write!(f, "connection is closed"),
            ConnectError::WrongParadigm(msg) => write!(f, "wrong paradigm: {msg}"),
        }
    }
}

impl std::error::Error for ConnectError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConnectError::Rel(e) => Some(e),
            ConnectError::Oo(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelError> for ConnectError {
    fn from(e: RelError) -> Self {
        ConnectError::Rel(e)
    }
}

impl From<OoError> for ConnectError {
    fn from(e: OoError) -> Self {
        ConnectError::Oo(e)
    }
}

/// Result alias for connectivity operations.
pub type ConnectResult<T> = Result<T, ConnectError>;
