//! E2 — CDR/GIOP marshalling throughput (the IIOP choice of §3).
//!
//! Measures encode and decode of GIOP Request/Reply frames across
//! payload shapes (primitives, flat structs, string sequences from
//! 64 B to 64 KiB) and both byte orders — the cost every WebFINDIT
//! invocation pays at the communication layer.

use webfindit_base::bench::{BenchmarkId, Criterion, Throughput};
use webfindit_base::{criterion_group, criterion_main};
use webfindit_wire::cdr::ByteOrder;
use webfindit_wire::giop::{self, GiopMessage};
use webfindit_wire::Value;

fn string_payload(total_bytes: usize) -> Value {
    let item = "x".repeat(32);
    let n = total_bytes / 32;
    Value::Sequence((0..n).map(|_| Value::string(item.clone())).collect())
}

fn struct_payload() -> Value {
    Value::record([
        ("name", Value::string("Royal Brisbane Hospital")),
        ("information_type", Value::string("Research and Medical")),
        ("funding", Value::Double(250_000.0)),
        ("active", Value::Bool(true)),
        (
            "interface",
            Value::Sequence(vec![
                Value::string("ResearchProjects"),
                Value::string("PatientHistory"),
            ]),
        ),
    ])
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("giop_encode");
    for (label, payload) in [
        (
            "primitives",
            Value::Sequence(vec![Value::Long(1), Value::Double(2.0)]),
        ),
        ("descriptor_struct", struct_payload()),
        ("strings_64B", string_payload(64)),
        ("strings_1KiB", string_payload(1024)),
        ("strings_64KiB", string_payload(64 * 1024)),
    ] {
        let msg = giop::reply_ok(7, payload);
        let frame_len = msg.encode(ByteOrder::BigEndian).unwrap().len();
        group.throughput(Throughput::Bytes(frame_len as u64));
        group.bench_with_input(BenchmarkId::new("big_endian", label), &msg, |b, msg| {
            b.iter(|| msg.encode(ByteOrder::BigEndian).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("little_endian", label), &msg, |b, msg| {
            b.iter(|| msg.encode(ByteOrder::LittleEndian).unwrap());
        });
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("giop_decode");
    for (label, payload) in [
        ("descriptor_struct", struct_payload()),
        ("strings_1KiB", string_payload(1024)),
        ("strings_64KiB", string_payload(64 * 1024)),
    ] {
        let msg = giop::request(9, b"codb/RBH".to_vec(), "find_coalitions", vec![payload]);
        let frame = msg.encode(ByteOrder::LittleEndian).unwrap();
        group.throughput(Throughput::Bytes(frame.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(label), &frame, |b, frame| {
            b.iter(|| GiopMessage::decode_frame(frame).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_encode, bench_decode);
criterion_main!(benches);
