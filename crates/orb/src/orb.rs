//! The ORB runtime: listener, dispatcher, client stubs, channel pool.
//!
//! Each [`Orb`] models one vendor ORB instance from the paper's Figure 2
//! (`Orbix`, `OrbixWeb`, `VisiBroker`). An ORB:
//!
//! * binds a loopback TCP listener (its IIOP endpoint) and registers its
//!   advertised `(host, port)` with the shared [`OrbDomain`];
//! * serves GIOP Requests arriving on that endpoint by dispatching into
//!   its [`ObjectAdapter`]. The default server core is the event-loop
//!   reactor ([`crate::reactor`]): one poll-driven thread owns every
//!   connection and a bounded worker pool runs servant dispatch, so a
//!   slow servant never holds up other requests on the same connection
//!   and ten thousand idle connections cost ten thousand fds, not ten
//!   thousand stacks. The original thread-per-connection core survives
//!   behind [`ServerCore::Threaded`] as baseline and fallback;
//! * acts as a client: [`Orb::invoke`] marshals a Request and ships it
//!   over a multiplexed [`IiopChannel`] (see [`crate::channel`]); many
//!   concurrent callers share each connection instead of serializing on
//!   a per-connection mutex. [`Orb::invoke_with`] additionally threads
//!   [`CallOptions`] — a deadline and a retry policy — down to the wire.
//!   Invocations whose target lives on this same ORB short-circuit
//!   through the adapter (counted separately — collocated calls were a
//!   selling point of 1990s ORBs too);
//! * keeps [`OrbMetrics`] so experiments can count round-trips and bytes.
//!
//! Vendor flavor: each ORB is configured with a preferred byte order, so
//! an "Orbix" (big-endian) really does exchange differently-ordered CDR
//! with a "VisiBroker" (little-endian) — the receiver honors the header
//! flag, which is the CORBA 2.0 interoperability story in miniature.

use crate::adapter::ObjectAdapter;
use crate::channel::{
    BreakerConfig, BreakerState, CallFailure, CallOptions, FailureClass, IiopChannel,
};
use crate::domain::OrbDomain;
use crate::metrics::OrbMetrics;
use crate::servant::Servant;
use crate::{OrbError, OrbResult};
use std::collections::{HashMap, HashSet};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use webfindit_base::sync::Mutex;
use webfindit_wire::cdr::ByteOrder;
use webfindit_wire::giop::{self, GiopMessage, LocateStatus, ReplyStatus, RequestHeader};
use webfindit_wire::ior::IiopProfile;
use webfindit_wire::transport::{FramedTcp, Transport};
use webfindit_wire::{BufPool, Ior, Value, WireError};

/// Upper bound on multiplexed connections per remote endpoint.
const MAX_CONNS_PER_ENDPOINT: usize = 4;

/// Ids a server remembers from CancelRequests whose dispatch is still
/// running; bounded so a hostile client cannot grow it without limit.
pub(crate) const MAX_REMEMBERED_CANCELS: usize = 1024;

/// Default size of the reactor core's dispatch worker pool.
const DEFAULT_DISPATCH_WORKERS: usize = 8;

/// Which server core an ORB runs its listener on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerCore {
    /// The original core: one thread per connection plus one per
    /// in-flight request. Simple, but per-request thread costs dominate
    /// at high fan-in. Kept as a baseline and fallback.
    Threaded,
    /// The event-loop core ([`crate::reactor`]): one poll-driven
    /// reactor thread plus a bounded dispatch worker pool, with write
    /// backpressure and GIOP fragment streaming of large replies.
    Reactor,
}

impl ServerCore {
    /// Core selected by the `WEBFINDIT_SERVER_CORE` environment
    /// variable (`"threaded"` or `"reactor"`); defaults to the reactor.
    pub fn from_env() -> Self {
        match std::env::var("WEBFINDIT_SERVER_CORE").as_deref() {
            Ok("threaded") => ServerCore::Threaded,
            _ => ServerCore::Reactor,
        }
    }
}

/// Static configuration of an ORB instance.
#[derive(Debug, Clone)]
pub struct OrbConfig {
    /// Vendor-flavored instance name, e.g. `"Orbix"`.
    pub name: String,
    /// Hostname advertised inside IORs, e.g. `"dba.icis.qut.edu.au"`.
    pub advertised_host: String,
    /// Port advertised inside IORs (decoupled from the real socket).
    pub advertised_port: u16,
    /// Byte order this ORB marshals with (receivers adapt via the GIOP
    /// header flag).
    pub byte_order: ByteOrder,
    /// Circuit-breaker policy applied to every client channel.
    pub breaker: BreakerConfig,
    /// Which server core runs the listener (default: environment
    /// selection via [`ServerCore::from_env`], i.e. the reactor).
    pub server_core: ServerCore,
    /// Dispatch worker threads under the reactor core (ignored by the
    /// threaded core, which spawns per request).
    pub dispatch_workers: usize,
}

impl OrbConfig {
    /// Convenience constructor (default breaker policy).
    pub fn new(
        name: impl Into<String>,
        advertised_host: impl Into<String>,
        advertised_port: u16,
        byte_order: ByteOrder,
    ) -> Self {
        OrbConfig {
            name: name.into(),
            advertised_host: advertised_host.into(),
            advertised_port,
            byte_order,
            breaker: BreakerConfig::default(),
            server_core: ServerCore::from_env(),
            dispatch_workers: DEFAULT_DISPATCH_WORKERS,
        }
    }

    /// Override the circuit-breaker policy.
    pub fn with_breaker(mut self, breaker: BreakerConfig) -> Self {
        self.breaker = breaker;
        self
    }

    /// Pin the server core, overriding the environment selection.
    pub fn with_server_core(mut self, core: ServerCore) -> Self {
        self.server_core = core;
        self
    }

    /// Override the reactor's dispatch worker pool size.
    pub fn with_dispatch_workers(mut self, workers: usize) -> Self {
        self.dispatch_workers = workers.max(1);
        self
    }
}

/// One accepted server-side connection: the shared reply writer (worker
/// threads interleave replies through it) plus a raw handle for severing.
struct ServerConn {
    writer: Arc<Mutex<FramedTcp>>,
    raw: TcpStream,
}

/// A running ORB instance.
pub struct Orb {
    config: OrbConfig,
    domain: Arc<OrbDomain>,
    adapter: Arc<ObjectAdapter>,
    metrics: Arc<OrbMetrics>,
    listener_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    /// Accepted server-side connections, kept so `shutdown` can send an
    /// orderly GIOP CloseConnection and then sever blocked readers.
    server_conns: Arc<Mutex<Vec<ServerConn>>>,
    /// Client channel pool: advertised endpoint → multiplexed channel.
    channels: Mutex<HashMap<(String, u16), Arc<IiopChannel>>>,
    next_request_id: AtomicU32,
    /// Join handle of the core's driver thread: the accept loop
    /// (threaded) or the reactor event loop.
    core_handle: Mutex<Option<JoinHandle<()>>>,
    /// Recycled buffers for the client-side CDR encode path (the
    /// reactor core keeps its own pool for replies).
    pool: Arc<BufPool>,
}

impl Orb {
    /// Start an ORB: bind a loopback listener, register the endpoint in
    /// the domain, and begin serving requests.
    pub fn start(config: OrbConfig, domain: Arc<OrbDomain>) -> OrbResult<Arc<Orb>> {
        let listener = TcpListener::bind("127.0.0.1:0").map_err(WireError::Io)?;
        let listener_addr = listener.local_addr().map_err(WireError::Io)?;
        domain.register_endpoint(
            config.advertised_host.clone(),
            config.advertised_port,
            listener_addr,
        );
        domain.register_orb(config.name.clone());

        let orb = Arc::new(Orb {
            config,
            domain,
            adapter: Arc::new(ObjectAdapter::new()),
            metrics: Arc::new(OrbMetrics::default()),
            listener_addr,
            shutdown: Arc::new(AtomicBool::new(false)),
            server_conns: Arc::new(Mutex::new(Vec::new())),
            channels: Mutex::new(HashMap::new()),
            next_request_id: AtomicU32::new(1),
            core_handle: Mutex::new(None),
            pool: BufPool::shared(),
        });

        let handle = match orb.config.server_core {
            ServerCore::Threaded => {
                let accept_orb = Arc::clone(&orb);
                std::thread::Builder::new()
                    .name(format!("orb-{}-accept", orb.config.name))
                    .spawn(move || accept_loop(accept_orb, listener))
                    .expect("spawning ORB accept thread")
            }
            ServerCore::Reactor => {
                let core = crate::reactor::spawn(
                    orb.config.name.clone(),
                    listener,
                    Arc::clone(&orb.adapter),
                    Arc::clone(&orb.metrics),
                    orb.config.byte_order,
                    Arc::clone(&orb.shutdown),
                    orb.config.dispatch_workers,
                    BufPool::shared(),
                )
                .map_err(WireError::Io)?;
                core.join
            }
        };
        *orb.core_handle.lock() = Some(handle);
        Ok(orb)
    }

    /// Which server core this ORB is running.
    pub fn server_core(&self) -> ServerCore {
        self.config.server_core
    }

    /// This ORB's instance name.
    pub fn name(&self) -> &str {
        &self.config.name
    }

    /// The advertised (IOR-visible) endpoint.
    pub fn advertised_endpoint(&self) -> (String, u16) {
        (
            self.config.advertised_host.clone(),
            self.config.advertised_port,
        )
    }

    /// The ORB's object adapter.
    pub fn adapter(&self) -> &ObjectAdapter {
        &self.adapter
    }

    /// Traffic counters.
    pub fn metrics(&self) -> &OrbMetrics {
        &self.metrics
    }

    /// A shared handle to the traffic counters, for components (e.g.
    /// data-source servants) that outlive a borrow of the ORB.
    pub fn metrics_arc(&self) -> Arc<OrbMetrics> {
        Arc::clone(&self.metrics)
    }

    /// The domain this ORB participates in.
    pub fn domain(&self) -> &Arc<OrbDomain> {
        &self.domain
    }

    /// The byte order this ORB marshals with.
    pub fn byte_order(&self) -> ByteOrder {
        self.config.byte_order
    }

    /// Activate `servant` under `key` and mint an IOR for it.
    pub fn activate(&self, key: impl Into<Vec<u8>>, servant: Arc<dyn Servant>) -> Ior {
        let key = key.into();
        let type_id = servant.interface_id().to_owned();
        self.adapter.activate(key.clone(), servant);
        Ior::new_iiop(
            type_id,
            self.config.advertised_host.clone(),
            self.config.advertised_port,
            key,
        )
    }

    /// Build an IOR for an already-activated key.
    pub fn ior_for(&self, key: impl Into<Vec<u8>>, type_id: impl Into<String>) -> Ior {
        Ior::new_iiop(
            type_id,
            self.config.advertised_host.clone(),
            self.config.advertised_port,
            key,
        )
    }

    fn is_local(&self, host: &str, port: u16) -> bool {
        host == self.config.advertised_host && port == self.config.advertised_port
    }

    /// Invoke `operation(args)` on the object `ior` refers to, with
    /// default [`CallOptions`] (no deadline, safe retries allowed).
    pub fn invoke(&self, ior: &Ior, operation: &str, args: &[Value]) -> OrbResult<Value> {
        self.invoke_with(ior, operation, args, &CallOptions::default())
    }

    /// Invoke `operation(args)` under explicit per-call `options`.
    ///
    /// Collocated targets dispatch directly through the adapter; remote
    /// targets marshal through GIOP over a multiplexed [`IiopChannel`].
    /// Every IIOP profile in the IOR is tried in order; the call falls
    /// through to the next profile only when the request provably never
    /// reached the previous endpoint.
    pub fn invoke_with(
        &self,
        ior: &Ior,
        operation: &str,
        args: &[Value],
        options: &CallOptions,
    ) -> OrbResult<Value> {
        if self.shutdown.load(Ordering::SeqCst) {
            return Err(OrbError::ShutDown);
        }
        let mut profiles = ior.iiop_profiles();
        if profiles.is_empty() {
            return Err(OrbError::NoEndpoint);
        }
        // Health-scored profile selection: endpoints whose breaker is
        // open go last, half-open after healthy ones. The sort is
        // stable, so the IOR's own preference order breaks ties.
        if profiles.len() > 1 {
            profiles.sort_by_key(|p| self.profile_health(&p.host, p.port));
        }
        let mut last_err = None;
        for profile in &profiles {
            if self.is_local(&profile.host, profile.port) {
                self.metrics.add(&self.metrics.local_dispatches, 1);
                return self
                    .adapter
                    .dispatch(&profile.object_key, operation, args)
                    .map_err(|e| OrbError::RemoteException {
                        system: e.is_system(),
                        description: e.description(),
                    });
            }
            match self.invoke_remote(profile, operation, args, options) {
                Ok(v) => return Ok(v),
                // The request never reached this endpoint, so an
                // alternate profile is a safe fallback, not a duplicate.
                Err(f) if f.class == FailureClass::NeverSent => {
                    last_err = Some(f.error);
                }
                Err(f) => return Err(f.error),
            }
        }
        Err(last_err.expect("profile loop ran at least once"))
    }

    fn invoke_remote(
        &self,
        profile: &IiopProfile,
        operation: &str,
        args: &[Value],
        options: &CallOptions,
    ) -> Result<Value, CallFailure> {
        let channel = self.channel_to(&profile.host, profile.port);
        let mut attempt = 0;
        loop {
            attempt += 1;
            // A fresh id per attempt, so a late reply to an abandoned
            // attempt can never be routed to its retry.
            let request_id = self.next_request_id.fetch_add(1, Ordering::Relaxed);
            let msg = giop::request(
                request_id,
                profile.object_key.clone(),
                operation,
                args.to_vec(),
            );
            let frame = msg
                .encode_pooled(self.config.byte_order, &self.pool)
                .map_err(|e| CallFailure {
                    class: FailureClass::NeverSent,
                    error: OrbError::Wire(e),
                })?;
            let result = channel.call(request_id, &frame, options.deadline);
            if !matches!(
                &result,
                Err(CallFailure {
                    class: FailureClass::NeverSent,
                    ..
                })
            ) {
                self.metrics.add(&self.metrics.requests_sent, 1);
            }
            match result {
                Ok(reply) => return self.interpret_reply(reply, operation, args, options),
                Err(f) => {
                    // Retry only failures that prove the request was
                    // never dispatched by the peer; resending after an
                    // ambiguous drop could execute the operation twice.
                    let safe = f.class != FailureClass::Ambiguous;
                    if safe && attempt < options.retry.attempts {
                        self.metrics.add(&self.metrics.retries, 1);
                        continue;
                    }
                    return Err(f);
                }
            }
        }
    }

    /// Turn a routed GIOP Reply into the invocation outcome.
    fn interpret_reply(
        &self,
        reply: GiopMessage,
        operation: &str,
        args: &[Value],
        options: &CallOptions,
    ) -> Result<Value, CallFailure> {
        // The reply already completed on the wire: none of these
        // outcomes may be retried, so failures classify as Ambiguous.
        let completed = |error| CallFailure {
            class: FailureClass::Ambiguous,
            error,
        };
        match reply {
            GiopMessage::Reply { status, body, .. } => match status {
                ReplyStatus::NoException => Ok(body),
                ReplyStatus::UserException | ReplyStatus::SystemException => {
                    let description = body
                        .field("exception")
                        .and_then(Value::as_str)
                        .unwrap_or("unknown exception")
                        .to_owned();
                    Err(completed(OrbError::RemoteException {
                        system: status == ReplyStatus::SystemException,
                        description,
                    }))
                }
                ReplyStatus::LocationForward => match body {
                    Value::ObjectRef(fwd) => self
                        .invoke_with(&fwd, operation, args, options)
                        .map_err(completed),
                    _ => Err(completed(OrbError::RemoteException {
                        system: true,
                        description: "malformed LocationForward body".into(),
                    })),
                },
            },
            other => Err(completed(OrbError::RemoteException {
                system: true,
                description: format!("unexpected message kind {:?}", other.kind()),
            })),
        }
    }

    /// Probe where an object lives (GIOP LocateRequest).
    pub fn locate(&self, ior: &Ior) -> OrbResult<LocateStatus> {
        let profiles = ior.iiop_profiles();
        if profiles.is_empty() {
            return Err(OrbError::NoEndpoint);
        }
        let mut last_err = None;
        for profile in &profiles {
            if self.is_local(&profile.host, profile.port) {
                return Ok(if self.adapter.contains(&profile.object_key) {
                    LocateStatus::ObjectHere
                } else {
                    LocateStatus::UnknownObject
                });
            }
            let channel = self.channel_to(&profile.host, profile.port);
            let request_id = self.next_request_id.fetch_add(1, Ordering::Relaxed);
            let msg = GiopMessage::LocateRequest {
                request_id,
                object_key: profile.object_key.clone(),
            };
            let frame = msg.encode(self.config.byte_order)?;
            match channel.call(request_id, &frame, None) {
                Ok(GiopMessage::LocateReply { status, .. }) => return Ok(status),
                Ok(other) => {
                    return Err(OrbError::RemoteException {
                        system: true,
                        description: format!("unexpected locate reply {:?}", other.kind()),
                    })
                }
                Err(f) if f.class == FailureClass::NeverSent => {
                    last_err = Some(f.error);
                }
                Err(f) => return Err(f.error),
            }
        }
        Err(last_err.expect("profile loop ran at least once"))
    }

    /// Health score for ordering an IOR's profiles: local collocation
    /// is best, then endpoints with a closed (or not-yet-dialed)
    /// breaker, then half-open, with tripped-open endpoints last.
    fn profile_health(&self, host: &str, port: u16) -> u8 {
        if self.is_local(host, port) {
            return 0;
        }
        match self.channels.lock().get(&(host.to_owned(), port)) {
            None => 1,
            Some(ch) => match ch.breaker_state() {
                BreakerState::Closed => 1,
                BreakerState::HalfOpen => 2,
                BreakerState::Open => 3,
            },
        }
    }

    /// The breaker state of the channel to `host:port`, if one exists.
    pub fn breaker_state(&self, host: &str, port: u16) -> Option<BreakerState> {
        self.channels
            .lock()
            .get(&(host.to_owned(), port))
            .map(|ch| ch.breaker_state())
    }

    /// The multiplexed channel for `host:port`, creating it on first use.
    fn channel_to(&self, host: &str, port: u16) -> Arc<IiopChannel> {
        let key = (host.to_owned(), port);
        let mut channels = self.channels.lock();
        if let Some(ch) = channels.get(&key) {
            return Arc::clone(ch);
        }
        let domain = Arc::clone(&self.domain);
        let (rhost, rport) = key.clone();
        let channel = Arc::new(IiopChannel::new(
            key.clone(),
            self.config.byte_order,
            Arc::clone(&self.metrics),
            MAX_CONNS_PER_ENDPOINT,
            self.config.breaker,
            self.domain.chaos_registry(),
            Box::new(move || domain.resolve(&rhost, rport)),
        ));
        channels.insert(key, Arc::clone(&channel));
        channel
    }

    /// Shut the ORB down: stop accepting, close server connections in
    /// an orderly way (GIOP CloseConnection tells clients outstanding
    /// requests were not processed, so their retries are safe), sever
    /// them, unregister the endpoint, and drop client channels.
    pub fn shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return; // already down
        }
        // Unblock the core's driver thread by poking the listener: the
        // accept loop returns from accept(), the reactor's poll reports
        // the listener readable; both then see the flag. Joining the
        // reactor also waits for its CloseConnection broadcast.
        let _ = TcpStream::connect(self.listener_addr);
        if let Some(handle) = self.core_handle.lock().take() {
            let _ = handle.join();
        }
        // Threaded core only (the vec stays empty under the reactor).
        // Drain under the lock, send outside it: CloseConnection goes
        // over the socket, and holding `server_conns` across those
        // writes would block the accept path of a concurrent connection.
        let drained: Vec<ServerConn> = self.server_conns.lock().drain(..).collect();
        for conn in drained {
            // try_lock: a worker mid-send must not wedge shutdown; the
            // sever below unblocks its peer regardless.
            if let Some(mut w) = conn.writer.try_lock() {
                let _ = w.send_message(&GiopMessage::CloseConnection, self.config.byte_order);
            }
            let _ = conn.raw.shutdown(Shutdown::Both);
        }
        self.domain
            .unregister_endpoint(&self.config.advertised_host, self.config.advertised_port);
        for (_, channel) in self.channels.lock().drain() {
            channel.close();
        }
    }
}

impl Drop for Orb {
    fn drop(&mut self) {
        // Only effective if the caller forgot to shut down; harmless
        // otherwise. (Arc cycles are avoided: handler threads hold only
        // the adapter/metrics Arcs, not the Orb itself.)
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            let _ = TcpStream::connect(self.listener_addr);
        }
    }
}

fn accept_loop(orb: Arc<Orb>, listener: TcpListener) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => break,
        };
        if orb.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let _ = stream.set_nodelay(true);
        let writer = match stream.try_clone() {
            // Held across send_frame by design: replies must hit the
            // socket as whole frames. Exempt, like the client-side
            // MuxConn writer.
            Ok(clone) => Arc::new(
                Mutex::new_labeled(FramedTcp::new(clone), "orb::ServerConn.writer")
                    .allow_hold_across_blocking(
                        "serializes whole-frame reply writes; held for one send only",
                    ),
            ),
            Err(_) => continue,
        };
        if let Ok(raw) = stream.try_clone() {
            orb.server_conns.lock().push(ServerConn {
                writer: Arc::clone(&writer),
                raw,
            });
        }
        let adapter = Arc::clone(&orb.adapter);
        let metrics = Arc::clone(&orb.metrics);
        let order = orb.config.byte_order;
        let name = orb.config.name.clone();
        let _ = std::thread::Builder::new()
            .name(format!("orb-{name}-conn"))
            .spawn(move || serve_connection(stream, writer, adapter, metrics, order, name));
    }
}

/// Serve one inbound IIOP connection until it closes or errors.
///
/// Requests dispatch on worker threads so a stalled servant cannot
/// block other requests multiplexed on the same connection; all workers
/// funnel replies through the shared `writer`. A CancelRequest for a
/// request whose dispatch is still running suppresses its reply.
fn serve_connection(
    stream: TcpStream,
    writer: Arc<Mutex<FramedTcp>>,
    adapter: Arc<ObjectAdapter>,
    metrics: Arc<OrbMetrics>,
    order: ByteOrder,
    orb_name: String,
) {
    let mut transport = FramedTcp::new(stream);
    let canceled: Arc<Mutex<HashSet<u32>>> = Arc::new(Mutex::new(HashSet::new()));
    loop {
        let frame = match transport.recv_frame() {
            Ok(f) => f,
            Err(WireError::Closed) => break,
            Err(_) => {
                // Protocol garbage: tell the peer and drop the connection,
                // as GIOP requires.
                let _ = writer
                    .lock()
                    .send_message(&GiopMessage::MessageError, order);
                break;
            }
        };
        metrics.add(&metrics.bytes_received, frame.len() as u64);
        let msg = match GiopMessage::decode_frame(&frame) {
            Ok(m) => m,
            Err(_) => {
                let _ = writer
                    .lock()
                    .send_message(&GiopMessage::MessageError, order);
                break;
            }
        };
        match msg {
            GiopMessage::Request { header, args } => {
                metrics.add(&metrics.requests_served, 1);
                let adapter = Arc::clone(&adapter);
                let metrics = Arc::clone(&metrics);
                let writer = Arc::clone(&writer);
                let canceled = Arc::clone(&canceled);
                let spawned = std::thread::Builder::new()
                    .name(format!("orb-{orb_name}-req-{}", header.request_id))
                    .spawn(move || {
                        serve_request(header, args, &adapter, &metrics, &writer, &canceled, order)
                    });
                if spawned.is_err() {
                    // Out of threads: better to close than to hang the
                    // client waiting for a reply that cannot come.
                    break;
                }
            }
            GiopMessage::LocateRequest {
                request_id,
                object_key,
            } => {
                metrics.add(&metrics.locates_served, 1);
                let status = if adapter.contains(&object_key) {
                    LocateStatus::ObjectHere
                } else {
                    LocateStatus::UnknownObject
                };
                let reply = GiopMessage::LocateReply {
                    request_id,
                    status,
                    forward: None,
                };
                if writer.lock().send_message(&reply, order).is_err() {
                    break;
                }
            }
            GiopMessage::CancelRequest { request_id } => {
                // Dispatch may still be running on a worker thread;
                // remember the id so its reply is suppressed.
                let mut set = canceled.lock();
                if set.len() >= MAX_REMEMBERED_CANCELS {
                    set.clear();
                }
                set.insert(request_id);
            }
            GiopMessage::CloseConnection => break,
            GiopMessage::MessageError => break,
            GiopMessage::Reply { .. } | GiopMessage::LocateReply { .. } => {
                // Clients do not send replies; protocol violation.
                let _ = writer
                    .lock()
                    .send_message(&GiopMessage::MessageError, order);
                break;
            }
            GiopMessage::Fragment { .. } => {
                // Fragmentation is not negotiated by this implementation.
                let _ = writer
                    .lock()
                    .send_message(&GiopMessage::MessageError, order);
                break;
            }
        }
    }
}

/// Dispatch one request through the adapter and build its GIOP reply.
/// Panic isolation and exception mapping live here so both server
/// cores (threaded workers, reactor pool workers) behave identically.
pub(crate) fn dispatch_reply(
    header: &RequestHeader,
    args: &[Value],
    adapter: &ObjectAdapter,
    metrics: &OrbMetrics,
) -> GiopMessage {
    // A servant bug must become a system exception for this one
    // request, not a dead connection: isolate panics.
    let dispatched = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        adapter.dispatch(&header.object_key, &header.operation, args)
    }));
    match dispatched {
        Ok(Ok(value)) => giop::reply_ok(header.request_id, value),
        Ok(Err(e)) => {
            metrics.add(&metrics.exceptions_sent, 1);
            giop::reply_exception(header.request_id, e.is_system(), &e.description())
        }
        Err(panic) => {
            metrics.add(&metrics.exceptions_sent, 1);
            let what = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "unknown panic".into());
            giop::reply_exception(
                header.request_id,
                true,
                &format!("UNKNOWN: servant panicked: {what}"),
            )
        }
    }
}

/// Dispatch one request on its worker thread and send the reply.
fn serve_request(
    header: RequestHeader,
    args: Vec<Value>,
    adapter: &ObjectAdapter,
    metrics: &OrbMetrics,
    writer: &Mutex<FramedTcp>,
    canceled: &Mutex<HashSet<u32>>,
    order: ByteOrder,
) {
    let reply = dispatch_reply(&header, &args, adapter, metrics);
    if canceled.lock().remove(&header.request_id) {
        // The client gave up on this request (deadline expired there);
        // a reply now would be bytes it will only discard.
        return;
    }
    if header.response_expected {
        if let Ok(frame) = reply.encode(order) {
            metrics.add(&metrics.bytes_sent, frame.len() as u64);
            let _ = writer.lock().send_frame(&frame);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::RetryPolicy;
    use crate::servant::{EchoServant, ServantError};
    use std::time::Duration;

    fn two_orbs() -> (Arc<Orb>, Arc<Orb>, Arc<OrbDomain>) {
        let domain = OrbDomain::new();
        let orbix = Orb::start(
            OrbConfig::new("Orbix", "orbix.qut.edu.au", 9000, ByteOrder::BigEndian),
            Arc::clone(&domain),
        )
        .unwrap();
        let visi = Orb::start(
            OrbConfig::new(
                "VisiBroker",
                "visi.qut.edu.au",
                9001,
                ByteOrder::LittleEndian,
            ),
            Arc::clone(&domain),
        )
        .unwrap();
        (orbix, visi, domain)
    }

    #[test]
    fn cross_orb_invocation_over_iiop() {
        let (orbix, visi, _domain) = two_orbs();
        let ior = orbix.activate("echo/1", Arc::new(EchoServant));

        // VisiBroker (little-endian) calls a servant hosted on Orbix
        // (big-endian): a genuine cross-vendor IIOP round-trip.
        let out = visi
            .invoke(&ior, "echo", &[Value::Long(5), Value::string("hi")])
            .unwrap();
        assert_eq!(
            out,
            Value::Sequence(vec![Value::Long(5), Value::string("hi")])
        );

        let visi_m = visi.metrics().snapshot();
        let orbix_m = orbix.metrics().snapshot();
        assert_eq!(visi_m.requests_sent, 1);
        assert_eq!(visi_m.local_dispatches, 0);
        assert_eq!(orbix_m.requests_served, 1);
        assert!(visi_m.bytes_sent > 12);
        assert_eq!(visi_m.in_flight, 0);
        let lat = visi
            .metrics()
            .endpoint_latency("orbix.qut.edu.au", 9000)
            .unwrap();
        assert_eq!(lat.calls, 1);
        assert!(lat.max() > Duration::ZERO);

        orbix.shutdown();
        visi.shutdown();
    }

    #[test]
    fn collocated_invocation_short_circuits() {
        let (orbix, _visi, _domain) = two_orbs();
        let ior = orbix.activate("echo/1", Arc::new(EchoServant));
        let out = orbix.invoke(&ior, "ping", &[]).unwrap();
        assert_eq!(out, Value::string("pong"));
        let m = orbix.metrics().snapshot();
        assert_eq!(m.local_dispatches, 1);
        assert_eq!(m.requests_sent, 0);
        orbix.shutdown();
    }

    #[test]
    fn user_and_system_exceptions_propagate() {
        let (orbix, visi, _domain) = two_orbs();
        let ior = orbix.activate("echo/1", Arc::new(EchoServant));

        match visi.invoke(&ior, "fail_user", &[]) {
            Err(OrbError::RemoteException {
                system: false,
                description,
            }) => assert_eq!(description, "declared failure"),
            other => panic!("expected user exception, got {other:?}"),
        }
        match visi.invoke(&ior, "fail_system", &[]) {
            Err(OrbError::RemoteException { system: true, .. }) => {}
            other => panic!("expected system exception, got {other:?}"),
        }
        match visi.invoke(&ior, "no_such_op", &[]) {
            Err(OrbError::RemoteException {
                system: true,
                description,
            }) => assert!(description.contains("BAD_OPERATION")),
            other => panic!("expected BAD_OPERATION, got {other:?}"),
        }
        orbix.shutdown();
        visi.shutdown();
    }

    #[test]
    fn unknown_object_key_is_object_not_exist() {
        let (orbix, visi, _domain) = two_orbs();
        let ior = orbix.ior_for("ghost", "IDL:X:1.0");
        match visi.invoke(&ior, "ping", &[]) {
            Err(OrbError::RemoteException {
                system: true,
                description,
            }) => assert!(description.contains("OBJECT_NOT_EXIST")),
            other => panic!("expected OBJECT_NOT_EXIST, got {other:?}"),
        }
        orbix.shutdown();
        visi.shutdown();
    }

    #[test]
    fn locate_probe() {
        let (orbix, visi, _domain) = two_orbs();
        let ior = orbix.activate("echo/1", Arc::new(EchoServant));
        assert_eq!(visi.locate(&ior).unwrap(), LocateStatus::ObjectHere);
        let ghost = orbix.ior_for("ghost", "IDL:X:1.0");
        assert_eq!(visi.locate(&ghost).unwrap(), LocateStatus::UnknownObject);
        // Local probe too.
        assert_eq!(orbix.locate(&ior).unwrap(), LocateStatus::ObjectHere);
        orbix.shutdown();
        visi.shutdown();
    }

    #[test]
    fn unknown_host_fails_fast() {
        let (_orbix, visi, _domain) = two_orbs();
        let ior = Ior::new_iiop("IDL:X:1.0", "nowhere.example", 1234, b"k".to_vec());
        assert!(matches!(
            visi.invoke(&ior, "ping", &[]),
            Err(OrbError::UnknownHost { .. })
        ));
    }

    #[test]
    fn nil_reference_rejected() {
        let (_orbix, visi, _domain) = two_orbs();
        assert!(matches!(
            visi.invoke(&Ior::nil(), "ping", &[]),
            Err(OrbError::NoEndpoint)
        ));
    }

    #[test]
    fn shutdown_then_invoke_errors() {
        let (orbix, visi, _domain) = two_orbs();
        let ior = orbix.activate("echo/1", Arc::new(EchoServant));
        visi.invoke(&ior, "ping", &[]).unwrap();
        orbix.shutdown();
        // The endpoint is gone from the domain and the connection severed;
        // either way the call must fail, not hang.
        assert!(visi.invoke(&ior, "ping", &[]).is_err());
        visi.shutdown();
    }

    #[test]
    fn sequential_calls_share_one_connection() {
        let (orbix, visi, _domain) = two_orbs();
        let ior = orbix.activate("echo/1", Arc::new(EchoServant));
        for _ in 0..10 {
            visi.invoke(&ior, "ping", &[]).unwrap();
        }
        let channels = visi.channels.lock();
        assert_eq!(channels.len(), 1);
        let channel = channels
            .get(&("orbix.qut.edu.au".to_string(), 9000))
            .unwrap();
        // Never more than one caller in flight, so the channel never
        // had a reason to open a second connection.
        assert_eq!(channel.live_connections(), 1);
        drop(channels);
        orbix.shutdown();
        visi.shutdown();
    }

    #[test]
    fn concurrent_invocations() {
        let (orbix, visi, _domain) = two_orbs();
        let ior = orbix.activate("echo/1", Arc::new(EchoServant));
        let mut handles = Vec::new();
        for i in 0..8 {
            let visi = Arc::clone(&visi);
            let ior = ior.clone();
            handles.push(std::thread::spawn(move || {
                for j in 0..25 {
                    let v = visi
                        .invoke(&ior, "echo", &[Value::Long(i * 100 + j)])
                        .unwrap();
                    assert_eq!(v, Value::Sequence(vec![Value::Long(i * 100 + j)]));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(visi.metrics().snapshot().requests_sent, 200);
        // Eight callers, at most MAX_CONNS_PER_ENDPOINT connections:
        // the channel multiplexed rather than opening one per caller.
        let channels = visi.channels.lock();
        let channel = channels
            .get(&("orbix.qut.edu.au".to_string(), 9000))
            .unwrap();
        assert!(channel.live_connections() <= MAX_CONNS_PER_ENDPOINT);
        drop(channels);
        orbix.shutdown();
        visi.shutdown();
    }

    /// A servant that stalls until told to finish, for deadline tests.
    struct StallServant {
        release: Arc<(std::sync::Mutex<bool>, std::sync::Condvar)>,
    }

    impl Servant for StallServant {
        fn interface_id(&self) -> &str {
            "IDL:webfindit/Stall:1.0"
        }

        fn invoke(&self, operation: &str, _args: &[Value]) -> Result<Value, ServantError> {
            match operation {
                "stall" => {
                    let (lock, cvar) = &*self.release;
                    let mut done = lock.lock().unwrap();
                    while !*done {
                        done = cvar.wait(done).unwrap();
                    }
                    Ok(Value::string("released"))
                }
                other => Err(ServantError::UnknownOperation(other.to_owned())),
            }
        }
    }

    #[test]
    fn deadline_expires_and_other_calls_proceed() {
        let (orbix, visi, _domain) = two_orbs();
        let release = Arc::new((std::sync::Mutex::new(false), std::sync::Condvar::new()));
        let stall_ior = orbix.activate(
            "stall/1",
            Arc::new(StallServant {
                release: Arc::clone(&release),
            }),
        );
        let echo_ior = orbix.activate("echo/1", Arc::new(EchoServant));

        // Fire the stalling call with a short deadline on its own thread.
        let stalled = {
            let visi = Arc::clone(&visi);
            let ior = stall_ior.clone();
            std::thread::spawn(move || {
                visi.invoke_with(
                    &ior,
                    "stall",
                    &[],
                    &CallOptions {
                        deadline: Some(Duration::from_millis(100)),
                        retry: RetryPolicy::never(),
                    },
                )
            })
        };

        // While the stalling request occupies the server, other calls
        // multiplexed over the same endpoint must still complete.
        for _ in 0..5 {
            visi.invoke(&echo_ior, "ping", &[]).unwrap();
        }

        match stalled.join().unwrap() {
            Err(OrbError::DeadlineExpired { operation_deadline }) => {
                assert_eq!(operation_deadline, Duration::from_millis(100));
            }
            other => panic!("expected DeadlineExpired, got {other:?}"),
        }
        assert_eq!(visi.metrics().snapshot().timeouts, 1);

        // Release the servant so its worker thread can exit.
        {
            let (lock, cvar) = &*release;
            *lock.lock().unwrap() = true;
            cvar.notify_all();
        }
        orbix.shutdown();
        visi.shutdown();
    }

    #[test]
    fn invoke_falls_back_to_alternate_profile() {
        let (orbix, visi, _domain) = two_orbs();
        orbix.activate("echo/1", Arc::new(EchoServant));
        // First profile points at an unresolvable host; the second is
        // the live endpoint. The call must fall through, not fail.
        let mut ior = Ior::new_iiop(
            "IDL:webfindit/Echo:1.0",
            "dead.example",
            1,
            b"echo/1".to_vec(),
        );
        ior.push_iiop_profile("orbix.qut.edu.au", 9000, b"echo/1".to_vec());
        let out = visi.invoke(&ior, "ping", &[]).unwrap();
        assert_eq!(out, Value::string("pong"));
        orbix.shutdown();
        visi.shutdown();
    }
}
