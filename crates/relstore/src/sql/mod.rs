//! The SQL front end: lexer, statement AST, and recursive-descent parser.
//!
//! The supported subset covers everything the paper's wrappers emit:
//! DDL (`CREATE TABLE`, `CREATE INDEX`, `DROP TABLE`), DML (`INSERT`,
//! `UPDATE`, `DELETE`), transactions (`BEGIN`/`COMMIT`/`ROLLBACK`) and
//! `SELECT` with joins (inner/left/cross), `WHERE`, `GROUP BY`/`HAVING`,
//! aggregates, `ORDER BY`, `DISTINCT`, and `LIMIT`.

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{Join, JoinKind, OrderKey, SelectItem, SelectStmt, Statement, TableRef};
pub use lexer::{Lexer, Token, TokenKind};
pub use parser::parse_statement;
