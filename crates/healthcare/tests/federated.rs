//! Federated cross-site query execution over the healthcare
//! deployment: union across a coalition, semi-join key shipping
//! between the insurers, serial/parallel merge identity, EXPLAIN
//! plans, and graceful degradation when a member's ORB dies mid-query.

use std::time::Duration;
use webfindit::orb::CallOptions;
use webfindit::processor::{Processor, Response};
use webfindit::session::BrowserSession;
use webfindit_healthcare::build_healthcare;

const UNION: &str = "Invoke ResearchProjects.Funding() At Coalition Research;";
const SEMI_JOIN: &str = "Invoke Policies.Premium() At Coalition Medical Insurance \
                         Where Policies.Holder In Members.Name();";

fn fed_submit(processor: &Processor, session: &mut BrowserSession, text: &str) -> Response {
    processor.submit(session, text, None).unwrap()
}

#[test]
fn union_spans_three_member_sites() {
    let dep = build_healthcare(1999).unwrap();
    let processor = Processor::new(dep.fed.clone());
    let mut session = BrowserSession::new("QUT Research");
    match fed_submit(&processor, &mut session, UNION) {
        Response::Federated(o) => {
            // RBH, QUT, and RMIT export a research-project type; the
            // Queensland Cancer Fund (Grant class) is skipped at plan
            // time, not degraded.
            assert_eq!(o.per_site.len(), 3, "{:?}", o.per_site);
            let sites: Vec<&str> = o.per_site.iter().map(|(s, _)| s.as_str()).collect();
            assert_eq!(
                sites,
                vec![
                    "QUT Research",
                    "RMIT Medical Research",
                    "Royal Brisbane Hospital"
                ],
                "member order is deterministic"
            );
            assert!(o.complete(), "{:?}", o.degraded);
            assert_eq!(o.columns, vec!["site", "funding"]);
            assert!(o.rows.iter().all(|r| r.len() == 2));
            // The seeded RBH AIDS project is in the merge.
            assert!(
                o.rows
                    .iter()
                    .any(|r| r[0] == "Royal Brisbane Hospital" && r[1] == "250000"),
                "{:?}",
                o.rows
            );
            assert!(session.last_degraded.is_empty());
        }
        other => panic!("{other:?}"),
    }
    dep.fed.shutdown();
}

#[test]
fn parallel_merge_is_byte_identical_to_sequential_reference() {
    let dep = build_healthcare(1999).unwrap();
    let mut serial = Processor::new(dep.fed.clone());
    serial.set_fed_workers(1);
    let mut parallel = Processor::new(dep.fed.clone());
    parallel.set_fed_workers(8);

    for query in [
        UNION,
        SEMI_JOIN,
        "Invoke ResearchProjects.Funding() At Coalition Research Limit 3;",
        "Invoke ResearchProjects.Funding() At Sites With Information Medical Research;",
    ] {
        let mut sa = BrowserSession::new("QUT Research");
        let mut sb = BrowserSession::new("QUT Research");
        let a = fed_submit(&serial, &mut sa, query);
        let cold = fed_submit(&parallel, &mut sb, query);
        let warm = fed_submit(&parallel, &mut sb, query);
        assert_eq!(a.render(), cold.render(), "{query}");
        assert_eq!(a.render(), warm.render(), "{query}");
    }
    dep.fed.shutdown();
}

#[test]
fn semi_join_ships_keys_from_medibank_to_mbf() {
    let dep = build_healthcare(1999).unwrap();
    let processor = Processor::new(dep.fed.clone());
    let mut session = BrowserSession::new("Medicare");

    // Reference sets pulled directly through the ISIs.
    let members: Vec<String> = match fed_submit(
        &processor,
        &mut session,
        "Submit Native 'SELECT name FROM members' To Instance Medibank;",
    ) {
        Response::Table(rs) => rs.rows.iter().map(|r| r[0].to_string()).collect(),
        other => panic!("{other:?}"),
    };
    let all_policies = match fed_submit(
        &processor,
        &mut session,
        "Submit Native 'SELECT holder, premium FROM policies' To Instance MBF;",
    ) {
        Response::Table(rs) => rs.rows,
        other => panic!("{other:?}"),
    };
    let expected: Vec<String> = all_policies
        .iter()
        .filter(|r| members.contains(&r[0].to_string()))
        .map(|r| r[1].to_string())
        .collect();
    assert!(
        !expected.is_empty() && expected.len() < all_policies.len(),
        "seeded data must overlap partially ({} of {})",
        expected.len(),
        all_policies.len()
    );

    match fed_submit(&processor, &mut session, SEMI_JOIN) {
        Response::Federated(o) => {
            // Only MBF exports Policies; Medibank is the build side.
            assert_eq!(o.per_site.len(), 1);
            assert_eq!(o.per_site[0].0, "MBF");
            let premiums: Vec<String> = o.rows.iter().map(|r| r[1].clone()).collect();
            assert_eq!(premiums, expected, "semi-join keeps exactly the matches");
            assert!(o.stats.keys_shipped > 0, "{:?}", o.stats);
            // rows_shipped counts both the build rows (Medibank member
            // names) and the filtered probe rows — the full MBF policy
            // table never travels.
            assert_eq!(
                o.stats.rows_shipped,
                (members.len() + expected.len()) as u64,
                "{:?}",
                o.stats
            );
        }
        other => panic!("{other:?}"),
    }
    dep.fed.shutdown();
}

#[test]
fn limit_is_pushed_down_and_bounds_the_merge() {
    let dep = build_healthcare(1999).unwrap();
    let processor = Processor::new(dep.fed.clone());
    let mut session = BrowserSession::new("QUT Research");
    let unbounded = match fed_submit(&processor, &mut session, UNION) {
        Response::Federated(o) => o,
        other => panic!("{other:?}"),
    };
    match fed_submit(
        &processor,
        &mut session,
        "Invoke ResearchProjects.Funding() At Coalition Research Limit 2;",
    ) {
        Response::Federated(o) => {
            assert_eq!(o.rows.len(), 2);
            assert_eq!(o.rows, unbounded.rows[..2].to_vec(), "prefix of the merge");
            assert!(
                o.stats.rows_shipped < unbounded.stats.rows_shipped,
                "limit pushdown reduced rows on the wire ({} vs {})",
                o.stats.rows_shipped,
                unbounded.stats.rows_shipped
            );
        }
        other => panic!("{other:?}"),
    }
    dep.fed.shutdown();
}

#[test]
fn explain_renders_the_federated_plan() {
    let dep = build_healthcare(1999).unwrap();
    let processor = Processor::new(dep.fed.clone());
    let mut session = BrowserSession::new("QUT Research");
    match fed_submit(&processor, &mut session, &format!("Explain {UNION}")) {
        Response::Plan(lines) => {
            let text = lines.join("\n");
            assert!(
                text.starts_with("FedQuery At Coalition Research (4 member(s))"),
                "{text}"
            );
            assert!(text.contains("Merge: Union in member order"), "{text}");
            assert!(
                text.contains("Ship @ Royal Brisbane Hospital [SQL]: SELECT a.funding FROM researchprojects a"),
                "{text}"
            );
            assert!(
                text.contains(
                    "Ship @ RMIT Medical Research [OQL]: select funding from ResearchProject"
                ),
                "{text}"
            );
            assert!(
                text.contains("Skip @ Queensland Cancer Fund: does not export ResearchProjects"),
                "{text}"
            );
        }
        other => panic!("{other:?}"),
    }
    // The semi-join plan names the build side and the probe attribute.
    match fed_submit(&processor, &mut session, &format!("Explain {SEMI_JOIN}")) {
        Response::Plan(lines) => {
            let text = lines.join("\n");
            assert!(
                text.contains("SemiJoin: Policies.Holder In keys of"),
                "{text}"
            );
            assert!(text.contains("Build @ Medibank [SQL]"), "{text}");
            assert!(text.contains("Ship @ MBF [SQL]"), "{text}");
        }
        other => panic!("{other:?}"),
    }
    dep.fed.shutdown();
}

#[test]
fn killed_member_degrades_instead_of_failing_the_query() {
    let dep = build_healthcare(1999).unwrap();
    dep.fed
        .set_call_options(CallOptions::with_deadline(Duration::from_millis(200)));
    let processor = Processor::new(dep.fed.clone());
    let mut session = BrowserSession::new("QUT Research");

    // Orbix hosts the ObjectStore sites — RMIT among them.
    dep.fed.kill_orb("Orbix").unwrap();

    let render_once = |session: &mut BrowserSession| match fed_submit(&processor, session, UNION) {
        Response::Federated(o) => {
            assert_eq!(
                o.degraded_sites(),
                vec!["RMIT Medical Research"],
                "the dead member degrades; the skipped one does not"
            );
            assert!(
                o.degraded[0].reason.contains("unreachable"),
                "{:?}",
                o.degraded
            );
            let sites: Vec<&str> = o.per_site.iter().map(|(s, _)| s.as_str()).collect();
            assert_eq!(sites, vec!["QUT Research", "Royal Brisbane Hospital"]);
            assert!(!o.rows.is_empty(), "survivors' rows are kept");
            o.render()
        }
        other => panic!("{other:?}"),
    };
    let first = render_once(&mut session);
    assert_eq!(
        session.last_degraded.len(),
        1,
        "the session remembers the degradation"
    );
    // Degradation is deterministic: a replay is byte-identical.
    let second = render_once(&mut session);
    assert_eq!(first, second);

    // Healing the ORB restores the full merge (after the breaker's
    // cooldown lets a probe through).
    dep.fed.restart_orb("Orbix").unwrap();
    std::thread::sleep(Duration::from_millis(80));
    match fed_submit(&processor, &mut session, UNION) {
        Response::Federated(o) => {
            assert!(o.complete(), "{:?}", o.degraded);
            assert_eq!(o.per_site.len(), 3);
        }
        other => panic!("{other:?}"),
    }
    dep.fed.shutdown();
}

#[test]
fn federated_counters_reach_the_client_orb_and_trace() {
    let dep = build_healthcare(1999).unwrap();
    let processor = Processor::new(dep.fed.clone());
    let mut session = BrowserSession::new("QUT Research");
    let mut trace = webfindit::Trace::new();
    let resp = processor
        .submit(&mut session, SEMI_JOIN, Some(&mut trace))
        .unwrap();
    assert!(matches!(resp, Response::Federated(_)));
    let m = dep.fed.client_orb().metrics().snapshot();
    assert_eq!(m.fed_queries, 1);
    assert!(m.fed_subqueries >= 2, "build + probe subqueries: {m:?}");
    assert!(m.fed_sites_answered >= 2);
    assert!(m.fed_rows_shipped > 0);
    assert!(m.fed_bytes_shipped > 0);
    assert!(m.fed_keys_shipped > 0);
    let rendered = trace.render();
    assert!(rendered.contains("semi-join build"), "{rendered}");
    assert!(rendered.contains("keys shipped"), "{rendered}");
    assert!(rendered.contains("merged"), "{rendered}");
    dep.fed.shutdown();
}
