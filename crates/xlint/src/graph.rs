//! Call-graph construction and reachability with witness paths.
//!
//! Resolution is name-based and deliberately under-approximate: a lint
//! must never drown real findings in false edges, so ambiguous method
//! names that collide with std (`push`, `get`, `send`, …) only resolve
//! through an explicit `self.` or `Type::` receiver. The trade-off is
//! documented in DESIGN.md §7.

use crate::facts::{FileFacts, FnFact, Recv};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Method names that collide with std-library methods so often that a
/// bare `expr.name(…)` receiver carries no information. Calls through
/// these names only produce edges via `self.` or `Type::` receivers.
const METHOD_STOPLIST: [&str; 69] = [
    "push",
    "pop",
    "insert",
    "get",
    "get_mut",
    "remove",
    "len",
    "is_empty",
    "clear",
    "contains_key",
    "extend",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "clone",
    "to_owned",
    "to_string",
    "to_vec",
    "as_str",
    "as_ref",
    "as_bytes",
    "unwrap",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "expect",
    "map",
    "map_err",
    "and_then",
    "or_else",
    "ok",
    "err",
    "ok_or_else",
    "filter",
    "filter_map",
    "collect",
    "join",
    "take",
    "load",
    "store",
    "fetch_add",
    "fetch_sub",
    "fetch_max",
    "drain",
    "entry",
    "or_default",
    "or_insert",
    "keys",
    "values",
    "sort",
    "retain",
    "resize",
    "find",
    "position",
    "split",
    "parse",
    "new",
    "default",
    "send",
    "recv",
    "read",
    "write",
    "flush",
    "truncate",
    "shutdown",
    "open",
    "accept",
    "reset",
];

/// Above this many same-name candidates a method call is treated as
/// unresolvable — fanning an edge to a dozen unrelated impls produces
/// witness paths nobody believes.
const AMBIG_CAP: usize = 10;

/// A function node: (file index, fn index within that file).
pub type NodeId = (usize, usize);

pub struct CallGraph {
    /// Outgoing edges per node: (callee node, call-site line).
    pub edges: HashMap<NodeId, Vec<(NodeId, usize)>>,
}

pub fn fn_at(files: &[FileFacts], id: NodeId) -> &FnFact {
    &files[id.0].fns[id.1]
}

/// Build name indexes and resolve every call site to zero or more
/// workspace functions. Test-only functions and non-resolvable files
/// (evidence scope: tests/, benches/) are excluded as resolution
/// targets so name collisions with test helpers never create edges.
pub fn build(files: &[FileFacts], resolvable: &[bool]) -> CallGraph {
    // Indexes: qualified (Type, name) → nodes; free-fn name → nodes;
    // method name → nodes (any impl type).
    let mut by_qualified: BTreeMap<(String, String), Vec<NodeId>> = BTreeMap::new();
    let mut by_free: BTreeMap<String, Vec<NodeId>> = BTreeMap::new();
    let mut by_method: BTreeMap<String, Vec<NodeId>> = BTreeMap::new();
    for (fi, file) in files.iter().enumerate() {
        if !resolvable.get(fi).copied().unwrap_or(true) {
            continue;
        }
        for (gi, f) in file.fns.iter().enumerate() {
            if f.in_test {
                continue;
            }
            let id = (fi, gi);
            match &f.impl_type {
                Some(ty) => {
                    by_qualified
                        .entry((ty.clone(), f.name.clone()))
                        .or_default()
                        .push(id);
                    by_method.entry(f.name.clone()).or_default().push(id);
                }
                None => by_free.entry(f.name.clone()).or_default().push(id),
            }
        }
    }

    let prefer_same_crate = |candidates: &[NodeId], crate_name: &str| -> Vec<NodeId> {
        let same: Vec<NodeId> = candidates
            .iter()
            .copied()
            .filter(|id| files[id.0].crate_name == crate_name)
            .collect();
        if same.is_empty() {
            candidates.to_vec()
        } else {
            same
        }
    };

    let mut edges: HashMap<NodeId, Vec<(NodeId, usize)>> = HashMap::new();
    for (fi, file) in files.iter().enumerate() {
        for (gi, f) in file.fns.iter().enumerate() {
            let id = (fi, gi);
            let out = edges.entry(id).or_default();
            for call in &f.calls {
                let targets: Vec<NodeId> = match &call.recv {
                    Recv::SelfDot => {
                        let ty = f.impl_type.clone().unwrap_or_default();
                        by_qualified
                            .get(&(ty, call.name.clone()))
                            .cloned()
                            .unwrap_or_default()
                    }
                    Recv::Path(seg) => {
                        match by_qualified.get(&(seg.clone(), call.name.clone())) {
                            Some(v) => v.clone(),
                            // `module::free_fn(…)` — fall back to free
                            // functions by name (same crate preferred).
                            None => prefer_same_crate(
                                by_free
                                    .get(&call.name)
                                    .map(Vec::as_slice)
                                    .unwrap_or_default(),
                                &file.crate_name,
                            ),
                        }
                    }
                    Recv::Method => {
                        if METHOD_STOPLIST.contains(&call.name.as_str()) {
                            Vec::new()
                        } else {
                            let candidates = by_method
                                .get(&call.name)
                                .map(Vec::as_slice)
                                .unwrap_or_default();
                            let narrowed = prefer_same_crate(candidates, &file.crate_name);
                            if narrowed.len() > AMBIG_CAP {
                                Vec::new()
                            } else {
                                narrowed
                            }
                        }
                    }
                    Recv::Bare => prefer_same_crate(
                        by_free
                            .get(&call.name)
                            .map(Vec::as_slice)
                            .unwrap_or_default(),
                        &file.crate_name,
                    ),
                };
                for t in targets {
                    if t != id {
                        out.push((t, call.line));
                    }
                }
            }
        }
    }
    CallGraph { edges }
}

impl CallGraph {
    /// BFS from `roots`; returns, per reached node, the (parent,
    /// call-site line) edge it was first reached through. Roots map to
    /// themselves. Cycle-safe by construction (visited set).
    pub fn reach(&self, roots: &[NodeId]) -> HashMap<NodeId, (NodeId, usize)> {
        let mut seen: HashMap<NodeId, (NodeId, usize)> = HashMap::new();
        let mut queue: VecDeque<NodeId> = VecDeque::new();
        for &r in roots {
            seen.insert(r, (r, 0));
            queue.push_back(r);
        }
        while let Some(n) = queue.pop_front() {
            if let Some(outs) = self.edges.get(&n) {
                for &(m, line) in outs {
                    if let std::collections::hash_map::Entry::Vacant(e) = seen.entry(m) {
                        e.insert((n, line));
                        queue.push_back(m);
                    }
                }
            }
        }
        seen
    }

    /// The chain of (node, call-line-into-next) from a root down to
    /// `target`, using the BFS parent map.
    pub fn path_to(
        &self,
        reach: &HashMap<NodeId, (NodeId, usize)>,
        target: NodeId,
    ) -> Vec<(NodeId, usize)> {
        let mut rev = Vec::new();
        let mut cur = target;
        while let Some(&(parent, line)) = reach.get(&cur) {
            rev.push((cur, line));
            if parent == cur {
                break;
            }
            cur = parent;
        }
        rev.reverse();
        rev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facts::extract;
    use std::path::Path;

    fn files(sources: &[(&str, &str)]) -> Vec<FileFacts> {
        sources
            .iter()
            .enumerate()
            .map(|(i, (p, s))| extract(i, Path::new(p), s))
            .collect()
    }

    #[test]
    fn self_calls_resolve_within_impl_type() {
        let fs = files(&[(
            "crates/a/src/lib.rs",
            "impl R {\n    fn run(&self) { self.tick(); }\n    fn tick(&self) {}\n}\n",
        )]);
        let g = build(&fs, &vec![true; fs.len()]);
        let run = (0, 0);
        assert_eq!(g.edges[&run], vec![((0, 1), 2)]);
    }

    #[test]
    fn cross_file_bare_calls_resolve_same_crate_first() {
        let fs = files(&[
            ("crates/a/src/a.rs", "fn caller() { helper(); }\n"),
            ("crates/a/src/b.rs", "pub fn helper() {}\n"),
            ("crates/z/src/c.rs", "pub fn helper() {}\n"),
        ]);
        let g = build(&fs, &vec![true; fs.len()]);
        assert_eq!(g.edges[&(0, 0)], vec![((1, 0), 1)]);
    }

    #[test]
    fn stoplisted_method_names_produce_no_edges() {
        let fs = files(&[(
            "crates/a/src/lib.rs",
            "impl Q {\n    pub fn push(&self) { x.send_frame(&f); }\n}\nfn f() { v.push(1); }\n",
        )]);
        let g = build(&fs, &vec![true; fs.len()]);
        // `v.push(1)` must NOT resolve to Q::push.
        assert!(g.edges[&(0, 1)].is_empty());
    }

    #[test]
    fn reach_terminates_on_cycles_and_records_paths() {
        let fs = files(&[(
            "crates/a/src/lib.rs",
            "fn a() { b(); }\nfn b() { a(); c(); }\nfn c() {}\n",
        )]);
        let g = build(&fs, &vec![true; fs.len()]);
        let reach = g.reach(&[(0, 0)]);
        assert!(reach.contains_key(&(0, 2)));
        let path = g.path_to(&reach, (0, 2));
        let names: Vec<&str> = path
            .iter()
            .map(|(id, _)| fs[id.0].fns[id.1].name.as_str())
            .collect();
        assert_eq!(names, ["a", "b", "c"]);
    }
}
