//! Poison-free lock wrappers over `std::sync`.
//!
//! The workspace treats a panic while holding a lock as an isolated
//! event (servant panics are already caught at the dispatch boundary),
//! so lock poisoning is noise: these wrappers recover the guard from a
//! poisoned lock instead of propagating an error. The API mirrors the
//! subset of `parking_lot` the codebase uses: `lock()`, `read()`, and
//! `write()` return guards directly.

use std::fmt;
use std::sync::{self, TryLockError};

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock whose `lock` ignores poisoning.
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock whose `read`/`write` ignore poisoning.
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value` in a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn poisoned_mutex_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // A poisoned lock must still hand out guards.
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
