//! Recursive-descent SQL parser.
//!
//! Expression precedence, loosest first:
//! `OR` < `AND` < `NOT` < comparison / `LIKE` / `IN` / `BETWEEN` /
//! `IS NULL` < `||` < `+ -` < `* / %` < unary minus < primary.

use crate::expr::{AggFunc, BinOp, Expr, UnaryOp};
use crate::schema::{Column, TableSchema};
use crate::sql::ast::{Join, JoinKind, OrderKey, SelectItem, SelectStmt, Statement, TableRef};
use crate::sql::lexer::{Lexer, Token, TokenKind};
use crate::types::{DataType, Datum};
use crate::{RelError, RelResult};

/// Parse a single SQL statement (a trailing `;` is allowed).
pub fn parse_statement(sql: &str) -> RelResult<Statement> {
    let tokens = Lexer::tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_symbol(";");
    p.expect_eof()?;
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn advance(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> RelResult<T> {
        Err(RelError::Parse {
            message: message.into(),
            offset: self.offset(),
        })
    }

    /// If the next token is keyword `kw` (lowercase), consume it.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), TokenKind::Ident(s) if s == kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> RelResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(format!("expected keyword {}", kw.to_ascii_uppercase()))
        }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s == kw)
    }

    fn eat_symbol(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), TokenKind::Symbol(s) if *s == sym) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, sym: &str) -> RelResult<()> {
        if self.eat_symbol(sym) {
            Ok(())
        } else {
            self.err(format!("expected {sym:?}"))
        }
    }

    fn expect_eof(&self) -> RelResult<()> {
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(RelError::Parse {
                message: format!("unexpected trailing input: {:?}", self.peek()),
                offset: self.offset(),
            })
        }
    }

    fn ident(&mut self) -> RelResult<String> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.advance();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    // ---- statements -------------------------------------------------

    fn statement(&mut self) -> RelResult<Statement> {
        if self.peek_kw("select") {
            return Ok(Statement::Select(self.select()?));
        }
        if self.eat_kw("explain") {
            return Ok(Statement::Explain(Box::new(self.select()?)));
        }
        if self.eat_kw("create") {
            if self.eat_kw("table") {
                return self.create_table();
            }
            if self.eat_kw("index") || (self.eat_kw("unique") && self.eat_kw("index")) {
                return self.create_index();
            }
            return self.err("expected TABLE or INDEX after CREATE");
        }
        if self.eat_kw("drop") {
            self.expect_kw("table")?;
            let if_exists = if self.eat_kw("if") {
                self.expect_kw("exists")?;
                true
            } else {
                false
            };
            let name = self.ident()?;
            return Ok(Statement::DropTable { name, if_exists });
        }
        if self.eat_kw("insert") {
            return self.insert();
        }
        if self.eat_kw("update") {
            return self.update();
        }
        if self.eat_kw("delete") {
            return self.delete();
        }
        if self.eat_kw("begin") {
            self.eat_kw("transaction");
            self.eat_kw("work");
            return Ok(Statement::Begin);
        }
        if self.eat_kw("commit") {
            self.eat_kw("work");
            return Ok(Statement::Commit);
        }
        if self.eat_kw("rollback") {
            self.eat_kw("work");
            return Ok(Statement::Rollback);
        }
        self.err(format!("unrecognized statement start: {:?}", self.peek()))
    }

    fn create_table(&mut self) -> RelResult<Statement> {
        let name = self.ident()?;
        self.expect_symbol("(")?;
        let mut columns = Vec::new();
        loop {
            let col_name = self.ident()?;
            let type_name = self.ident()?;
            // Swallow optional (n) / (p, s) length arguments.
            if self.eat_symbol("(") {
                loop {
                    match self.advance() {
                        TokenKind::Symbol(")") => break,
                        TokenKind::Eof => return self.err("unterminated type arguments"),
                        _ => {}
                    }
                }
            }
            let data_type = DataType::parse(&type_name).ok_or_else(|| RelError::Parse {
                message: format!("unknown type {type_name}"),
                offset: self.offset(),
            })?;
            let mut col = Column::new(col_name, data_type);
            loop {
                if self.eat_kw("primary") {
                    self.expect_kw("key")?;
                    col = col.primary_key();
                } else if self.eat_kw("not") {
                    self.expect_kw("null")?;
                    col = col.not_null();
                } else {
                    break;
                }
            }
            columns.push(col);
            if self.eat_symbol(",") {
                // Table-level PRIMARY KEY (a, b) constraint.
                if self.peek_kw("primary") {
                    self.advance();
                    self.expect_kw("key")?;
                    self.expect_symbol("(")?;
                    loop {
                        let key_col = self.ident()?;
                        let lower = key_col.to_ascii_lowercase();
                        match columns.iter_mut().find(|c| c.name == lower) {
                            Some(c) => {
                                c.primary_key = true;
                                c.not_null = true;
                            }
                            None => {
                                return self
                                    .err(format!("PRIMARY KEY names unknown column {key_col}"))
                            }
                        }
                        if !self.eat_symbol(",") {
                            break;
                        }
                    }
                    self.expect_symbol(")")?;
                    self.expect_symbol(")")?;
                    break;
                }
                continue;
            }
            self.expect_symbol(")")?;
            break;
        }
        Ok(Statement::CreateTable(TableSchema::new(name, columns)))
    }

    fn create_index(&mut self) -> RelResult<Statement> {
        let name = self.ident()?;
        self.expect_kw("on")?;
        let table = self.ident()?;
        self.expect_symbol("(")?;
        let column = self.ident()?;
        self.expect_symbol(")")?;
        Ok(Statement::CreateIndex {
            name,
            table,
            column,
        })
    }

    fn insert(&mut self) -> RelResult<Statement> {
        self.expect_kw("into")?;
        let table = self.ident()?;
        let columns = if self.eat_symbol("(") {
            let mut cols = Vec::new();
            loop {
                cols.push(self.ident()?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
            self.expect_symbol(")")?;
            Some(cols)
        } else {
            None
        };
        self.expect_kw("values")?;
        let mut rows = Vec::new();
        loop {
            self.expect_symbol("(")?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
            self.expect_symbol(")")?;
            rows.push(row);
            if !self.eat_symbol(",") {
                break;
            }
        }
        Ok(Statement::Insert {
            table,
            columns,
            rows,
        })
    }

    fn update(&mut self) -> RelResult<Statement> {
        let table = self.ident()?;
        self.expect_kw("set")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect_symbol("=")?;
            let value = self.expr()?;
            assignments.push((col, value));
            if !self.eat_symbol(",") {
                break;
            }
        }
        let filter = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            assignments,
            filter,
        })
    }

    fn delete(&mut self) -> RelResult<Statement> {
        self.expect_kw("from")?;
        let table = self.ident()?;
        let filter = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete { table, filter })
    }

    fn select(&mut self) -> RelResult<SelectStmt> {
        self.expect_kw("select")?;
        let distinct = self.eat_kw("distinct");
        self.eat_kw("all");

        let mut items = Vec::new();
        loop {
            items.push(self.select_item()?);
            if !self.eat_symbol(",") {
                break;
            }
        }

        self.expect_kw("from")?;
        let from = self.table_ref()?;
        let mut joins = Vec::new();
        loop {
            if self.eat_symbol(",") {
                let table = self.table_ref()?;
                joins.push(Join {
                    kind: JoinKind::Cross,
                    table,
                    on: None,
                });
            } else if self.peek_kw("join") || self.peek_kw("inner") {
                self.eat_kw("inner");
                self.expect_kw("join")?;
                let table = self.table_ref()?;
                self.expect_kw("on")?;
                let on = self.expr()?;
                joins.push(Join {
                    kind: JoinKind::Inner,
                    table,
                    on: Some(on),
                });
            } else if self.peek_kw("left") {
                self.advance();
                self.eat_kw("outer");
                self.expect_kw("join")?;
                let table = self.table_ref()?;
                self.expect_kw("on")?;
                let on = self.expr()?;
                joins.push(Join {
                    kind: JoinKind::Left,
                    table,
                    on: Some(on),
                });
            } else {
                break;
            }
        }

        let filter = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };

        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }

        let having = if self.eat_kw("having") {
            Some(self.expr()?)
        } else {
            None
        };

        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    self.eat_kw("asc");
                    false
                };
                order_by.push(OrderKey { expr, desc });
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }

        let limit = if self.eat_kw("limit") {
            match self.advance() {
                TokenKind::Int(n) if n >= 0 => Some(n as u64),
                _ => return self.err("expected non-negative integer after LIMIT"),
            }
        } else {
            None
        };

        Ok(SelectStmt {
            distinct,
            items,
            from,
            joins,
            filter,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn select_item(&mut self) -> RelResult<SelectItem> {
        if self.eat_symbol("*") {
            return Ok(SelectItem::Wildcard);
        }
        // alias.* form requires two-token lookahead.
        if let TokenKind::Ident(name) = self.peek().clone() {
            if self.tokens.get(self.pos + 1).map(|t| &t.kind) == Some(&TokenKind::Symbol("."))
                && self.tokens.get(self.pos + 2).map(|t| &t.kind) == Some(&TokenKind::Symbol("*"))
            {
                self.advance();
                self.advance();
                self.advance();
                return Ok(SelectItem::QualifiedWildcard(name));
            }
        }
        let expr = self.expr()?;
        let alias = if self.eat_kw("as") {
            Some(self.ident()?)
        } else if let TokenKind::Ident(s) = self.peek() {
            // Bare alias, but not a clause keyword.
            const CLAUSE_KEYWORDS: &[&str] = &[
                "from", "where", "group", "having", "order", "limit", "join", "inner", "left",
                "on", "union",
            ];
            if CLAUSE_KEYWORDS.contains(&s.as_str()) {
                None
            } else {
                Some(self.ident()?)
            }
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn table_ref(&mut self) -> RelResult<TableRef> {
        let name = self.ident()?;
        let alias = if self.eat_kw("as") {
            Some(self.ident()?)
        } else if let TokenKind::Ident(s) = self.peek() {
            const CLAUSE_KEYWORDS: &[&str] = &[
                "where", "group", "having", "order", "limit", "join", "inner", "left", "on", "set",
                "union",
            ];
            if CLAUSE_KEYWORDS.contains(&s.as_str()) {
                None
            } else {
                Some(self.ident()?)
            }
        } else {
            None
        };
        Ok(TableRef { name, alias })
    }

    // ---- expressions -------------------------------------------------

    /// Public entry for expression parsing (used by the dialect tests).
    pub(crate) fn expr(&mut self) -> RelResult<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> RelResult<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("or") {
            let right = self.and_expr()?;
            left = Expr::bin(BinOp::Or, left, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> RelResult<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("and") {
            let right = self.not_expr()?;
            left = Expr::bin(BinOp::And, left, right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> RelResult<Expr> {
        if self.eat_kw("not") {
            let inner = self.not_expr()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner),
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> RelResult<Expr> {
        let left = self.concat_expr()?;

        // IS [NOT] NULL
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }

        // [NOT] IN / BETWEEN / LIKE
        let negated = self.eat_kw("not");
        if self.eat_kw("in") {
            self.expect_symbol("(")?;
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
            self.expect_symbol(")")?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_kw("between") {
            let low = self.concat_expr()?;
            self.expect_kw("and")?;
            let high = self.concat_expr()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw("like") {
            let pattern = self.concat_expr()?;
            let like = Expr::bin(BinOp::Like, left, pattern);
            return Ok(if negated {
                Expr::Unary {
                    op: UnaryOp::Not,
                    expr: Box::new(like),
                }
            } else {
                like
            });
        }
        if negated {
            return self.err("expected IN, BETWEEN, or LIKE after NOT");
        }

        // Plain comparison operators.
        let op = if self.eat_symbol("=") {
            Some(BinOp::Eq)
        } else if self.eat_symbol("<>") || self.eat_symbol("!=") {
            Some(BinOp::Ne)
        } else if self.eat_symbol("<=") {
            Some(BinOp::Le)
        } else if self.eat_symbol(">=") {
            Some(BinOp::Ge)
        } else if self.eat_symbol("<") {
            Some(BinOp::Lt)
        } else if self.eat_symbol(">") {
            Some(BinOp::Gt)
        } else {
            None
        };
        match op {
            Some(op) => {
                let right = self.concat_expr()?;
                Ok(Expr::bin(op, left, right))
            }
            None => Ok(left),
        }
    }

    fn concat_expr(&mut self) -> RelResult<Expr> {
        let mut left = self.additive()?;
        while self.eat_symbol("||") {
            let right = self.additive()?;
            left = Expr::bin(BinOp::Concat, left, right);
        }
        Ok(left)
    }

    fn additive(&mut self) -> RelResult<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            if self.eat_symbol("+") {
                let right = self.multiplicative()?;
                left = Expr::bin(BinOp::Add, left, right);
            } else if self.eat_symbol("-") {
                let right = self.multiplicative()?;
                left = Expr::bin(BinOp::Sub, left, right);
            } else {
                break;
            }
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> RelResult<Expr> {
        let mut left = self.unary()?;
        loop {
            if self.eat_symbol("*") {
                let right = self.unary()?;
                left = Expr::bin(BinOp::Mul, left, right);
            } else if self.eat_symbol("/") {
                let right = self.unary()?;
                left = Expr::bin(BinOp::Div, left, right);
            } else if self.eat_symbol("%") {
                let right = self.unary()?;
                left = Expr::bin(BinOp::Mod, left, right);
            } else {
                break;
            }
        }
        Ok(left)
    }

    fn unary(&mut self) -> RelResult<Expr> {
        if self.eat_symbol("-") {
            let inner = self.unary()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(inner),
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> RelResult<Expr> {
        match self.peek().clone() {
            TokenKind::Int(n) => {
                self.advance();
                Ok(Expr::lit(Datum::Int(n)))
            }
            TokenKind::Float(f) => {
                self.advance();
                Ok(Expr::lit(Datum::Double(f)))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(Expr::lit(Datum::Text(s)))
            }
            TokenKind::Symbol("(") => {
                self.advance();
                let e = self.expr()?;
                self.expect_symbol(")")?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.advance();
                match name.as_str() {
                    "null" => return Ok(Expr::lit(Datum::Null)),
                    "true" => return Ok(Expr::lit(Datum::Bool(true))),
                    "false" => return Ok(Expr::lit(Datum::Bool(false))),
                    "date" => {
                        // DATE 'YYYY-MM-DD' literal.
                        if let TokenKind::Str(s) = self.peek().clone() {
                            self.advance();
                            return match crate::types::parse_date(&s) {
                                Some(d) => Ok(Expr::lit(Datum::Date(d))),
                                None => self.err(format!("invalid DATE literal '{s}'")),
                            };
                        }
                    }
                    _ => {}
                }
                // Aggregate call?
                if let Some(func) = agg_func(&name) {
                    if self.eat_symbol("(") {
                        if self.eat_symbol("*") {
                            self.expect_symbol(")")?;
                            if func != AggFunc::Count {
                                return self.err(format!("{name}(*) is only valid for COUNT"));
                            }
                            return Ok(Expr::Aggregate {
                                func,
                                arg: None,
                                distinct: false,
                            });
                        }
                        let distinct = self.eat_kw("distinct");
                        let arg = self.expr()?;
                        self.expect_symbol(")")?;
                        return Ok(Expr::Aggregate {
                            func,
                            arg: Some(Box::new(arg)),
                            distinct,
                        });
                    }
                }
                // Qualified column?
                if self.eat_symbol(".") {
                    let col = self.ident()?;
                    return Ok(Expr::Column {
                        table: Some(name),
                        name: col,
                    });
                }
                Ok(Expr::Column { table: None, name })
            }
            other => self.err(format!("unexpected token in expression: {other:?}")),
        }
    }
}

fn agg_func(name: &str) -> Option<AggFunc> {
    Some(match name {
        "count" => AggFunc::Count,
        "sum" => AggFunc::Sum,
        "avg" => AggFunc::Avg,
        "min" => AggFunc::Min,
        "max" => AggFunc::Max,
        _ => None?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(sql: &str) -> Statement {
        parse_statement(sql).unwrap()
    }

    #[test]
    fn parses_the_papers_funding_query() {
        // The exact query WebTassili generates in Section 2.3.
        let stmt =
            parse("Select a.Funding From ResearchProjects a Where a.Title = 'AIDS and drugs'");
        match stmt {
            Statement::Select(s) => {
                assert_eq!(s.from.name, "researchprojects");
                assert_eq!(s.from.alias.as_deref(), Some("a"));
                assert_eq!(s.items.len(), 1);
                match &s.items[0] {
                    SelectItem::Expr { expr, alias: None } => {
                        assert_eq!(*expr, Expr::qcol("a", "funding"));
                    }
                    other => panic!("unexpected item {other:?}"),
                }
                assert_eq!(
                    s.filter,
                    Some(Expr::bin(
                        BinOp::Eq,
                        Expr::qcol("a", "title"),
                        Expr::lit(Datum::Text("AIDS and drugs".into()))
                    ))
                );
            }
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn parses_select_star_from_medical_students() {
        // The Section 5 screenshot query.
        let stmt = parse("select * from medical_students");
        match stmt {
            Statement::Select(s) => {
                assert_eq!(s.items, vec![SelectItem::Wildcard]);
                assert_eq!(s.from.name, "medical_students");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn create_table_with_constraints() {
        let stmt = parse(
            "CREATE TABLE Patient (Patient_Id INT PRIMARY KEY, Name VARCHAR(40) NOT NULL, \
             Date_Of_Birth DATE, Gender CHAR(1), Address TEXT)",
        );
        match stmt {
            Statement::CreateTable(schema) => {
                assert_eq!(schema.name, "patient");
                assert_eq!(schema.arity(), 5);
                assert!(schema.columns[0].primary_key);
                assert!(schema.columns[1].not_null);
                assert_eq!(schema.columns[2].data_type, DataType::Date);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn create_table_with_table_level_pk() {
        let stmt = parse(
            "CREATE TABLE occupancy (bed_id INT, patient_id INT, date_from DATE, \
             PRIMARY KEY (bed_id, patient_id))",
        );
        match stmt {
            Statement::CreateTable(schema) => {
                assert_eq!(schema.primary_key_indices(), vec![0, 1]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn insert_multi_row() {
        let stmt = parse("INSERT INTO beds (bed_id, location) VALUES (1, 'A'), (2, 'B')");
        match stmt {
            Statement::Insert {
                table,
                columns,
                rows,
            } => {
                assert_eq!(table, "beds");
                assert_eq!(columns.unwrap(), vec!["bed_id", "location"]);
                assert_eq!(rows.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn update_and_delete() {
        match parse("UPDATE beds SET location = 'C' WHERE bed_id = 1") {
            Statement::Update {
                assignments,
                filter,
                ..
            } => {
                assert_eq!(assignments.len(), 1);
                assert!(filter.is_some());
            }
            other => panic!("{other:?}"),
        }
        match parse("DELETE FROM beds") {
            Statement::Delete { filter: None, .. } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn joins() {
        let stmt = parse(
            "SELECT p.name, h.description FROM patient p \
             JOIN history h ON p.patient_id = h.patient_id \
             LEFT JOIN doctors d ON h.doctor_id = d.employee_id \
             WHERE p.gender = 'F'",
        );
        match stmt {
            Statement::Select(s) => {
                assert_eq!(s.joins.len(), 2);
                assert_eq!(s.joins[0].kind, JoinKind::Inner);
                assert_eq!(s.joins[1].kind, JoinKind::Left);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn comma_cross_join() {
        let stmt = parse("SELECT * FROM a, b WHERE a.x = b.y");
        match stmt {
            Statement::Select(s) => {
                assert_eq!(s.joins.len(), 1);
                assert_eq!(s.joins[0].kind, JoinKind::Cross);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn group_by_having_order_limit() {
        let stmt = parse(
            "SELECT doctor_id, COUNT(*) n, AVG(funding) FROM researchprojects \
             GROUP BY doctor_id HAVING COUNT(*) > 2 \
             ORDER BY n DESC, doctor_id LIMIT 10",
        );
        match stmt {
            Statement::Select(s) => {
                assert_eq!(s.group_by.len(), 1);
                assert!(s.having.is_some());
                assert_eq!(s.order_by.len(), 2);
                assert!(s.order_by[0].desc);
                assert!(!s.order_by[1].desc);
                assert_eq!(s.limit, Some(10));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn distinct_and_qualified_wildcard() {
        let stmt = parse("SELECT DISTINCT p.* FROM patient p");
        match stmt {
            Statement::Select(s) => {
                assert!(s.distinct);
                assert_eq!(s.items, vec![SelectItem::QualifiedWildcard("p".into())]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn expression_precedence() {
        let stmt = parse("SELECT 1 + 2 * 3 FROM t");
        match stmt {
            Statement::Select(s) => match &s.items[0] {
                SelectItem::Expr { expr, .. } => {
                    assert_eq!(
                        *expr,
                        Expr::bin(
                            BinOp::Add,
                            Expr::lit(Datum::Int(1)),
                            Expr::bin(
                                BinOp::Mul,
                                Expr::lit(Datum::Int(2)),
                                Expr::lit(Datum::Int(3))
                            )
                        )
                    );
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn not_in_between_like_null() {
        parse("SELECT * FROM t WHERE x NOT IN (1, 2) AND y BETWEEN 1 AND 5 AND z LIKE 'a%' AND w IS NOT NULL");
        parse("SELECT * FROM t WHERE NOT (x = 1)");
        parse("SELECT * FROM t WHERE d = DATE '1999-06-15'");
    }

    #[test]
    fn transactions() {
        assert_eq!(parse("BEGIN"), Statement::Begin);
        assert_eq!(parse("BEGIN TRANSACTION"), Statement::Begin);
        assert_eq!(parse("COMMIT"), Statement::Commit);
        assert_eq!(parse("ROLLBACK WORK"), Statement::Rollback);
    }

    #[test]
    fn errors_carry_offsets() {
        // "FROM" is lexically an identifier, so the parser reads it as a
        // projection column and trips later; what matters is that the
        // error carries a sane offset into the statement.
        match parse_statement("SELECT FROM t") {
            Err(RelError::Parse { offset, .. }) => assert!(offset > 0 && offset <= 13),
            other => panic!("{other:?}"),
        }
        assert!(parse_statement("SELECT * FROM t WHERE x NOT 5").is_err());
        assert!(parse_statement("SELECT * FROM t LIMIT -1").is_err());
        assert!(parse_statement("SELECT * FROM t extra garbage !").is_err());
        assert!(parse_statement("CREATE TABLE t (x BLOB)").is_err());
        assert!(parse_statement("SELECT SUM(*) FROM t").is_err());
    }

    #[test]
    fn trailing_semicolon_ok() {
        parse("SELECT * FROM t;");
    }
}
