//! A behavioural SQL corpus: end-to-end statements against one engine
//! instance, checking results (not just absence of errors) across
//! joins, aggregation, NULL semantics, ordering, DML, transactions,
//! and dialect gating. These are the behaviours the WebFINDIT wrappers
//! rely on; each case is small but asserts exact output.

use webfindit_relstore::{Database, Datum, Dialect};

fn db() -> Database {
    let mut db = Database::new("corpus", Dialect::Canonical);
    db.execute("CREATE TABLE dept (dept_id INT PRIMARY KEY, name TEXT NOT NULL, budget DOUBLE)")
        .unwrap();
    db.execute(
        "CREATE TABLE emp (emp_id INT PRIMARY KEY, name TEXT NOT NULL, dept_id INT, \
         salary DOUBLE, hired DATE)",
    )
    .unwrap();
    db.execute(
        "INSERT INTO dept VALUES (1, 'cardiology', 900000), (2, 'oncology', 1200000), \
         (3, 'radiology', NULL)",
    )
    .unwrap();
    db.execute(
        "INSERT INTO emp VALUES \
         (1, 'Amy', 1, 90000, '1995-03-01'), \
         (2, 'Bo', 1, 70000, '1996-07-15'), \
         (3, 'Cy', 2, 120000, '1994-01-20'), \
         (4, 'Di', 2, 80000, '1998-11-05'), \
         (5, 'Ed', NULL, 50000, '1997-06-30')",
    )
    .unwrap();
    db
}

fn rows(db: &mut Database, sql: &str) -> Vec<Vec<Datum>> {
    db.execute(sql)
        .unwrap_or_else(|e| panic!("{sql}: {e}"))
        .rows()
        .unwrap_or_else(|| panic!("{sql}: expected rows"))
        .rows
        .clone()
}

#[test]
fn join_with_aggregate_per_group() {
    let mut db = db();
    let got = rows(
        &mut db,
        "SELECT d.name, COUNT(*) n, AVG(e.salary) avg_sal FROM dept d \
         JOIN emp e ON d.dept_id = e.dept_id GROUP BY d.name ORDER BY d.name",
    );
    assert_eq!(
        got,
        vec![
            vec![
                Datum::Text("cardiology".into()),
                Datum::Int(2),
                Datum::Double(80000.0)
            ],
            vec![
                Datum::Text("oncology".into()),
                Datum::Int(2),
                Datum::Double(100000.0)
            ],
        ]
    );
}

#[test]
fn left_join_keeps_unmatched_and_null_dept() {
    let mut db = db();
    let got = rows(
        &mut db,
        "SELECT e.name, d.name FROM emp e LEFT JOIN dept d ON e.dept_id = d.dept_id \
         WHERE d.name IS NULL",
    );
    // Ed has NULL dept_id → no match (NULL never equi-joins).
    assert_eq!(got, vec![vec![Datum::Text("Ed".into()), Datum::Null]]);
}

#[test]
fn null_arithmetic_and_coalescing_behaviour() {
    let mut db = db();
    // budget IS NULL filters exactly radiology.
    let got = rows(&mut db, "SELECT name FROM dept WHERE budget IS NULL");
    assert_eq!(got, vec![vec![Datum::Text("radiology".into())]]);
    // NULL + number stays NULL, and comparisons with NULL exclude rows.
    let got = rows(&mut db, "SELECT name FROM dept WHERE budget + 1 > 0");
    assert_eq!(got.len(), 2);
}

#[test]
fn date_filters_and_ordering() {
    let mut db = db();
    let got = rows(
        &mut db,
        "SELECT name FROM emp WHERE hired BETWEEN '1995-01-01' AND '1997-12-31' \
         ORDER BY hired DESC",
    );
    assert_eq!(
        got,
        vec![
            vec![Datum::Text("Ed".into())],
            vec![Datum::Text("Bo".into())],
            vec![Datum::Text("Amy".into())],
        ]
    );
}

#[test]
fn in_list_like_and_concat() {
    let mut db = db();
    let got = rows(
        &mut db,
        "SELECT name || ' (' || emp_id || ')' FROM emp \
         WHERE dept_id IN (1, 2) AND name LIKE '%y' ORDER BY emp_id",
    );
    assert_eq!(
        got,
        vec![
            vec![Datum::Text("Amy (1)".into())],
            vec![Datum::Text("Cy (3)".into())],
        ]
    );
}

#[test]
fn update_delete_and_row_counts() {
    let mut db = db();
    let n = db
        .execute("UPDATE emp SET salary = salary * 1.1 WHERE dept_id = 1")
        .unwrap()
        .count()
        .unwrap();
    assert_eq!(n, 2);
    let got = rows(&mut db, "SELECT salary FROM emp WHERE emp_id = 1");
    assert_eq!(got, vec![vec![Datum::Double(99000.00000000001)]]);
    let n = db
        .execute("DELETE FROM emp WHERE salary < 60000")
        .unwrap()
        .count()
        .unwrap();
    assert_eq!(n, 1); // Ed
    assert_eq!(db.table("emp").unwrap().len(), 4);
}

#[test]
fn transaction_spanning_multiple_tables() {
    let mut db = db();
    db.execute("BEGIN").unwrap();
    db.execute("DELETE FROM emp").unwrap();
    db.execute("UPDATE dept SET budget = 0").unwrap();
    db.execute("INSERT INTO dept VALUES (9, 'ghost', 1)")
        .unwrap();
    db.execute("ROLLBACK").unwrap();
    assert_eq!(db.table("emp").unwrap().len(), 5);
    let got = rows(&mut db, "SELECT COUNT(*) FROM dept WHERE budget > 0");
    assert_eq!(got, vec![vec![Datum::Int(2)]]);
    assert!(db.table("dept").unwrap().len() == 3);
}

#[test]
fn distinct_across_joined_duplicates() {
    let mut db = db();
    let got = rows(
        &mut db,
        "SELECT DISTINCT d.name FROM dept d JOIN emp e ON d.dept_id = e.dept_id \
         ORDER BY d.name",
    );
    assert_eq!(got.len(), 2);
}

#[test]
fn having_filters_groups_not_rows() {
    let mut db = db();
    let got = rows(
        &mut db,
        "SELECT dept_id, MAX(salary) FROM emp WHERE dept_id IS NOT NULL \
         GROUP BY dept_id HAVING MAX(salary) > 100000",
    );
    assert_eq!(got, vec![vec![Datum::Int(2), Datum::Double(120000.0)]]);
}

#[test]
fn three_way_join() {
    let mut db = db();
    db.execute("CREATE TABLE grants (dept_id INT, amount DOUBLE)")
        .unwrap();
    db.execute("INSERT INTO grants VALUES (1, 5000), (1, 2500), (2, 10000)")
        .unwrap();
    let got = rows(
        &mut db,
        "SELECT d.name, e.name, g.amount FROM dept d \
         JOIN emp e ON d.dept_id = e.dept_id \
         JOIN grants g ON g.dept_id = d.dept_id \
         WHERE e.salary > 85000 ORDER BY d.name, g.amount",
    );
    // Amy (cardiology, 2 grants) + Cy (oncology, 1 grant).
    assert_eq!(got.len(), 3);
    assert_eq!(got[0][0], Datum::Text("cardiology".into()));
    assert_eq!(got[2][2], Datum::Double(10000.0));
}

#[test]
fn dialect_gating_matches_vendor_capabilities() {
    for (dialect, agg_ok) in [
        (Dialect::Oracle, true),
        (Dialect::Db2, true),
        (Dialect::Sybase, true),
        (Dialect::MSql, false),
    ] {
        let mut db = Database::new("d", dialect);
        db.execute("CREATE TABLE t (x INT)").unwrap();
        db.execute("INSERT INTO t VALUES (1), (2)").unwrap();
        let result = db.execute("SELECT SUM(x) FROM t");
        assert_eq!(result.is_ok(), agg_ok, "{dialect} aggregate support");
        // Plain scans always work.
        assert!(db.execute("SELECT x FROM t WHERE x = 1").is_ok());
    }
}

#[test]
fn error_paths_are_clean() {
    let mut db = db();
    assert!(db.execute("SELECT missing FROM emp").is_err());
    assert!(db.execute("SELECT * FROM nonexistent").is_err());
    assert!(db
        .execute("INSERT INTO emp VALUES (1, 'dup', 1, 1, NULL)")
        .is_err()); // pk
    assert!(db.execute("INSERT INTO emp (emp_id) VALUES (99)").is_err()); // NOT NULL name
    assert!(db.execute("SELECT 1/0 FROM emp").is_err());
    // The engine is still fine afterwards.
    assert_eq!(db.table("emp").unwrap().len(), 5);
}

#[test]
fn explain_reflects_executor_decisions() {
    let mut db = db();
    db.execute("CREATE INDEX emp_dept ON emp (dept_id)")
        .unwrap();

    let plan_text = |db: &mut Database, sql: &str| -> String {
        let rs = db.execute(sql).unwrap();
        rs.rows()
            .unwrap()
            .rows
            .iter()
            .map(|r| r[0].to_string())
            .collect::<Vec<_>>()
            .join("\n")
    };

    // Primary-key point lookup.
    let p = plan_text(&mut db, "EXPLAIN SELECT name FROM emp WHERE emp_id = 3");
    assert!(
        p.contains("index lookup emp.emp_id = 3 via PRIMARY KEY"),
        "{p}"
    );

    // Secondary index.
    let p = plan_text(&mut db, "EXPLAIN SELECT name FROM emp WHERE dept_id = 1");
    assert!(p.contains("via secondary index"), "{p}");

    // No usable index → scan.
    let p = plan_text(&mut db, "EXPLAIN SELECT name FROM emp WHERE salary > 1");
    assert!(p.contains("scan emp (5 rows)"), "{p}");
    assert!(p.contains("filter: (salary > 1)"), "{p}");

    // Hash join for equi-conditions, nested loop otherwise.
    let p = plan_text(
        &mut db,
        "EXPLAIN SELECT e.name FROM emp e JOIN dept d ON e.dept_id = d.dept_id",
    );
    assert!(p.contains("hash join dept"), "{p}");
    let p = plan_text(
        &mut db,
        "EXPLAIN SELECT e.name FROM emp e JOIN dept d ON e.salary > d.budget",
    );
    assert!(p.contains("nested-loop inner join dept"), "{p}");

    // Aggregation, sort, limit, projection all described.
    let p = plan_text(
        &mut db,
        "EXPLAIN SELECT dept_id, COUNT(*) n FROM emp GROUP BY dept_id \
         HAVING COUNT(*) > 1 ORDER BY n DESC LIMIT 3",
    );
    assert!(p.contains("hash group by: dept_id"), "{p}");
    assert!(p.contains("having: (COUNT(*) > 1)"), "{p}");
    assert!(p.contains("sort: n DESC"), "{p}");
    assert!(p.contains("limit: 3"), "{p}");
    assert!(p.contains("project: dept_id, n"), "{p}");

    // EXPLAIN must not execute: row counts unchanged, stats unaffected
    // beyond the EXPLAIN statements themselves.
    assert_eq!(db.table("emp").unwrap().len(), 5);
}
