//! F5 — regenerate Figure 5: the Royal Brisbane Hospital HTML document.
//! The user clicked the HTML button in the Figure-4 format picker; the
//! browser fetched the page named in the co-database's documentation
//! URL. This binary performs the same resolution through the document
//! store and prints the page.

use webfindit::docs::DocFormat;
use webfindit::processor::Processor;
use webfindit::session::BrowserSession;
use webfindit_bench::header;
use webfindit_healthcare::build_healthcare;

fn main() {
    header("Figure 5", "RBH HTML document displayed");
    let dep = build_healthcare(1999).expect("healthcare deployment");
    let processor = Processor::new(dep.fed.clone());
    let session = BrowserSession::new("QUT Research");

    // Resolve the documentation URL from the co-database descriptor,
    // exactly as the browser does.
    let (descriptor, via) = processor
        .find_descriptor(&session, "Royal Brisbane Hospital")
        .expect("descriptor");
    println!(
        "\ndocumentation URL (from co-database at {via}): {}",
        descriptor.documentation_url
    );
    let doc = dep
        .fed
        .docs()
        .fetch(&descriptor.documentation_url, DocFormat::Html)
        .expect("HTML document");
    println!("content-type: {} \n", doc.format);
    println!("{}", doc.content);
    dep.fed.shutdown();
}
