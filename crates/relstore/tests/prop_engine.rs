//! Property-based tests for the relational engine.
//!
//! Invariants:
//! * expression printing parses back to the same AST (printer/parser
//!   round-trip);
//! * index-assisted equality lookups agree with full scans;
//! * insert-then-count is consistent under random batches with random
//!   duplicate keys (statement atomicity);
//! * `ORDER BY` output is actually sorted under the engine's total order;
//! * date parse/format round-trips across a wide range.

use proptest::prelude::*;
use webfindit_relstore::expr::{BinOp, Expr};
use webfindit_relstore::sql::ast::Statement;
use webfindit_relstore::sql::parse_statement;
use webfindit_relstore::types::{format_date, parse_date, Datum};
use webfindit_relstore::{Database, Dialect};

fn arb_datum() -> impl Strategy<Value = Datum> {
    prop_oneof![
        Just(Datum::Null),
        // Non-negative only: `-1` prints as a unary-negation expression,
        // which is a different (equivalent) AST after reparsing.
        (0i32..i32::MAX).prop_map(|v| Datum::Int(v as i64)),
        (0.0f64..1.0e6).prop_map(Datum::Double),
        "[a-zA-Z0-9 ]{0,12}".prop_map(Datum::Text),
        any::<bool>().prop_map(Datum::Bool),
    ]
}

fn arb_cmp_op() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
    ]
}

/// A small strategy of printable-and-parsable expressions.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        arb_datum().prop_map(Expr::lit),
        "[a-z][a-z0-9_]{0,8}".prop_filter("not a keyword", |s| !is_keyword(s))
            .prop_map(Expr::col),
        (
            "[a-z][a-z0-9_]{0,6}".prop_filter("not a keyword", |s| !is_keyword(s)),
            "[a-z][a-z0-9_]{0,6}".prop_filter("not a keyword", |s| !is_keyword(s))
        )
            .prop_map(|(t, c)| Expr::qcol(t, c)),
    ];
    leaf.prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            (arb_cmp_op(), inner.clone(), inner.clone())
                .prop_map(|(op, l, r)| Expr::bin(op, l, r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::bin(BinOp::Add, l, r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::bin(BinOp::And, l, r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::bin(BinOp::Or, l, r)),
            (inner.clone(), any::<bool>()).prop_map(|(e, n)| Expr::IsNull {
                expr: Box::new(e),
                negated: n
            }),
        ]
    })
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "select" | "from" | "where" | "group" | "having" | "order" | "limit" | "and" | "or"
            | "not" | "in" | "between" | "like" | "is" | "null" | "true" | "false" | "join"
            | "inner" | "left" | "on" | "as" | "by" | "desc" | "asc" | "date" | "count"
            | "sum" | "avg" | "min" | "max" | "distinct" | "union" | "set" | "outer" | "all"
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn expr_print_parse_roundtrip(e in arb_expr()) {
        // NaN-free and keyword-free by construction, so printing then
        // parsing inside a SELECT must reproduce the AST.
        let sql = format!("SELECT {} FROM dual_t", e.to_sql());
        let stmt = parse_statement(&sql).unwrap();
        match stmt {
            Statement::Select(s) => {
                match &s.items[0] {
                    webfindit_relstore::sql::ast::SelectItem::Expr { expr, .. } => {
                        prop_assert_eq!(expr, &e);
                    }
                    other => prop_assert!(false, "unexpected item {:?}", other),
                }
            }
            other => prop_assert!(false, "unexpected stmt {:?}", other),
        }
    }

    #[test]
    fn date_roundtrip(days in -40_000i32..80_000) {
        let s = format_date(days);
        prop_assert_eq!(parse_date(&s), Some(days));
    }

    #[test]
    fn index_agrees_with_scan(
        keys in proptest::collection::btree_set(0i64..500, 1..60),
        probe in 0i64..500,
    ) {
        let mut indexed = Database::new("i", Dialect::Canonical);
        indexed.execute("CREATE TABLE t (k INT PRIMARY KEY, v INT)").unwrap();
        let mut unindexed = Database::new("u", Dialect::Canonical);
        unindexed.execute("CREATE TABLE t (k INT, v INT)").unwrap();
        for k in &keys {
            let ins = format!("INSERT INTO t VALUES ({k}, {})", k * 7);
            indexed.execute(&ins).unwrap();
            unindexed.execute(&ins).unwrap();
        }
        let q = format!("SELECT v FROM t WHERE k = {probe}");
        let a = indexed.execute(&q).unwrap();
        let b = unindexed.execute(&q).unwrap();
        prop_assert_eq!(a.rows().unwrap().rows.clone(), b.rows().unwrap().rows.clone());
    }

    #[test]
    fn order_by_is_sorted(values in proptest::collection::vec(-1000i64..1000, 0..50)) {
        let mut db = Database::new("s", Dialect::Canonical);
        db.execute("CREATE TABLE t (v INT)").unwrap();
        for v in &values {
            db.execute(&format!("INSERT INTO t VALUES ({v})")).unwrap();
        }
        let rs = db.execute("SELECT v FROM t ORDER BY v").unwrap();
        let rows = &rs.rows().unwrap().rows;
        prop_assert_eq!(rows.len(), values.len());
        for w in rows.windows(2) {
            let a = match &w[0][0] { Datum::Int(v) => *v, _ => unreachable!() };
            let b = match &w[1][0] { Datum::Int(v) => *v, _ => unreachable!() };
            prop_assert!(a <= b);
        }
    }

    #[test]
    fn duplicate_keys_keep_count_consistent(
        inserts in proptest::collection::vec(0i64..20, 1..40),
    ) {
        let mut db = Database::new("d", Dialect::Canonical);
        db.execute("CREATE TABLE t (k INT PRIMARY KEY)").unwrap();
        let mut expected = std::collections::BTreeSet::new();
        for k in &inserts {
            let res = db.execute(&format!("INSERT INTO t VALUES ({k})"));
            if expected.insert(*k) {
                prop_assert!(res.is_ok());
            } else {
                prop_assert!(res.is_err());
            }
        }
        let rs = db.execute("SELECT COUNT(*) FROM t").unwrap();
        prop_assert_eq!(
            rs.rows().unwrap().rows[0][0].clone(),
            Datum::Int(expected.len() as i64)
        );
    }

    #[test]
    fn rollback_is_exact_inverse(
        seed in proptest::collection::vec((0i64..50, -100i64..100), 1..20),
        txn_ops in proptest::collection::vec((0u8..3, 0i64..50, -100i64..100), 0..15),
    ) {
        let mut db = Database::new("r", Dialect::Canonical);
        db.execute("CREATE TABLE t (k INT PRIMARY KEY, v INT)").unwrap();
        for (k, v) in &seed {
            let _ = db.execute(&format!("INSERT INTO t VALUES ({k}, {v})"));
        }
        let before = db.execute("SELECT * FROM t ORDER BY k").unwrap();
        db.execute("BEGIN").unwrap();
        for (op, k, v) in &txn_ops {
            let sql = match op {
                0 => format!("INSERT INTO t VALUES ({k}, {v})"),
                1 => format!("UPDATE t SET v = {v} WHERE k = {k}"),
                _ => format!("DELETE FROM t WHERE k = {k}"),
            };
            let _ = db.execute(&sql); // failures (e.g. dup key) are fine — txn continues
        }
        db.execute("ROLLBACK").unwrap();
        let after = db.execute("SELECT * FROM t ORDER BY k").unwrap();
        prop_assert_eq!(
            before.rows().unwrap().rows.clone(),
            after.rows().unwrap().rows.clone()
        );
    }
}
