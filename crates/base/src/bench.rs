//! A miniature benchmark harness with a criterion-shaped API.
//!
//! The bench targets were written against `criterion` with
//! `harness = false`; this module keeps those files almost unchanged in
//! an offline build. It measures wall-clock time per iteration with a
//! short warm-up followed by a fixed number of timed samples, and
//! prints a `median / mean / throughput` line per benchmark. It is a
//! measurement aid, not a statistics engine — cross-run comparisons
//! should use the same machine and build flags.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("algo", n)` → `algo/n`.
    pub fn new(function_id: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_id}/{parameter}"),
        }
    }

    /// `BenchmarkId::from_parameter(n)` → `n`.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the benchmark closure; `iter` runs and times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    /// Time `routine`, first warming up, then recording samples.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: also calibrates how many calls fit in one sample so
        // that sub-microsecond routines are timed in batches.
        let warmup = Instant::now();
        let mut calls: u64 = 0;
        while warmup.elapsed() < Duration::from_millis(50) {
            black_box(routine());
            calls += 1;
        }
        let per_call = Duration::from_millis(50)
            .checked_div(calls.max(1) as u32)
            .unwrap_or_default();
        let batch = if per_call < Duration::from_micros(10) {
            (Duration::from_micros(100).as_nanos() / per_call.as_nanos().max(1)).max(1) as u64
        } else {
            1
        };

        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / batch as u32);
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotate following benchmarks with a throughput denominator.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_benchmark(&name, self.sample_size, self.throughput, f);
        let _ = &self.criterion;
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (kept for criterion API compatibility).
    pub fn finish(&mut self) {}
}

/// Entry point handed to each bench target's top-level functions.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }

    /// Run a standalone benchmark outside any group.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_benchmark(&id.to_string(), 20, None, f);
        self
    }
}

fn run_benchmark(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_count: sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<48} (no samples — iter not called)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    let tp = throughput
        .map(|t| format_throughput(t, median))
        .unwrap_or_default();
    println!("{name:<48} median {:>12?}  mean {:>12?}{tp}", median, mean);
}

fn format_throughput(tp: Throughput, per_iter: Duration) -> String {
    let secs = per_iter.as_secs_f64();
    if secs <= 0.0 {
        return String::new();
    }
    match tp {
        Throughput::Bytes(n) => {
            let mibps = n as f64 / secs / (1024.0 * 1024.0);
            format!("  {mibps:>10.1} MiB/s")
        }
        Throughput::Elements(n) => {
            let eps = n as f64 / secs;
            format!("  {eps:>10.0} elem/s")
        }
    }
}

/// Declare a group of bench functions, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::bench::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench binary's `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_records() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group
            .sample_size(3)
            .throughput(Throughput::Bytes(64))
            .bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("algo", 4).to_string(), "algo/4");
        assert_eq!(BenchmarkId::from_parameter(9).to_string(), "9");
    }
}
