//! GIOP — the General Inter-ORB Protocol message set.
//!
//! GIOP defines the handful of message types two ORBs exchange over any
//! connection-oriented transport; IIOP is GIOP mapped onto TCP/IP. Each
//! message is a fixed 12-byte header (`GIOP` magic, version, flags,
//! message type, body size) followed by a CDR-encoded body.
//!
//! This module implements the full CORBA 2.0 message repertoire the paper
//! depends on:
//!
//! * `Request` / `Reply` — the RPC pair every WebFINDIT invocation rides.
//! * `LocateRequest` / `LocateReply` — "is the object here?" probes used
//!   by the ORB before committing to a connection.
//! * `CancelRequest` — abandon an outstanding request.
//! * `CloseConnection` / `MessageError` — connection management.
//! * `Fragment` — continuation frames for bodies larger than one message.

use crate::bufpool::{BufPool, PooledBuf};
use crate::cdr::{ByteOrder, CdrReader, CdrWriter};
use crate::value::Value;
use crate::{WireError, WireResult, MAX_MESSAGE_SIZE};
use std::sync::Arc;

/// Body size above which the reactor streams a reply as an initial
/// frame plus `Fragment` continuations instead of one giant message.
///
/// Well under [`MAX_MESSAGE_SIZE`]: a peer enforcing the defensive
/// limit never sees a single frame approach it, and the sending side's
/// write queue interleaves at chunk granularity.
pub const FRAGMENT_BODY_SIZE: usize = 64 * 1024;

/// The 4 magic octets that open every GIOP message.
pub const GIOP_MAGIC: [u8; 4] = *b"GIOP";

/// GIOP header flag bit: body is little-endian.
const FLAG_LITTLE_ENDIAN: u8 = 0x01;
/// GIOP header flag bit: more fragments follow.
const FLAG_MORE_FRAGMENTS: u8 = 0x02;

/// GIOP message kinds (the `message_type` octet of the header).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum MessageKind {
    /// Client-to-server operation invocation.
    Request = 0,
    /// Server-to-client result.
    Reply = 1,
    /// Abandon an outstanding request.
    CancelRequest = 2,
    /// Probe for object location.
    LocateRequest = 3,
    /// Answer to a locate probe.
    LocateReply = 4,
    /// Orderly connection shutdown.
    CloseConnection = 5,
    /// The peer sent something unintelligible.
    MessageError = 6,
    /// Continuation of a fragmented message.
    Fragment = 7,
}

impl MessageKind {
    /// Parse the header octet.
    pub fn from_u8(v: u8) -> WireResult<MessageKind> {
        Ok(match v {
            0 => MessageKind::Request,
            1 => MessageKind::Reply,
            2 => MessageKind::CancelRequest,
            3 => MessageKind::LocateRequest,
            4 => MessageKind::LocateReply,
            5 => MessageKind::CloseConnection,
            6 => MessageKind::MessageError,
            7 => MessageKind::Fragment,
            other => {
                return Err(WireError::BadTag {
                    context: "GIOP message type",
                    tag: other as u32,
                })
            }
        })
    }
}

/// The fixed 12-byte GIOP message header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GiopHeader {
    /// Protocol major version (1).
    pub version_major: u8,
    /// Protocol minor version (0 or 2).
    pub version_minor: u8,
    /// Body byte order.
    pub order: ByteOrder,
    /// More fragments follow this message.
    pub more_fragments: bool,
    /// Kind of message in the body.
    pub kind: MessageKind,
    /// Body size in bytes (excludes this header).
    pub body_size: u32,
}

impl GiopHeader {
    /// Serialize to the 12-byte wire form.
    pub fn to_bytes(&self) -> [u8; 12] {
        let mut flags = 0u8;
        if self.order == ByteOrder::LittleEndian {
            flags |= FLAG_LITTLE_ENDIAN;
        }
        if self.more_fragments {
            flags |= FLAG_MORE_FRAGMENTS;
        }
        let size = match self.order {
            ByteOrder::BigEndian => self.body_size.to_be_bytes(),
            ByteOrder::LittleEndian => self.body_size.to_le_bytes(),
        };
        [
            GIOP_MAGIC[0],
            GIOP_MAGIC[1],
            GIOP_MAGIC[2],
            GIOP_MAGIC[3],
            self.version_major,
            self.version_minor,
            flags,
            self.kind as u8,
            size[0],
            size[1],
            size[2],
            size[3],
        ]
    }

    /// Parse the 12-byte wire form, validating magic, version, and the
    /// defensive body-size limit.
    pub fn from_bytes(b: &[u8; 12]) -> WireResult<GiopHeader> {
        if b[0..4] != GIOP_MAGIC {
            return Err(WireError::BadMagic([b[0], b[1], b[2], b[3]]));
        }
        let (major, minor) = (b[4], b[5]);
        if major != 1 || minor > 2 {
            return Err(WireError::UnsupportedVersion { major, minor });
        }
        let flags = b[6];
        let order = if flags & FLAG_LITTLE_ENDIAN != 0 {
            ByteOrder::LittleEndian
        } else {
            ByteOrder::BigEndian
        };
        let kind = MessageKind::from_u8(b[7])?;
        let size_bytes = [b[8], b[9], b[10], b[11]];
        let body_size = match order {
            ByteOrder::BigEndian => u32::from_be_bytes(size_bytes),
            ByteOrder::LittleEndian => u32::from_le_bytes(size_bytes),
        };
        if body_size > MAX_MESSAGE_SIZE {
            return Err(WireError::TooLarge {
                declared: body_size as u64,
                limit: MAX_MESSAGE_SIZE as u64,
            });
        }
        Ok(GiopHeader {
            version_major: major,
            version_minor: minor,
            order,
            more_fragments: flags & FLAG_MORE_FRAGMENTS != 0,
            kind,
            body_size,
        })
    }
}

/// A service-context entry: out-of-band data piggybacked on requests and
/// replies (transaction ids, codeset negotiation, tracing ids...).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServiceContext {
    /// Numeric context id.
    pub context_id: u32,
    /// Opaque context payload.
    pub data: Vec<u8>,
}

fn encode_service_contexts(w: &mut CdrWriter, ctxs: &[ServiceContext]) {
    w.write_ulong(ctxs.len() as u32);
    for c in ctxs {
        w.write_ulong(c.context_id);
        w.write_octets(&c.data);
    }
}

fn decode_service_contexts(r: &mut CdrReader<'_>) -> WireResult<Vec<ServiceContext>> {
    let n = r.read_ulong()? as usize;
    if n > r.remaining() {
        return Err(WireError::TooLarge {
            declared: n as u64,
            limit: r.remaining() as u64,
        });
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let context_id = r.read_ulong()?;
        let data = r.read_octets()?;
        out.push(ServiceContext { context_id, data });
    }
    Ok(out)
}

/// GIOP Request header plus a dynamically-typed argument list as body.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestHeader {
    /// Piggybacked service contexts.
    pub service_contexts: Vec<ServiceContext>,
    /// Correlates the eventual Reply with this Request.
    pub request_id: u32,
    /// False for `oneway` operations: no Reply will be sent.
    pub response_expected: bool,
    /// Object key from the target IOR's IIOP profile.
    pub object_key: Vec<u8>,
    /// Operation name, e.g. `"execute_query"`.
    pub operation: String,
}

/// Status of a GIOP Reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum ReplyStatus {
    /// Operation completed; body holds the result.
    NoException = 0,
    /// Operation raised a declared (user) exception; body describes it.
    UserException = 1,
    /// The ORB or servant failed; body describes the system exception.
    SystemException = 2,
    /// The object lives elsewhere; body holds the forwarding IOR.
    LocationForward = 3,
}

impl ReplyStatus {
    fn from_u32(v: u32) -> WireResult<ReplyStatus> {
        Ok(match v {
            0 => ReplyStatus::NoException,
            1 => ReplyStatus::UserException,
            2 => ReplyStatus::SystemException,
            3 => ReplyStatus::LocationForward,
            other => {
                return Err(WireError::BadTag {
                    context: "reply status",
                    tag: other,
                })
            }
        })
    }
}

/// Status of a GIOP LocateReply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum LocateStatus {
    /// The target ORB has never heard of this object key.
    UnknownObject = 0,
    /// The object is served at this endpoint.
    ObjectHere = 1,
    /// The object is served elsewhere; body carries the forwarding IOR.
    ObjectForward = 2,
}

impl LocateStatus {
    fn from_u32(v: u32) -> WireResult<LocateStatus> {
        Ok(match v {
            0 => LocateStatus::UnknownObject,
            1 => LocateStatus::ObjectHere,
            2 => LocateStatus::ObjectForward,
            other => {
                return Err(WireError::BadTag {
                    context: "locate status",
                    tag: other,
                })
            }
        })
    }
}

/// A fully-decoded GIOP message.
#[derive(Debug, Clone, PartialEq)]
pub enum GiopMessage {
    /// Operation invocation with self-describing arguments.
    Request {
        /// Request header.
        header: RequestHeader,
        /// Operation arguments.
        args: Vec<Value>,
    },
    /// Invocation result.
    Reply {
        /// Service contexts echoed or added by the server.
        service_contexts: Vec<ServiceContext>,
        /// Matches the originating request.
        request_id: u32,
        /// Outcome class.
        status: ReplyStatus,
        /// Result (for `NoException`), exception descriptor, or forward IOR.
        body: Value,
    },
    /// Abandon the request with this id.
    CancelRequest {
        /// Id of the request to abandon.
        request_id: u32,
    },
    /// Probe whether `object_key` is served here.
    LocateRequest {
        /// Correlates with the LocateReply.
        request_id: u32,
        /// Key to probe.
        object_key: Vec<u8>,
    },
    /// Answer to a locate probe.
    LocateReply {
        /// Matches the LocateRequest.
        request_id: u32,
        /// Probe outcome.
        status: LocateStatus,
        /// Forwarding reference when `status == ObjectForward`.
        forward: Option<crate::ior::Ior>,
    },
    /// Orderly shutdown notice.
    CloseConnection,
    /// Protocol error notice.
    MessageError,
    /// A continuation fragment (opaque payload).
    Fragment {
        /// Raw fragment bytes.
        data: Vec<u8>,
        /// Whether more fragments follow.
        more: bool,
    },
}

impl GiopMessage {
    /// The message kind this variant maps to on the wire.
    pub fn kind(&self) -> MessageKind {
        match self {
            GiopMessage::Request { .. } => MessageKind::Request,
            GiopMessage::Reply { .. } => MessageKind::Reply,
            GiopMessage::CancelRequest { .. } => MessageKind::CancelRequest,
            GiopMessage::LocateRequest { .. } => MessageKind::LocateRequest,
            GiopMessage::LocateReply { .. } => MessageKind::LocateReply,
            GiopMessage::CloseConnection => MessageKind::CloseConnection,
            GiopMessage::MessageError => MessageKind::MessageError,
            GiopMessage::Fragment { .. } => MessageKind::Fragment,
        }
    }

    /// Encode header + body into a single wire frame.
    pub fn encode(&self, order: ByteOrder) -> WireResult<Vec<u8>> {
        self.encode_into(order, Vec::with_capacity(128))
    }

    /// Encode into pool storage; the frame returns to the pool on drop.
    pub fn encode_pooled(&self, order: ByteOrder, pool: &Arc<BufPool>) -> WireResult<PooledBuf> {
        Ok(PooledBuf::new(
            self.encode_into(order, pool.take())?,
            Arc::clone(pool),
        ))
    }

    /// Encode header + body into `buf` (recycled storage welcome): the
    /// 12-byte header and the CDR body share one buffer, written in a
    /// single pass — the header is patched in place once the body size
    /// is known, so there is no separate body allocation or assembly
    /// copy per message.
    pub fn encode_into(&self, order: ByteOrder, buf: Vec<u8>) -> WireResult<Vec<u8>> {
        let mut body = CdrWriter::frame(order, buf);
        let mut more_fragments = false;
        match self {
            GiopMessage::Request { header, args } => {
                encode_service_contexts(&mut body, &header.service_contexts);
                body.write_ulong(header.request_id);
                body.write_bool(header.response_expected);
                body.write_octets(&header.object_key);
                body.write_string(&header.operation)?;
                // requesting_principal: deprecated, always empty.
                body.write_octets(&[]);
                body.write_ulong(args.len() as u32);
                for a in args {
                    a.encode(&mut body)?;
                }
            }
            GiopMessage::Reply {
                service_contexts,
                request_id,
                status,
                body: payload,
            } => {
                encode_service_contexts(&mut body, service_contexts);
                body.write_ulong(*request_id);
                body.write_ulong(*status as u32);
                payload.encode(&mut body)?;
            }
            GiopMessage::CancelRequest { request_id } => {
                body.write_ulong(*request_id);
            }
            GiopMessage::LocateRequest {
                request_id,
                object_key,
            } => {
                body.write_ulong(*request_id);
                body.write_octets(object_key);
            }
            GiopMessage::LocateReply {
                request_id,
                status,
                forward,
            } => {
                body.write_ulong(*request_id);
                body.write_ulong(*status as u32);
                if let Some(ior) = forward {
                    ior.encode(&mut body)?;
                }
            }
            GiopMessage::CloseConnection | GiopMessage::MessageError => {}
            GiopMessage::Fragment { data, more } => {
                more_fragments = *more;
                body.write_raw(data);
            }
        }
        let body_len = body.len();
        if body_len as u64 > MAX_MESSAGE_SIZE as u64 {
            return Err(WireError::TooLarge {
                declared: body_len as u64,
                limit: MAX_MESSAGE_SIZE as u64,
            });
        }
        let header = GiopHeader {
            version_major: 1,
            version_minor: 2,
            order,
            more_fragments,
            kind: self.kind(),
            body_size: body_len as u32,
        };
        let mut frame = body.into_bytes();
        frame[..12].copy_from_slice(&header.to_bytes());
        Ok(frame)
    }

    /// Decode a message given its already-parsed header and body bytes.
    pub fn decode(header: &GiopHeader, body: &[u8]) -> WireResult<GiopMessage> {
        if body.len() != header.body_size as usize {
            return Err(WireError::UnexpectedEof {
                needed: header.body_size as usize,
                remaining: body.len(),
            });
        }
        let mut r = CdrReader::new(body, header.order);
        Ok(match header.kind {
            MessageKind::Request => {
                let service_contexts = decode_service_contexts(&mut r)?;
                let request_id = r.read_ulong()?;
                let response_expected = r.read_bool()?;
                let object_key = r.read_octets()?;
                let operation = r.read_string()?;
                let _principal = r.read_octets()?;
                let n = r.read_ulong()? as usize;
                if n > r.remaining() {
                    return Err(WireError::TooLarge {
                        declared: n as u64,
                        limit: r.remaining() as u64,
                    });
                }
                let mut args = Vec::with_capacity(n);
                for _ in 0..n {
                    args.push(Value::decode(&mut r)?);
                }
                GiopMessage::Request {
                    header: RequestHeader {
                        service_contexts,
                        request_id,
                        response_expected,
                        object_key,
                        operation,
                    },
                    args,
                }
            }
            MessageKind::Reply => {
                let service_contexts = decode_service_contexts(&mut r)?;
                let request_id = r.read_ulong()?;
                let status = ReplyStatus::from_u32(r.read_ulong()?)?;
                let body = Value::decode(&mut r)?;
                GiopMessage::Reply {
                    service_contexts,
                    request_id,
                    status,
                    body,
                }
            }
            MessageKind::CancelRequest => GiopMessage::CancelRequest {
                request_id: r.read_ulong()?,
            },
            MessageKind::LocateRequest => GiopMessage::LocateRequest {
                request_id: r.read_ulong()?,
                object_key: r.read_octets()?,
            },
            MessageKind::LocateReply => {
                let request_id = r.read_ulong()?;
                let status = LocateStatus::from_u32(r.read_ulong()?)?;
                let forward = if status == LocateStatus::ObjectForward {
                    Some(crate::ior::Ior::decode(&mut r)?)
                } else {
                    None
                };
                GiopMessage::LocateReply {
                    request_id,
                    status,
                    forward,
                }
            }
            MessageKind::CloseConnection => GiopMessage::CloseConnection,
            MessageKind::MessageError => GiopMessage::MessageError,
            MessageKind::Fragment => GiopMessage::Fragment {
                data: body.to_vec(),
                more: header.more_fragments,
            },
        })
    }

    /// Decode a complete frame (12-byte header + body).
    pub fn decode_frame(frame: &[u8]) -> WireResult<GiopMessage> {
        if frame.len() < 12 {
            return Err(WireError::UnexpectedEof {
                needed: 12,
                remaining: frame.len(),
            });
        }
        let mut hdr = [0u8; 12];
        hdr.copy_from_slice(&frame[..12]);
        let header = GiopHeader::from_bytes(&hdr)?;
        GiopMessage::decode(&header, &frame[12..])
    }
}

/// Split a complete encoded frame into a fragment train: the original
/// header (flagged `more_fragments`) over the first `max_body` bytes of
/// body, followed by `Fragment` frames carrying the rest, the last one
/// with the flag clear. Frames whose body already fits return as a
/// single (repooled) frame.
///
/// Chunk frames draw their storage from `pool`, so a multi-megabyte
/// reply streams through a handful of recycled `max_body`-sized buffers
/// instead of pinning one giant allocation per message.
pub fn split_into_fragments(
    frame: &[u8],
    max_body: usize,
    pool: &Arc<BufPool>,
) -> WireResult<Vec<PooledBuf>> {
    if frame.len() < 12 {
        return Err(WireError::UnexpectedEof {
            needed: 12,
            remaining: frame.len(),
        });
    }
    let max_body = max_body.max(1);
    let mut hdr = [0u8; 12];
    hdr.copy_from_slice(&frame[..12]);
    let mut header = GiopHeader::from_bytes(&hdr)?;
    let body = &frame[12..];
    let mut chunks = body.chunks(max_body);
    let first = chunks.next().unwrap_or(&[]);
    let rest: Vec<&[u8]> = chunks.collect();

    let mut out = Vec::with_capacity(1 + rest.len());
    header.more_fragments = !rest.is_empty();
    header.body_size = first.len() as u32;
    let mut lead = pool.take();
    lead.extend_from_slice(&header.to_bytes());
    lead.extend_from_slice(first);
    out.push(PooledBuf::new(lead, Arc::clone(pool)));

    for (i, chunk) in rest.iter().enumerate() {
        let cont = GiopHeader {
            kind: MessageKind::Fragment,
            more_fragments: i + 1 < rest.len(),
            body_size: chunk.len() as u32,
            ..header
        };
        let mut buf = pool.take();
        buf.extend_from_slice(&cont.to_bytes());
        buf.extend_from_slice(chunk);
        out.push(PooledBuf::new(buf, Arc::clone(pool)));
    }
    Ok(out)
}

/// Receive-side reassembly of fragment trains.
///
/// Feed every raw frame arriving on one connection through
/// [`FragmentAssembler::push_frame`]; unfragmented messages decode and
/// return immediately, while an initial frame flagged `more_fragments`
/// opens an accumulation that completes on the final `Fragment`. Our
/// framing never interleaves trains on one connection (the sender
/// enqueues a whole train atomically), so a non-`Fragment` frame
/// arriving mid-train — or a `Fragment` with no train open — is a
/// protocol error, not a reordering to tolerate.
#[derive(Debug, Default)]
pub struct FragmentAssembler {
    initial: Option<GiopHeader>,
    body: Vec<u8>,
}

impl FragmentAssembler {
    /// A fresh assembler with no train in progress.
    pub fn new() -> Self {
        FragmentAssembler::default()
    }

    /// True while an initial frame awaits its continuation fragments.
    pub fn in_progress(&self) -> bool {
        self.initial.is_some()
    }

    /// Abandon any partial accumulation.
    pub fn reset(&mut self) {
        self.initial = None;
        self.body.clear();
    }

    /// Feed one complete raw frame (header + body). Returns the decoded
    /// message when one is complete, `None` while mid-train.
    pub fn push_frame(&mut self, frame: &[u8]) -> WireResult<Option<GiopMessage>> {
        if frame.len() < 12 {
            return Err(WireError::UnexpectedEof {
                needed: 12,
                remaining: frame.len(),
            });
        }
        let mut hdr = [0u8; 12];
        hdr.copy_from_slice(&frame[..12]);
        let header = GiopHeader::from_bytes(&hdr)?;
        let body = &frame[12..];
        if body.len() != header.body_size as usize {
            return Err(WireError::UnexpectedEof {
                needed: header.body_size as usize,
                remaining: body.len(),
            });
        }
        match (self.initial.is_some(), header.kind) {
            (false, MessageKind::Fragment) => Err(WireError::BadTag {
                context: "GIOP Fragment with no message in progress",
                tag: header.kind as u32,
            }),
            (false, _) if header.more_fragments => {
                self.body.clear();
                self.body.extend_from_slice(body);
                self.initial = Some(header);
                Ok(None)
            }
            (false, _) => GiopMessage::decode(&header, body).map(Some),
            (true, MessageKind::Fragment) => {
                if self.body.len() + body.len() > MAX_MESSAGE_SIZE as usize {
                    self.reset();
                    return Err(WireError::TooLarge {
                        declared: (self.body.len() + body.len()) as u64,
                        limit: MAX_MESSAGE_SIZE as u64,
                    });
                }
                self.body.extend_from_slice(body);
                if header.more_fragments {
                    Ok(None)
                } else {
                    let mut initial = self.initial.take().expect("train in progress");
                    initial.more_fragments = false;
                    initial.body_size = self.body.len() as u32;
                    let body = std::mem::take(&mut self.body);
                    GiopMessage::decode(&initial, &body).map(Some)
                }
            }
            (true, other) => {
                self.reset();
                Err(WireError::BadTag {
                    context: "non-Fragment frame interrupting a fragment train",
                    tag: other as u32,
                })
            }
        }
    }
}

/// Convenience: build a Request message.
pub fn request(
    request_id: u32,
    object_key: impl Into<Vec<u8>>,
    operation: impl Into<String>,
    args: Vec<Value>,
) -> GiopMessage {
    GiopMessage::Request {
        header: RequestHeader {
            service_contexts: Vec::new(),
            request_id,
            response_expected: true,
            object_key: object_key.into(),
            operation: operation.into(),
        },
        args,
    }
}

/// Convenience: build a successful Reply.
pub fn reply_ok(request_id: u32, body: Value) -> GiopMessage {
    GiopMessage::Reply {
        service_contexts: Vec::new(),
        request_id,
        status: ReplyStatus::NoException,
        body,
    }
}

/// Convenience: build an exception Reply. `system` selects between a
/// system exception and a user exception.
pub fn reply_exception(request_id: u32, system: bool, description: &str) -> GiopMessage {
    GiopMessage::Reply {
        service_contexts: Vec::new(),
        request_id,
        status: if system {
            ReplyStatus::SystemException
        } else {
            ReplyStatus::UserException
        },
        body: Value::record([("exception", Value::string(description))]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ior::Ior;

    fn roundtrip(msg: &GiopMessage, order: ByteOrder) -> GiopMessage {
        let frame = msg.encode(order).unwrap();
        GiopMessage::decode_frame(&frame).unwrap()
    }

    #[test]
    fn request_roundtrip_both_orders() {
        let msg = request(
            7,
            b"codb/RBH".to_vec(),
            "find_coalitions",
            vec![Value::string("Medical Research"), Value::Long(3)],
        );
        for order in [ByteOrder::BigEndian, ByteOrder::LittleEndian] {
            assert_eq!(roundtrip(&msg, order), msg);
        }
    }

    #[test]
    fn reply_roundtrip() {
        let msg = reply_ok(
            7,
            Value::Sequence(vec![Value::string("Research"), Value::string("Medical")]),
        );
        assert_eq!(roundtrip(&msg, ByteOrder::LittleEndian), msg);
    }

    #[test]
    fn exception_reply_carries_description() {
        let msg = reply_exception(9, true, "OBJECT_NOT_EXIST");
        match roundtrip(&msg, ByteOrder::BigEndian) {
            GiopMessage::Reply { status, body, .. } => {
                assert_eq!(status, ReplyStatus::SystemException);
                assert_eq!(
                    body.field("exception").and_then(Value::as_str),
                    Some("OBJECT_NOT_EXIST")
                );
            }
            other => panic!("expected Reply, got {other:?}"),
        }
    }

    #[test]
    fn locate_pair_roundtrip() {
        let req = GiopMessage::LocateRequest {
            request_id: 11,
            object_key: b"isi/Medicare".to_vec(),
        };
        assert_eq!(roundtrip(&req, ByteOrder::BigEndian), req);

        let fwd = GiopMessage::LocateReply {
            request_id: 11,
            status: LocateStatus::ObjectForward,
            forward: Some(Ior::new_iiop("IDL:X:1.0", "elsewhere", 9000, b"k".to_vec())),
        };
        assert_eq!(roundtrip(&fwd, ByteOrder::LittleEndian), fwd);

        let here = GiopMessage::LocateReply {
            request_id: 12,
            status: LocateStatus::ObjectHere,
            forward: None,
        };
        assert_eq!(roundtrip(&here, ByteOrder::BigEndian), here);
    }

    #[test]
    fn control_messages_roundtrip() {
        for msg in [
            GiopMessage::CloseConnection,
            GiopMessage::MessageError,
            GiopMessage::CancelRequest { request_id: 3 },
        ] {
            assert_eq!(roundtrip(&msg, ByteOrder::BigEndian), msg);
        }
    }

    #[test]
    fn fragment_roundtrip_preserves_more_flag() {
        let msg = GiopMessage::Fragment {
            data: vec![9, 8, 7],
            more: true,
        };
        assert_eq!(roundtrip(&msg, ByteOrder::BigEndian), msg);
    }

    #[test]
    fn bad_magic_rejected() {
        let msg = reply_ok(1, Value::Void);
        let mut frame = msg.encode(ByteOrder::BigEndian).unwrap();
        frame[0] = b'X';
        assert!(matches!(
            GiopMessage::decode_frame(&frame),
            Err(WireError::BadMagic(_))
        ));
    }

    #[test]
    fn future_version_rejected() {
        let msg = reply_ok(1, Value::Void);
        let mut frame = msg.encode(ByteOrder::BigEndian).unwrap();
        frame[4] = 2; // GIOP 2.x does not exist
        assert!(matches!(
            GiopMessage::decode_frame(&frame),
            Err(WireError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn truncated_body_rejected() {
        let msg = request(1, b"k".to_vec(), "op", vec![Value::Long(1)]);
        let frame = msg.encode(ByteOrder::BigEndian).unwrap();
        assert!(GiopMessage::decode_frame(&frame[..frame.len() - 2]).is_err());
    }

    #[test]
    fn header_size_limit_enforced() {
        let mut hdr = GiopHeader {
            version_major: 1,
            version_minor: 2,
            order: ByteOrder::BigEndian,
            more_fragments: false,
            kind: MessageKind::Request,
            body_size: MAX_MESSAGE_SIZE + 1,
        }
        .to_bytes();
        assert!(matches!(
            GiopHeader::from_bytes(&{
                let mut b = [0u8; 12];
                b.copy_from_slice(&hdr);
                b
            }),
            Err(WireError::TooLarge { .. })
        ));
        // Sanity: a legal size parses.
        hdr[8..12].copy_from_slice(&64u32.to_be_bytes());
        let mut b = [0u8; 12];
        b.copy_from_slice(&hdr);
        assert!(GiopHeader::from_bytes(&b).is_ok());
    }

    #[test]
    fn cross_endian_interop() {
        // A little-endian "VisiBroker" encodes; a big-endian-preferring
        // "Orbix" decodes purely from the header flag.
        let msg = request(
            99,
            b"db/Medibank".to_vec(),
            "execute_query",
            vec![Value::string("select * from members")],
        );
        let frame = msg.encode(ByteOrder::LittleEndian).unwrap();
        let decoded = GiopMessage::decode_frame(&frame).unwrap();
        assert_eq!(decoded, msg);
    }
}
