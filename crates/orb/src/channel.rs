//! Multiplexed, deadline-aware IIOP channels.
//!
//! The seed ORB pooled one TCP connection per endpoint and locked it
//! across the whole send-and-wait of every call, so concurrent callers
//! to the same endpoint serialized on the connection mutex. This module
//! replaces that with the channel architecture real ORBs use:
//!
//! * an [`IiopChannel`] per advertised endpoint owns a small bounded
//!   pool of multiplexed connections ([`MuxConn`]); callers are spread
//!   round-robin and *share* each connection concurrently;
//! * each `MuxConn` runs a dedicated reader thread that demultiplexes
//!   GIOP `Reply`/`LocateReply` frames by `request_id` and hands each to
//!   the parked caller that registered it — the writer mutex is held
//!   only for the microseconds of `send_frame`, never across the wait;
//! * deadlines: a caller waits at most its [`CallOptions::deadline`];
//!   on expiry it unregisters, fires a best-effort GIOP `CancelRequest`
//!   at the server, and surfaces `DeadlineExpired`;
//! * retry safety: the channel classifies every failure by whether the
//!   request *provably never reached the peer's dispatcher* (connect
//!   failure, dead-at-acquire, incomplete send, or an orderly GIOP
//!   `CloseConnection` — which the spec defines as "pending requests
//!   were not processed"). Only those are retried; an ambiguous drop
//!   after a complete send is surfaced instead of resent, because a
//!   blind resend can execute a non-idempotent operation twice.

use crate::chaos::ChaosRegistry;
use crate::metrics::OrbMetrics;
use crate::OrbError;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::Arc;
use std::time::{Duration, Instant};
use webfindit_base::sync::{detect, Mutex};
use webfindit_wire::cdr::ByteOrder;
use webfindit_wire::giop::{FragmentAssembler, GiopMessage};
use webfindit_wire::transport::{FramedTcp, Transport};
use webfindit_wire::WireError;

/// Per-call policy knobs, threaded from the application layers down to
/// the wire.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CallOptions {
    /// Maximum time to wait for the reply. `None` waits indefinitely
    /// (bounded only by connection failure).
    pub deadline: Option<Duration>,
    /// When to transparently retry a failed call.
    pub retry: RetryPolicy,
}

impl CallOptions {
    /// Options with a deadline and the default retry policy.
    pub fn with_deadline(deadline: Duration) -> Self {
        CallOptions {
            deadline: Some(deadline),
            ..CallOptions::default()
        }
    }
}

/// Governs transparent retries of remote calls.
///
/// A retry is only ever attempted when the failure proves the request
/// never reached the peer's dispatcher; `attempts` bounds how many
/// times the whole call may be tried (first try included).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts allowed (1 = never retry).
    pub attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { attempts: 2 }
    }
}

impl RetryPolicy {
    /// Never retry, even when provably safe.
    pub fn never() -> Self {
        RetryPolicy { attempts: 1 }
    }
}

/// Configuration of the per-endpoint circuit breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long an open breaker rejects calls before admitting one
    /// half-open probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(50),
        }
    }
}

/// Observable circuit-breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Calls flow normally; failures are being counted.
    Closed,
    /// Too many consecutive failures: calls are rejected without
    /// touching the wire until the cooldown elapses.
    Open,
    /// One probe call is in flight; its outcome decides Open vs Closed.
    HalfOpen,
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        })
    }
}

struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
    probe_in_flight: bool,
}

/// A per-endpoint circuit breaker: closed → open after
/// `failure_threshold` consecutive failures → half-open after
/// `cooldown` (one probe admitted) → closed again on probe success.
///
/// The survival rationale is the paper's autonomy story: sites leave
/// the federation without coordination, and a discovery traversal that
/// re-pays a connect timeout for every probe of a dead site never
/// finishes educating the user. An open breaker converts those repeated
/// waits into immediate, retriable-elsewhere rejections.
struct Breaker {
    config: BreakerConfig,
    inner: Mutex<BreakerInner>,
}

impl Breaker {
    fn new(config: BreakerConfig) -> Breaker {
        Breaker {
            config,
            inner: Mutex::new_labeled(
                BreakerInner {
                    state: BreakerState::Closed,
                    consecutive_failures: 0,
                    opened_at: None,
                    probe_in_flight: false,
                },
                "orb::Breaker.inner",
            ),
        }
    }

    fn state(&self) -> BreakerState {
        let inner = self.inner.lock();
        // An open breaker past its cooldown is *about to* admit a probe;
        // report it as open until a call actually transitions it.
        inner.state
    }

    /// Admission decision for one call. `Ok(is_probe)` lets the call
    /// through; `Err(())` means the breaker is open and the call must
    /// fail fast without touching the wire.
    fn admit(&self, metrics: &OrbMetrics) -> Result<bool, ()> {
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::Closed => Ok(false),
            BreakerState::Open => {
                let cooled = inner
                    .opened_at
                    .is_some_and(|at| at.elapsed() >= self.config.cooldown);
                if cooled {
                    inner.state = BreakerState::HalfOpen;
                    inner.probe_in_flight = true;
                    metrics.add(&metrics.breaker_probes, 1);
                    Ok(true)
                } else {
                    metrics.add(&metrics.breaker_rejections, 1);
                    Err(())
                }
            }
            BreakerState::HalfOpen => {
                if inner.probe_in_flight {
                    metrics.add(&metrics.breaker_rejections, 1);
                    Err(())
                } else {
                    inner.probe_in_flight = true;
                    metrics.add(&metrics.breaker_probes, 1);
                    Ok(true)
                }
            }
        }
    }

    fn on_success(&self, metrics: &OrbMetrics) {
        let mut inner = self.inner.lock();
        if inner.state != BreakerState::Closed {
            metrics.add(&metrics.breaker_closed, 1);
        }
        inner.state = BreakerState::Closed;
        inner.consecutive_failures = 0;
        inner.opened_at = None;
        inner.probe_in_flight = false;
    }

    fn on_failure(&self, was_probe: bool, metrics: &OrbMetrics) {
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::HalfOpen if was_probe => {
                // The probe failed: back to open, restart the cooldown.
                inner.state = BreakerState::Open;
                inner.opened_at = Some(Instant::now());
                inner.probe_in_flight = false;
                metrics.add(&metrics.breaker_opened, 1);
            }
            BreakerState::Closed => {
                inner.consecutive_failures += 1;
                if inner.consecutive_failures >= self.config.failure_threshold {
                    inner.state = BreakerState::Open;
                    inner.opened_at = Some(Instant::now());
                    metrics.add(&metrics.breaker_opened, 1);
                }
            }
            // Already open (a straggler from before the trip), or a
            // non-probe failure racing a half-open probe: no transition.
            _ => {}
        }
    }
}

/// How a failed call relates to the peer: decides retry safety.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FailureClass {
    /// The request never left this process (resolve/connect failure,
    /// connection already dead, or the frame was not fully written).
    /// Retrying — or falling over to an alternate profile — is safe.
    NeverSent,
    /// The peer closed the connection in an orderly way (GIOP
    /// `CloseConnection`), which guarantees outstanding requests were
    /// not processed. Retrying is safe.
    NotProcessed,
    /// The connection died after a complete send with no such
    /// guarantee; the peer may have executed the operation. Retrying
    /// is NOT safe.
    Ambiguous,
}

/// A call failure with its retry-safety classification.
#[derive(Debug)]
pub(crate) struct CallFailure {
    pub(crate) class: FailureClass,
    pub(crate) error: OrbError,
}

impl CallFailure {
    fn never_sent(error: OrbError) -> Self {
        CallFailure {
            class: FailureClass::NeverSent,
            error,
        }
    }
}

/// What the reader thread hands to a parked caller.
enum ReplyOutcome {
    /// The routed `Reply`/`LocateReply` for this caller's request id.
    Message(GiopMessage),
    /// Orderly `CloseConnection`: provably not processed.
    ClosedUnprocessed,
    /// Connection failure or protocol desync: outcome unknowable.
    Dropped(String),
}

/// One multiplexed connection: a shared writer plus a reader thread
/// that routes replies by request id.
struct MuxConn {
    writer: Mutex<FramedTcp>,
    /// Callers parked for a reply, by request id.
    pending: Mutex<HashMap<u32, SyncSender<ReplyOutcome>>>,
    /// Set once the connection can no longer carry new calls.
    dead: AtomicBool,
    /// Set when death came via orderly `CloseConnection`.
    closed_by_peer: AtomicBool,
}

impl MuxConn {
    /// Mark dead and fail every parked caller with `outcome`.
    fn poison(&self, mk_outcome: impl Fn() -> ReplyOutcome) {
        self.dead.store(true, Ordering::SeqCst);
        let waiters: Vec<_> = self.pending.lock().drain().collect();
        for (_, tx) in waiters {
            let _ = tx.send(mk_outcome());
        }
    }

    /// Sever the socket (unblocks the reader thread).
    fn sever(&self) {
        self.writer.lock().shutdown();
    }
}

/// The reader loop: demultiplex frames until the connection dies.
///
/// Frames pass through a [`FragmentAssembler`], so a reply the server
/// streamed as a GIOP fragment train arrives here as one reassembled
/// message; unfragmented frames decode on the spot.
fn reader_loop(conn: Arc<MuxConn>, mut reader: FramedTcp, metrics: Arc<OrbMetrics>) {
    let mut assembler = FragmentAssembler::new();
    loop {
        let frame = match reader.recv_frame() {
            Ok(f) => f,
            Err(WireError::Closed) => {
                conn.poison(|| ReplyOutcome::Dropped("connection closed by peer".into()));
                return;
            }
            Err(e) => {
                let text = e.to_string();
                conn.poison(|| ReplyOutcome::Dropped(text.clone()));
                return;
            }
        };
        metrics.add(&metrics.bytes_received, frame.len() as u64);
        let mid_train = assembler.in_progress();
        let msg = match assembler.push_frame(&frame) {
            Ok(Some(m)) => {
                if mid_train {
                    metrics.add(&metrics.fragments_reassembled, 1);
                }
                m
            }
            // A valid continuation of an in-progress train: wait for
            // the final fragment.
            Ok(None) => continue,
            Err(e) => {
                // Undecodable bytes mean the stream is desynchronized;
                // evict the connection rather than corrupt later calls.
                metrics.add(&metrics.evictions, 1);
                let text = format!("protocol desync: {e}");
                conn.poison(|| ReplyOutcome::Dropped(text.clone()));
                return;
            }
        };
        match msg {
            GiopMessage::Reply { request_id, .. } | GiopMessage::LocateReply { request_id, .. } => {
                let waiter = conn.pending.lock().remove(&request_id);
                match waiter {
                    Some(tx) => {
                        let _ = tx.send(ReplyOutcome::Message(msg));
                    }
                    None => {
                        // The caller gave up (deadline) before the reply
                        // arrived; drop it, the stream itself is fine.
                        metrics.add(&metrics.late_replies, 1);
                    }
                }
            }
            GiopMessage::CloseConnection => {
                // GIOP: outstanding requests were not processed.
                conn.closed_by_peer.store(true, Ordering::SeqCst);
                conn.poison(|| ReplyOutcome::ClosedUnprocessed);
                return;
            }
            other => {
                // A server must only send replies on this connection; a
                // Request/Fragment/MessageError here means the framing
                // is corrupt or the peer is broken. Evict, so the next
                // call gets a fresh connection instead of inheriting a
                // desynchronized stream.
                metrics.add(&metrics.evictions, 1);
                let text = format!("unexpected message kind {:?}", other.kind());
                conn.poison(|| ReplyOutcome::Dropped(text.clone()));
                return;
            }
        }
    }
}

/// A multiplexed channel to one advertised endpoint.
///
/// Holds up to `max_conns` live [`MuxConn`]s; callers are assigned
/// round-robin and share connections concurrently. Connections are
/// created lazily and replaced when they die.
pub struct IiopChannel {
    endpoint: (String, u16),
    order: ByteOrder,
    metrics: Arc<OrbMetrics>,
    conns: Mutex<Vec<Arc<MuxConn>>>,
    max_conns: usize,
    breaker: Breaker,
    /// Shared chaos registry: connection refusals and per-endpoint
    /// fault slots installed on every dialed connection.
    chaos: Arc<ChaosRegistry>,
    /// Resolver from advertised endpoint to a connectable socket addr.
    resolve: Box<dyn Fn() -> Option<std::net::SocketAddr> + Send + Sync>,
}

impl IiopChannel {
    pub(crate) fn new(
        endpoint: (String, u16),
        order: ByteOrder,
        metrics: Arc<OrbMetrics>,
        max_conns: usize,
        breaker: BreakerConfig,
        chaos: Arc<ChaosRegistry>,
        resolve: Box<dyn Fn() -> Option<std::net::SocketAddr> + Send + Sync>,
    ) -> Self {
        IiopChannel {
            endpoint,
            order,
            metrics,
            conns: Mutex::new_labeled(Vec::new(), "orb::IiopChannel.conns"),
            max_conns: max_conns.max(1),
            breaker: Breaker::new(breaker),
            chaos,
            resolve,
        }
    }

    /// Current state of this endpoint's circuit breaker.
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.state()
    }

    /// Number of currently live multiplexed connections.
    pub fn live_connections(&self) -> usize {
        self.conns
            .lock()
            .iter()
            .filter(|c| !c.dead.load(Ordering::SeqCst))
            .count()
    }

    /// Least-loaded live connection in the pool, if any; prunes dead
    /// connections as a side effect. Must be called with the pool lock
    /// held. Returns `(load, index)`.
    fn pick_least_loaded(&self, conns: &mut Vec<Arc<MuxConn>>) -> Option<(usize, usize)> {
        let before = conns.len();
        conns.retain(|c| !c.dead.load(Ordering::SeqCst));
        let pruned = before - conns.len();
        if pruned > 0 {
            self.metrics.add(&self.metrics.evictions, pruned as u64);
        }
        let mut best: Option<(usize, usize)> = None; // (load, index)
        for (i, c) in conns.iter().enumerate() {
            let load = c.pending.lock().len();
            if best.is_none_or(|(b, _)| load < b) {
                best = Some((load, i));
            }
        }
        best
    }

    /// Pick the least-loaded live connection, pruning dead ones. The
    /// pool grows (up to `max_conns`) only while every existing
    /// connection has calls in flight; at the cap, callers multiplex.
    ///
    /// Dialing happens with the pool lock RELEASED: `dial` blocks in
    /// `TcpStream::connect` (seconds against a dead endpoint), and
    /// holding `conns` across it would stall every concurrent caller
    /// to this endpoint — the exact hold-across-blocking hazard the
    /// `deadlock-detect` feature exists to flag.
    fn acquire(&self) -> Result<Arc<MuxConn>, CallFailure> {
        {
            let mut conns = self.conns.lock();
            match self.pick_least_loaded(&mut conns) {
                Some((0, i)) => return Ok(Arc::clone(&conns[i])),
                Some((_, i)) if conns.len() >= self.max_conns => return Ok(Arc::clone(&conns[i])),
                _ => {}
            }
        }
        let conn = self.dial()?;
        let mut conns = self.conns.lock();
        // Concurrent callers may have filled the pool while we dialed;
        // respect the cap by severing the surplus connection and
        // multiplexing on an existing one instead.
        if conns
            .iter()
            .filter(|c| !c.dead.load(Ordering::SeqCst))
            .count()
            >= self.max_conns
        {
            if let Some((_, i)) = self.pick_least_loaded(&mut conns) {
                let existing = Arc::clone(&conns[i]);
                drop(conns);
                conn.poison(|| ReplyOutcome::Dropped("surplus connection severed".into()));
                conn.sever();
                return Ok(existing);
            }
        }
        conns.push(Arc::clone(&conn));
        Ok(conn)
    }

    fn dial(&self) -> Result<Arc<MuxConn>, CallFailure> {
        let (host, port) = &self.endpoint;
        if self.chaos.refuses(host, *port) {
            // The chaos plan says this co-database refuses connections:
            // fail exactly like a connect error (provably never sent).
            return Err(CallFailure::never_sent(OrbError::Wire(WireError::Io(
                std::io::Error::new(
                    std::io::ErrorKind::ConnectionRefused,
                    format!("chaos: {host}:{port} refuses connections"),
                ),
            ))));
        }
        let addr = (self.resolve)().ok_or_else(|| {
            CallFailure::never_sent(OrbError::UnknownHost {
                host: host.clone(),
                port: *port,
            })
        })?;
        let stream = detect::blocking_region("orb::IiopChannel::dial", || {
            std::net::TcpStream::connect(addr)
        })
        .map_err(|e| CallFailure::never_sent(OrbError::Wire(WireError::Io(e))))?;
        stream
            .set_nodelay(true)
            .map_err(|e| CallFailure::never_sent(OrbError::Wire(WireError::Io(e))))?;
        let mut writer = FramedTcp::new(stream);
        // Share the registry's per-endpoint slot so a chaos plan can
        // flip faults on this connection after it is live. The reader
        // clone below inherits the same slot.
        writer.install_fault_slot(self.chaos.fault_slot(host, *port));
        let reader = writer
            .try_clone()
            .map_err(|e| CallFailure::never_sent(OrbError::Wire(e)))?;
        let conn = Arc::new(MuxConn {
            // The writer mutex deliberately spans send_frame: GIOP
            // frames must hit the socket whole, so the hold IS the
            // framing discipline. Declared exempt rather than fixed.
            writer: Mutex::new_labeled(writer, "orb::MuxConn.writer").allow_hold_across_blocking(
                "serializes whole-frame socket writes; held for one send_frame only",
            ),
            pending: Mutex::new_labeled(HashMap::new(), "orb::MuxConn.pending"),
            dead: AtomicBool::new(false),
            closed_by_peer: AtomicBool::new(false),
        });
        let reader_conn = Arc::clone(&conn);
        let metrics = Arc::clone(&self.metrics);
        std::thread::Builder::new()
            .name(format!("iiop-mux-{}:{}", self.endpoint.0, self.endpoint.1))
            .spawn(move || reader_loop(reader_conn, reader, metrics))
            .expect("spawning channel reader thread");
        Ok(conn)
    }

    /// Send `frame` (already carrying `request_id`) and wait for the
    /// routed reply, respecting `deadline`. The endpoint's circuit
    /// breaker gates admission: an open breaker rejects instantly
    /// (classified `NeverSent`, so the caller may fail over to another
    /// profile), and the outcome of every admitted call feeds back into
    /// the breaker.
    pub(crate) fn call(
        &self,
        request_id: u32,
        frame: &[u8],
        deadline: Option<Duration>,
    ) -> Result<GiopMessage, CallFailure> {
        let Ok(is_probe) = self.breaker.admit(&self.metrics) else {
            let (host, port) = &self.endpoint;
            return Err(CallFailure::never_sent(OrbError::CircuitOpen {
                host: host.clone(),
                port: *port,
            }));
        };
        match self.call_inner(request_id, frame, deadline) {
            Ok(msg) => {
                self.breaker.on_success(&self.metrics);
                Ok(msg)
            }
            Err(failure) => {
                self.breaker.on_failure(is_probe, &self.metrics);
                Err(failure)
            }
        }
    }

    fn call_inner(
        &self,
        request_id: u32,
        frame: &[u8],
        deadline: Option<Duration>,
    ) -> Result<GiopMessage, CallFailure> {
        let conn = self.acquire()?;
        if conn.dead.load(Ordering::SeqCst) {
            return Err(CallFailure::never_sent(OrbError::Wire(WireError::Closed)));
        }
        // Bound 1: rendezvous buffer so the reader never blocks on a
        // slow caller. Register BEFORE sending: the reply can arrive on
        // the reader thread before we would otherwise get back here.
        let (tx, rx) = sync_channel::<ReplyOutcome>(1);
        conn.pending.lock().insert(request_id, tx);
        self.metrics.gauge_add(&self.metrics.in_flight, 1);
        let started = Instant::now();

        let sent = {
            let mut w = conn.writer.lock();
            w.send_frame(frame)
        };
        if let Err(e) = sent {
            // An incomplete frame is unparsable by the peer, so the
            // request was provably never dispatched.
            conn.pending.lock().remove(&request_id);
            self.metrics.gauge_sub(&self.metrics.in_flight, 1);
            conn.poison(|| ReplyOutcome::Dropped("send failed".into()));
            return Err(CallFailure::never_sent(OrbError::Wire(e)));
        }
        self.metrics
            .add(&self.metrics.bytes_sent, frame.len() as u64);

        // The reply wait is the blocking heart of Orb::invoke: every
        // remote call parks here until the reader thread routes the
        // reply (or the deadline fires). No lock may be held into it.
        let outcome = detect::blocking_region("orb::IiopChannel::reply_wait", || match deadline {
            Some(d) => rx.recv_timeout(d),
            // "No deadline" still needs the reader's failure signal, so
            // block on the channel rather than the socket.
            None => rx
                .recv()
                .map_err(|_| std::sync::mpsc::RecvTimeoutError::Disconnected),
        });
        self.metrics.gauge_sub(&self.metrics.in_flight, 1);

        match outcome {
            Ok(ReplyOutcome::Message(msg)) => {
                self.metrics
                    .record_latency(&self.endpoint, started.elapsed());
                Ok(msg)
            }
            Ok(ReplyOutcome::ClosedUnprocessed) => Err(CallFailure {
                class: FailureClass::NotProcessed,
                error: OrbError::Wire(WireError::Closed),
            }),
            Ok(ReplyOutcome::Dropped(reason)) => Err(CallFailure {
                class: FailureClass::Ambiguous,
                error: OrbError::RemoteException {
                    system: true,
                    description: format!("connection lost awaiting reply: {reason}"),
                },
            }),
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                // Unregister; if the reader routed the reply in this
                // instant, the rendezvous buffer holds it — take it.
                let raced = conn.pending.lock().remove(&request_id).is_none();
                if raced {
                    if let Ok(ReplyOutcome::Message(msg)) = rx.try_recv() {
                        self.metrics
                            .record_latency(&self.endpoint, started.elapsed());
                        return Ok(msg);
                    }
                }
                // Tell the server to abandon the work if it still can.
                let cancel = GiopMessage::CancelRequest { request_id };
                if let Ok(cancel_frame) = cancel.encode(self.order) {
                    let _ = conn.writer.lock().send_frame(&cancel_frame);
                }
                self.metrics.add(&self.metrics.timeouts, 1);
                Err(CallFailure {
                    class: FailureClass::Ambiguous,
                    error: OrbError::DeadlineExpired {
                        operation_deadline: deadline.unwrap_or_default(),
                    },
                })
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                // Reader dropped our sender without an outcome; treat
                // like an orderly close only if the peer said so.
                let class = if conn.closed_by_peer.load(Ordering::SeqCst) {
                    FailureClass::NotProcessed
                } else {
                    FailureClass::Ambiguous
                };
                Err(CallFailure {
                    class,
                    error: OrbError::Wire(WireError::Closed),
                })
            }
        }
    }

    /// Sever every connection and fail all parked callers; used at ORB
    /// shutdown.
    pub(crate) fn close(&self) {
        for conn in self.conns.lock().drain(..) {
            conn.poison(|| ReplyOutcome::Dropped("ORB shut down".into()));
            conn.sever();
        }
    }
}

impl std::fmt::Debug for IiopChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IiopChannel")
            .field("endpoint", &self.endpoint)
            .field("max_conns", &self.max_conns)
            .field("live", &self.live_connections())
            .finish()
    }
}
