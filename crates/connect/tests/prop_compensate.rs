//! Property test: the compensating gateway is semantically transparent.
//!
//! For random datasets and a family of aggregate/join queries that mSQL
//! rejects natively, the result obtained through
//! `CompensatingConnection` over an mSQL instance must equal the result
//! of running the same statement directly on a canonical-dialect engine
//! holding identical data.

use std::sync::Arc;
use webfindit_base::prop::{self, vec_of};
use webfindit_connect::api::Driver;
use webfindit_connect::drivers::RelationalDriver;
use webfindit_connect::{CompensatingConnection, Connection, DataSourceRegistry};
use webfindit_relstore::{Database, Dialect};

fn load(db: &mut Database, rows: &[(i64, i64, i64)]) {
    db.execute("CREATE TABLE t (k INT, grp INT, v INT)")
        .unwrap();
    for (k, grp, v) in rows {
        db.execute(&format!("INSERT INTO t VALUES ({k}, {grp}, {v})"))
            .unwrap();
    }
}

#[test]
fn compensated_results_equal_canonical() {
    prop::cases(48, |rng| {
        let rows = vec_of(rng, 0..40, |r| {
            (
                r.gen_range(0i64..50),
                r.gen_range(0i64..5),
                r.gen_range(-100i64..100),
            )
        });
        let threshold = rng.gen_range(-100i64..100);

        // Reference: canonical engine, direct execution.
        let mut reference = Database::new("ref", Dialect::Canonical);
        load(&mut reference, &rows);

        // System under test: mSQL behind the compensating gateway.
        let registry = DataSourceRegistry::new();
        let mut msql = Database::new("CentreLink", Dialect::MSql);
        load(&mut msql, &rows);
        registry.register_relational("msql", "CentreLink", msql);
        let driver = RelationalDriver::new(Dialect::MSql, Arc::clone(&registry));
        let mut gateway =
            CompensatingConnection::new(driver.connect("jdbc:msql://h/CentreLink").unwrap());

        let queries = [
            format!("SELECT COUNT(*) FROM t WHERE v > {threshold}"),
            "SELECT grp, COUNT(*) c, SUM(v) s FROM t GROUP BY grp ORDER BY grp".to_string(),
            format!(
                "SELECT MIN(v), MAX(v), AVG(v) FROM t WHERE k < {}",
                threshold.abs()
            ),
            "SELECT a.k FROM t a LEFT JOIN t b ON a.k = b.k AND a.v < b.v \
             WHERE b.k IS NULL ORDER BY a.k LIMIT 10"
                .to_string(),
        ];
        for q in &queries {
            let want = reference
                .execute(q)
                .unwrap()
                .rows()
                .cloned()
                .expect("reference rows");
            let got = gateway.execute(q).unwrap();
            let got = got.result_set().expect("gateway rows");
            assert_eq!(&got.rows, &want.rows, "query {q}");
        }
        // Every aggregate/join query above required compensation.
        assert!(gateway.compensations() >= 3);
    });
}
