//! E12 — invoke latency and memory under concurrent in-flight load:
//! the event-loop reactor core vs the threaded fallback.
//!
//! Starts one in-process ORB per server core with an `EchoServant`,
//! then drives it from a raw pipelined GIOP client: ~64 connections,
//! each keeping a fixed window of requests outstanding so the server
//! sees 1 000 / 10 000 / 100 000 requests in flight at once (200 /
//! 1 000 under `--quick`). The client speaks the wire protocol
//! directly — `Orb::invoke` is synchronous, and the whole point is to
//! hold more requests in flight than anyone would hold threads.
//!
//! Per `(core, level)` the run records invoke p50/p99 and the process
//! peak RSS sampled while the window is open. The threaded core spawns
//! one thread per in-flight request, so its memory grows with the
//! window and its high levels may fail outright (thread spawn failure
//! closes the connection); that failure is recorded honestly as
//! `completed: false` rather than dropped. Results go to
//! `BENCH_invoke.json`; EXPERIMENTS.md records them as E12.
//!
//! Acceptance (full run): reactor p99 at the 10k level beats the
//! threaded core, with RSS staying near-flat across levels.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use webfindit_bench::{header, percentile};
use webfindit_orb::servant::EchoServant;
use webfindit_orb::{Orb, OrbConfig, OrbDomain, ServerCore};
use webfindit_wire::cdr::ByteOrder;
use webfindit_wire::giop::{self, GiopMessage};
use webfindit_wire::transport::{FramedTcp, Transport};
use webfindit_wire::value::Value;

/// Resident set size of this process in KiB (`VmRSS` from
/// `/proc/self/status`); 0 where procfs is unavailable.
fn rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            return rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
        }
    }
    0
}

/// What one `(core, level)` run produced.
struct LevelOutcome {
    inflight: usize,
    requests: usize,
    completed: bool,
    errors: u64,
    p50_us: f64,
    p99_us: f64,
    rss_peak_kb: u64,
}

/// Drive `total` echo requests at `inflight` concurrent over `conns`
/// pipelined connections against `addr`, returning latency percentiles
/// and the peak RSS observed while the window was open.
fn run_level(
    addr: SocketAddr,
    object_key: &[u8],
    order: ByteOrder,
    conns: usize,
    inflight: usize,
    total: usize,
) -> LevelOutcome {
    let errors = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::with_capacity(conns);
    for c in 0..conns {
        // Spread the window and the request budget across connections.
        let window = inflight / conns + usize::from(c < inflight % conns);
        let share = total / conns + usize::from(c < total % conns);
        if window == 0 || share == 0 {
            continue;
        }
        let errors = Arc::clone(&errors);
        let key = object_key.to_vec();
        handles.push(std::thread::spawn(move || {
            conn_worker(addr, &key, order, window.min(share), share, &errors)
        }));
    }

    // Sample RSS while the workers hold the window open.
    let mut rss_peak = rss_kb();
    let mut latencies: Vec<f64> = Vec::with_capacity(total);
    let mut done = Vec::with_capacity(handles.len());
    for h in handles {
        // Poll until this worker finishes, keeping the RSS peak fresh.
        let mut h = Some(h);
        while let Some(inner) = h.take() {
            if inner.is_finished() {
                done.push(inner.join());
                break;
            }
            rss_peak = rss_peak.max(rss_kb());
            std::thread::sleep(Duration::from_millis(20));
            h = Some(inner);
        }
    }
    for res in done {
        match res {
            Ok(mut ls) => latencies.append(&mut ls),
            Err(_) => {
                errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    rss_peak = rss_peak.max(rss_kb());

    let errors = errors.load(Ordering::Relaxed);
    let completed = errors == 0 && latencies.len() == total;
    LevelOutcome {
        inflight,
        requests: total,
        completed,
        errors,
        p50_us: percentile(&latencies, 50.0),
        p99_us: percentile(&latencies, 99.0),
        rss_peak_kb: rss_peak,
    }
}

/// One pipelined connection: keep `window` requests outstanding until
/// `share` requests have completed; return per-request latencies (µs).
fn conn_worker(
    addr: SocketAddr,
    object_key: &[u8],
    order: ByteOrder,
    window: usize,
    share: usize,
    errors: &AtomicU64,
) -> Vec<f64> {
    let mut latencies = Vec::with_capacity(share);
    let stream = match std::net::TcpStream::connect(addr) {
        Ok(s) => s,
        Err(_) => {
            errors.fetch_add(1, Ordering::Relaxed);
            return latencies;
        }
    };
    let _ = stream.set_nodelay(true);
    let mut framed = FramedTcp::new(stream);
    // Hang-guard: a wedged server core turns into a visible error.
    let _ = framed.set_read_timeout(Some(Duration::from_secs(60)));

    let mut sent = 0usize;
    let mut in_flight: HashMap<u32, Instant> = HashMap::with_capacity(window);
    let send_next =
        |framed: &mut FramedTcp, in_flight: &mut HashMap<u32, Instant>, sent: &mut usize| -> bool {
            let id = *sent as u32 + 1;
            let msg = giop::request(
                id,
                object_key.to_vec(),
                "echo",
                vec![Value::Long(id as i32)],
            );
            let frame = match msg.encode(order) {
                Ok(f) => f,
                Err(_) => return false,
            };
            in_flight.insert(id, Instant::now());
            if framed.send_frame(&frame).is_err() {
                return false;
            }
            *sent += 1;
            true
        };

    for _ in 0..window.min(share) {
        if !send_next(&mut framed, &mut in_flight, &mut sent) {
            errors.fetch_add(1, Ordering::Relaxed);
            return latencies;
        }
    }
    while latencies.len() < share {
        let frame = match framed.recv_frame() {
            Ok(f) => f,
            Err(_) => {
                errors.fetch_add(1, Ordering::Relaxed);
                return latencies;
            }
        };
        match GiopMessage::decode_frame(&frame) {
            Ok(GiopMessage::Reply { request_id, .. }) => {
                if let Some(t0) = in_flight.remove(&request_id) {
                    latencies.push(t0.elapsed().as_secs_f64() * 1e6);
                }
                if sent < share && !send_next(&mut framed, &mut in_flight, &mut sent) {
                    errors.fetch_add(1, Ordering::Relaxed);
                    return latencies;
                }
            }
            Ok(GiopMessage::CloseConnection) | Err(_) => {
                errors.fetch_add(1, Ordering::Relaxed);
                return latencies;
            }
            Ok(_) => {} // other message kinds are not expected mid-run
        }
    }
    framed.shutdown();
    latencies
}

/// Format one result row as the JSON object recorded in
/// `BENCH_invoke.json`.
fn row_json(core_name: &str, out: &LevelOutcome) -> String {
    format!(
        "{{\"core\": \"{}\", \"inflight\": {}, \"requests\": {}, \
         \"completed\": {}, \"errors\": {}, \"p50_us\": {:.1}, \
         \"p99_us\": {:.1}, \"rss_peak_kb\": {}}}",
        core_name,
        out.inflight,
        out.requests,
        out.completed,
        out.errors,
        out.p50_us,
        out.p99_us,
        out.rss_peak_kb
    )
}

/// Child mode: start an ORB on `core`, run exactly one `(core, level)`
/// measurement, print its row JSON on the last stdout line, exit.
///
/// Each level runs in its own child process because the threaded core
/// at high in-flight levels can die ungracefully (one OS thread per
/// outstanding request); the parent records a dead child as
/// `completed: false` instead of losing the whole benchmark with it.
fn run_one(core_name: &str, conns: usize, inflight: usize, total: usize) {
    let core = match core_name {
        "threaded" => ServerCore::Threaded,
        _ => ServerCore::Reactor,
    };
    let domain = OrbDomain::new();
    let server = Orb::start(
        OrbConfig::new("E12", "bench.e12.net", 1, ByteOrder::BigEndian).with_server_core(core),
        Arc::clone(&domain),
    )
    .expect("start server ORB");
    let ior = server.activate("echo", Arc::new(EchoServant));
    let profile = ior.iiop_profile().expect("IIOP profile");
    let addr = domain
        .resolve(&profile.host, profile.port)
        .expect("server endpoint");

    let out = run_level(
        addr,
        &profile.object_key,
        ByteOrder::BigEndian,
        conns,
        inflight,
        total,
    );
    server.shutdown();
    println!("{}", row_json(core_name, &out));
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--one") {
        // exp12_invoke_load --one <core> <conns> <inflight> <total>
        let core = args[i + 1].as_str();
        let conns: usize = args[i + 2].parse().expect("conns");
        let inflight: usize = args[i + 3].parse().expect("inflight");
        let total: usize = args[i + 4].parse().expect("total");
        run_one(core, conns, inflight, total);
        return;
    }

    let quick = args.iter().any(|a| a == "--quick");
    let conns = if quick { 16 } else { 64 };
    let levels: &[usize] = if quick {
        &[200, 1_000]
    } else {
        &[1_000, 10_000, 100_000]
    };

    header(
        "E12",
        "invoke latency under concurrent in-flight load, reactor vs threaded",
    );
    println!("connections: {conns}, levels: {levels:?}\n");
    println!(
        "{:<9} | {:>9} | {:>10} {:>10} | {:>9} | ok",
        "core", "in-flight", "p50 us", "p99 us", "rss MB"
    );

    let exe = std::env::current_exe().expect("current exe");
    let mut rows = Vec::new();
    for core_name in ["reactor", "threaded"] {
        for &inflight in levels {
            // Turn the window over a few times so steady-state
            // latencies dominate the ramp-up.
            let total = inflight * if quick { 2 } else { 3 };
            let child = std::process::Command::new(&exe)
                .args([
                    "--one",
                    core_name,
                    &conns.to_string(),
                    &inflight.to_string(),
                    &total.to_string(),
                ])
                .stdout(std::process::Stdio::piped())
                .stderr(std::process::Stdio::null())
                .output();
            // The row is the child's last stdout line; a child that
            // crashed (or printed nothing) becomes an honest failure
            // row rather than a missing one.
            let row = child
                .ok()
                .filter(|o| o.status.success())
                .and_then(|o| {
                    let stdout = String::from_utf8_lossy(&o.stdout).into_owned();
                    stdout.lines().last().map(str::to_owned)
                })
                .filter(|line| line.starts_with('{'));
            let (row, out) = match row {
                Some(r) => {
                    let out = parse_row(&r);
                    (r, out)
                }
                None => {
                    let out = LevelOutcome {
                        inflight,
                        requests: total,
                        completed: false,
                        errors: total as u64,
                        p50_us: 0.0,
                        p99_us: 0.0,
                        rss_peak_kb: 0,
                    };
                    (row_json(core_name, &out), out)
                }
            };
            println!(
                "{:<9} | {:>9} | {:>10.1} {:>10.1} | {:>9.1} | {}",
                core_name,
                out.inflight,
                out.p50_us,
                out.p99_us,
                out.rss_peak_kb as f64 / 1024.0,
                out.completed
            );
            rows.push(format!("    {row}"));
        }
    }

    let json = format!(
        "{{\n  \"experiment\": \"E12\",\n  \"quick\": {quick},\n  \
         \"connections\": {conns},\n  \"rows\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write("BENCH_invoke.json", &json).expect("write BENCH_invoke.json");
    println!("\nwrote BENCH_invoke.json ({} rows)", rows.len());
}

/// Pull the display fields back out of a child's row JSON. Flat
/// well-known keys written by `row_json`, so naive scanning is fine.
fn parse_row(row: &str) -> LevelOutcome {
    fn field(row: &str, key: &str) -> String {
        row.split(&format!("\"{key}\": "))
            .nth(1)
            .and_then(|rest| rest.split([',', '}']).next())
            .unwrap_or("0")
            .trim()
            .to_string()
    }
    LevelOutcome {
        inflight: field(row, "inflight").parse().unwrap_or(0),
        requests: field(row, "requests").parse().unwrap_or(0),
        completed: field(row, "completed") == "true",
        errors: field(row, "errors").parse().unwrap_or(0),
        p50_us: field(row, "p50_us").parse().unwrap_or(0.0),
        p99_us: field(row, "p99_us").parse().unwrap_or(0.0),
        rss_peak_kb: field(row, "rss_peak_kb").parse().unwrap_or(0),
    }
}
