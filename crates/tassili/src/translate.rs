//! WebTassili → native-language translation.
//!
//! The paper's §2.3 example is the contract here: the access-function
//! call `Funding(ResearchProjects.Title, (Title = 'AIDS and drugs'))`
//! against an SQL source translates to
//!
//! ```sql
//! SELECT a.Funding FROM ResearchProjects a WHERE a.Title = 'AIDS and drugs'
//! ```
//!
//! The rules: the exported *type* becomes the FROM table with alias `a`,
//! the *function name* is the projected column, every attribute path in
//! the predicate is re-qualified onto the alias, and literals pass
//! through with SQL quoting.
//!
//! For object-oriented sources the same call becomes an OQL query
//! (`select funding from ResearchProjects where title = '…'`).

use crate::ast::{Arg, Literal, PredOp, Predicate, Statement};
use crate::{TassiliError, TassiliResult};

/// Re-qualify an attribute path onto the alias: `Type.Attr` → `a.attr`,
/// bare `Attr` → `a.attr`.
fn requalify(path: &str, alias: &str) -> String {
    let last = path.rsplit('.').next().unwrap_or(path);
    format!("{alias}.{}", last.to_ascii_lowercase())
}

fn literal_sql(l: &Literal) -> String {
    l.to_string() // Literal's Display already quotes strings SQL-style
}

/// Render a predicate as a SQL boolean expression with paths
/// re-qualified onto `alias`.
pub fn predicate_to_sql(p: &Predicate, alias: &str) -> String {
    match p {
        Predicate::Cmp { path, op, value } => format!(
            "{} {} {}",
            requalify(path, alias),
            op.sql(),
            literal_sql(value)
        ),
        Predicate::InList { path, values } => {
            let vs: Vec<String> = values.iter().map(literal_sql).collect();
            format!("{} IN ({})", requalify(path, alias), vs.join(", "))
        }
        Predicate::And(a, b) => format!(
            "({}) AND ({})",
            predicate_to_sql(a, alias),
            predicate_to_sql(b, alias)
        ),
        Predicate::Or(a, b) => format!(
            "({}) OR ({})",
            predicate_to_sql(a, alias),
            predicate_to_sql(b, alias)
        ),
        Predicate::Not(a) => format!("NOT ({})", predicate_to_sql(a, alias)),
    }
}

/// Render a predicate as an OQL boolean expression (attribute names
/// only, no alias — OQL ranges over the class extent directly).
pub fn predicate_to_oql(p: &Predicate) -> String {
    match p {
        Predicate::Cmp { path, op, value } => {
            let attr = path.rsplit('.').next().unwrap_or(path).to_ascii_lowercase();
            let ops = match op {
                PredOp::Like => "like".to_string(),
                other => other.sql().to_string(),
            };
            format!("{attr} {ops} {}", literal_sql(value))
        }
        Predicate::InList { path, values } => {
            let attr = path.rsplit('.').next().unwrap_or(path).to_ascii_lowercase();
            let vs: Vec<String> = values.iter().map(literal_sql).collect();
            format!("{attr} in ({})", vs.join(", "))
        }
        Predicate::And(a, b) => {
            format!("({}) and ({})", predicate_to_oql(a), predicate_to_oql(b))
        }
        Predicate::Or(a, b) => {
            format!("({}) or ({})", predicate_to_oql(a), predicate_to_oql(b))
        }
        Predicate::Not(a) => format!("not ({})", predicate_to_oql(a)),
    }
}

/// A rendered conjunct, parenthesized when it is a top-level `Or` (so
/// joining conjuncts with `AND` cannot change its meaning — `AND` binds
/// tighter than `OR` in every target dialect).
fn sql_conjunct(p: &Predicate, alias: &str, lonely: bool) -> String {
    let rendered = predicate_to_sql(p, alias);
    if !lonely && matches!(p, Predicate::Or(_, _)) {
        format!("({rendered})")
    } else {
        rendered
    }
}

fn oql_conjunct(p: &Predicate, lonely: bool) -> String {
    let rendered = predicate_to_oql(p);
    if !lonely && matches!(p, Predicate::Or(_, _)) {
        format!("({rendered})")
    } else {
        rendered
    }
}

/// Translate an access-function call into SQL against a relational
/// source: the exported type becomes the FROM table, the function name
/// the projected column, and predicate arguments the WHERE clause.
/// `extra` (the federated executor's shipped key set) is conjoined on.
pub fn access_call_to_sql(
    type_name: &str,
    function: &str,
    args: &[Arg],
    extra: Option<&Predicate>,
) -> TassiliResult<String> {
    let alias = "a";
    let mut preds: Vec<&Predicate> = Vec::new();
    for arg in args {
        match arg {
            Arg::Predicate(p) => preds.push(p),
            Arg::AttrRef(_) => {} // signature restatement, no WHERE effect
            Arg::Literal(_) => {
                return Err(TassiliError::Translate(
                    "bare literal arguments need a predicate context".into(),
                ))
            }
        }
    }
    preds.extend(extra);
    let lonely = preds.len() == 1;
    let conjuncts: Vec<String> = preds
        .iter()
        .map(|p| sql_conjunct(p, alias, lonely))
        .collect();
    let mut sql = format!(
        "SELECT {alias}.{} FROM {} {alias}",
        function.to_ascii_lowercase(),
        type_name.to_ascii_lowercase()
    );
    if !conjuncts.is_empty() {
        sql.push_str(" WHERE ");
        sql.push_str(&conjuncts.join(" AND "));
    }
    Ok(sql)
}

/// Translate an access-function call into OQL against an object source.
pub fn access_call_to_oql(
    type_name: &str,
    function: &str,
    args: &[Arg],
    extra: Option<&Predicate>,
) -> TassiliResult<String> {
    let mut preds: Vec<&Predicate> = Vec::new();
    for arg in args {
        if let Arg::Predicate(p) = arg {
            preds.push(p);
        }
    }
    preds.extend(extra);
    let lonely = preds.len() == 1;
    let conjuncts: Vec<String> = preds.iter().map(|p| oql_conjunct(p, lonely)).collect();
    let mut oql = format!(
        "select {} from {}",
        function.to_ascii_lowercase(),
        type_name
    );
    if !conjuncts.is_empty() {
        oql.push_str(" where ");
        oql.push_str(&conjuncts.join(" and "));
    }
    Ok(oql)
}

fn invoke_parts(stmt: &Statement) -> TassiliResult<(&str, &str, &[Arg])> {
    match stmt {
        Statement::Invoke {
            type_name,
            function,
            args,
            ..
        } => Ok((type_name, function, args)),
        other => Err(TassiliError::Translate(format!(
            "not an Invoke statement: {other}"
        ))),
    }
}

/// Translate an `Invoke` statement into SQL against a relational source.
///
/// The function's name doubles as the projected column (the paper's
/// `Funding()` projects the `funding` column); leading attribute-ref
/// arguments are informational (they restate the parameter signature)
/// and predicates become the WHERE clause.
pub fn translate_invoke_to_sql(stmt: &Statement) -> TassiliResult<String> {
    let (type_name, function, args) = invoke_parts(stmt)?;
    access_call_to_sql(type_name, function, args, None)
}

/// Translate an `Invoke` statement into OQL against an object source.
pub fn translate_invoke_to_oql(stmt: &Statement) -> TassiliResult<String> {
    let (type_name, function, args) = invoke_parts(stmt)?;
    access_call_to_oql(type_name, function, args, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn the_papers_funding_translation() {
        // §2.3: "This function is translated to the following SQL query:
        //   Select a.Funding From ResearchProjects a
        //   Where a.Title = 'AIDS and drugs'"
        let stmt = parse(
            "Invoke ResearchProjects.Funding(ResearchProjects.Title, \
             (ResearchProjects.Title = 'AIDS and drugs')) On Instance RBH;",
        )
        .unwrap();
        assert_eq!(
            translate_invoke_to_sql(&stmt).unwrap(),
            "SELECT a.funding FROM researchprojects a WHERE a.title = 'AIDS and drugs'"
        );
    }

    #[test]
    fn no_predicate_means_no_where() {
        let stmt = parse("Invoke T.F() On Instance D;").unwrap();
        assert_eq!(
            translate_invoke_to_sql(&stmt).unwrap(),
            "SELECT a.f FROM t a"
        );
    }

    #[test]
    fn compound_predicates() {
        let stmt = parse("Invoke T.F((T.x > 3 And T.y Like 'z%') Or Not (T.w = 1)) On Instance D;")
            .unwrap();
        let sql = translate_invoke_to_sql(&stmt).unwrap();
        assert_eq!(
            sql,
            "SELECT a.f FROM t a WHERE ((a.x > 3) AND (a.y LIKE 'z%')) OR (NOT (a.w = 1))"
        );
    }

    #[test]
    fn multiple_predicate_args_conjoin() {
        let stmt = parse("Invoke T.F((T.x = 1), (T.y = 2)) On Instance D;").unwrap();
        assert_eq!(
            translate_invoke_to_sql(&stmt).unwrap(),
            "SELECT a.f FROM t a WHERE a.x = 1 AND a.y = 2"
        );
    }

    #[test]
    fn string_quoting_survives() {
        let stmt = parse("Invoke T.F((T.name = 'O''Brien')) On Instance D;").unwrap();
        assert_eq!(
            translate_invoke_to_sql(&stmt).unwrap(),
            "SELECT a.f FROM t a WHERE a.name = 'O''Brien'"
        );
    }

    #[test]
    fn oql_translation() {
        let stmt = parse(
            "Invoke ResearchProjects.Funding((ResearchProjects.Title = 'AIDS and drugs')) \
             On Instance PrinceCharles;",
        )
        .unwrap();
        assert_eq!(
            translate_invoke_to_oql(&stmt).unwrap(),
            "select funding from ResearchProjects where title = 'AIDS and drugs'"
        );
    }

    #[test]
    fn bare_literals_rejected_for_sql() {
        let stmt = parse("Invoke T.F(42) On Instance D;").unwrap();
        assert!(translate_invoke_to_sql(&stmt).is_err());
    }

    #[test]
    fn non_invoke_rejected() {
        let stmt = parse("Connect To Coalition X;").unwrap();
        assert!(translate_invoke_to_sql(&stmt).is_err());
        assert!(translate_invoke_to_oql(&stmt).is_err());
    }
}
