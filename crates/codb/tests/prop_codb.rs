//! Property-based tests for co-database invariants.
//!
//! * membership bookkeeping: after any sequence of advertise/withdraw
//!   operations, `members` agrees with the surviving advertisements,
//!   and descriptors exist exactly for sources with ≥1 membership;
//! * discovery soundness: every coalition returned by `find_coalitions`
//!   really matches the query by name, documentation, or a member's
//!   information type;
//! * discovery completeness: a coalition whose documentation contains
//!   the exact query is always returned.

use std::collections::BTreeSet;
use webfindit_base::prop::{self, string_of, vec_of};
use webfindit_base::rng::StdRng;
use webfindit_codb::{topic_matches, CoDatabase, InformationSource};

fn mk_source(name: &str, itype: &str) -> InformationSource {
    InformationSource {
        name: name.to_owned(),
        information_type: itype.to_owned(),
        documentation_url: format!("http://docs/{name}"),
        location: "host".into(),
        wrapper: format!("jdbc:oracle://host/{name}"),
        interface: Vec::new(),
    }
}

#[derive(Debug, Clone)]
enum Op {
    Advertise { coalition: usize, source: usize },
    Withdraw { coalition: usize, source: usize },
}

fn arb_ops(rng: &mut StdRng) -> Vec<Op> {
    vec_of(rng, 0..40, |r| {
        let coalition = r.gen_range(0usize..4);
        let source = r.gen_range(0usize..6);
        if r.gen_bool(0.5) {
            Op::Advertise { coalition, source }
        } else {
            Op::Withdraw { coalition, source }
        }
    })
}

const LOWER: &str = "abcdefghijklmnopqrstuvwxyz";

#[test]
fn membership_bookkeeping_is_exact() {
    prop::cases(128, |rng| {
        let ops = arb_ops(rng);
        let mut codb = CoDatabase::new("prop");
        for c in 0..4 {
            codb.create_coalition(&format!("Co{c}"), None, &format!("subject s{c}"))
                .unwrap();
        }
        // Model: set of (coalition, source) memberships.
        let mut model: BTreeSet<(usize, usize)> = BTreeSet::new();
        for op in &ops {
            match op {
                Op::Advertise { coalition, source } => {
                    let result = codb.advertise(
                        &format!("Co{coalition}"),
                        mk_source(&format!("DB{source}"), &format!("subject s{coalition}")),
                    );
                    if model.insert((*coalition, *source)) {
                        assert!(result.is_ok());
                    } else {
                        assert!(result.is_err(), "duplicate advertise must fail");
                    }
                }
                Op::Withdraw { coalition, source } => {
                    let result = codb.withdraw(&format!("Co{coalition}"), &format!("DB{source}"));
                    if model.remove(&(*coalition, *source)) {
                        assert!(result.is_ok());
                    } else {
                        assert!(result.is_err(), "withdraw of non-member must fail");
                    }
                }
            }
        }
        // members() agrees with the model, per coalition.
        for c in 0..4 {
            let mut expected: Vec<String> = model
                .iter()
                .filter(|(co, _)| *co == c)
                .map(|(_, s)| format!("DB{s}"))
                .collect();
            expected.sort();
            expected.dedup();
            assert_eq!(codb.members(&format!("Co{c}")).unwrap(), expected);
        }
        // Descriptors exist iff the source has ≥1 membership.
        for s in 0..6 {
            let has_membership = model.iter().any(|(_, src)| *src == s);
            assert_eq!(
                codb.descriptor(&format!("DB{s}")).is_ok(),
                has_membership,
                "descriptor presence for DB{s}"
            );
        }
    });
}

#[test]
fn find_coalitions_is_sound_and_complete() {
    prop::cases(128, |rng| {
        let docs = vec_of(rng, 1..5, |r| {
            format!(
                "{} {}",
                string_of(r, LOWER, 3..9),
                string_of(r, LOWER, 3..9)
            )
        });
        let mut codb = CoDatabase::new("prop");
        for (i, doc) in docs.iter().enumerate() {
            codb.create_coalition(&format!("Co{i}"), None, doc).unwrap();
        }
        let query = &docs[rng.gen_range(0..docs.len())];
        let hits = codb.find_coalitions(query);
        // Completeness: the coalition whose documentation IS the query
        // must be found.
        let target = docs.iter().position(|d| d == query).unwrap();
        assert!(
            hits.contains(&format!("Co{target}")),
            "query {query:?} must find Co{target}: {hits:?}"
        );
        // Soundness: every hit matches by name or documentation.
        for hit in &hits {
            let idx: usize = hit[2..].parse().unwrap();
            let doc = &docs[idx];
            assert!(
                topic_matches(&hit.to_ascii_lowercase(), &query.to_ascii_lowercase())
                    || topic_matches(&doc.to_ascii_lowercase(), &query.to_ascii_lowercase()),
                "{hit} (doc {doc:?}) does not match {query:?}"
            );
        }
    });
}

#[test]
fn topic_matching_is_reflexive_on_nonempty() {
    prop::cases(128, |rng| {
        let mut s = string_of(rng, LOWER, 1..9);
        for _ in 0..rng.gen_range(0usize..4) {
            s.push(' ');
            s.push_str(&string_of(rng, LOWER, 1..9));
        }
        assert!(topic_matches(&s, &s));
    });
}
