//! E1 (latency view) — wall-clock cost of discovery over real loopback
//! IIOP: WebFINDIT incremental search (near and far targets) vs flat
//! broadcast vs the central index, on a 32-site federation. A second
//! group covers the E8 engine configurations (serial/parallel ×
//! cold/warm caches) on a distant topic.

use webfindit::baselines::{CentralIndex, FlatBroadcast};
use webfindit::discovery::DiscoveryEngine;
use webfindit::synth::{build, SynthConfig, SynthFederation};
use webfindit::Federation;
use webfindit_base::bench::Criterion;
use webfindit_base::{criterion_group, criterion_main};

fn clear_caches(fed: &Federation, engine: &DiscoveryEngine) {
    fed.ior_cache().clear();
    engine.codb_cache().clear();
}

fn bench_discovery(c: &mut Criterion) {
    let synth = build(&SynthConfig {
        databases: 32,
        coalition_size: 4,
        orbs: 4,
        extra_links: 2,
        ring_links: true,
        seed: 1999,
    })
    .expect("synthetic federation");
    let engine = DiscoveryEngine::new(synth.fed.clone());
    let flat = FlatBroadcast::new(synth.fed.clone());
    let central = CentralIndex::build(synth.fed.clone()).expect("central index");
    let start = synth.member_of(0).to_owned();

    let mut group = c.benchmark_group("discovery_32_sites");
    group.sample_size(30);

    group.bench_function("webfindit_local_topic", |b| {
        b.iter(|| {
            let out = engine.find(&start, &SynthFederation::topic(0)).unwrap();
            assert!(out.found());
        });
    });

    group.bench_function("webfindit_adjacent_topic", |b| {
        b.iter(|| {
            let out = engine.find(&start, &SynthFederation::topic(1)).unwrap();
            assert!(out.found());
        });
    });

    group.bench_function("webfindit_distant_topic", |b| {
        b.iter(|| {
            let out = engine.find(&start, &SynthFederation::topic(4)).unwrap();
            assert!(out.found());
        });
    });

    group.bench_function("flat_broadcast", |b| {
        b.iter(|| {
            let out = flat.find(&SynthFederation::topic(4)).unwrap();
            assert!(out.found());
        });
    });

    group.bench_function("central_index", |b| {
        b.iter(|| {
            let out = central.find(&SynthFederation::topic(4)).unwrap();
            assert!(out.found());
        });
    });

    group.finish();
    synth.fed.shutdown();
}

/// E8 view: the four engine configurations on one distant topic. Cold
/// variants clear both the IOR cache and the co-database answer cache
/// inside the timed loop; warm variants let them persist across finds.
fn bench_discovery_parallel(c: &mut Criterion) {
    let synth = build(&SynthConfig {
        databases: 32,
        coalition_size: 4,
        orbs: 4,
        extra_links: 2,
        ring_links: true,
        seed: 1999,
    })
    .expect("synthetic federation");
    let mut serial = DiscoveryEngine::new(synth.fed.clone());
    serial.max_workers = 1;
    let mut parallel = DiscoveryEngine::new(synth.fed.clone());
    parallel.max_workers = 8;
    let start = synth.member_of(0).to_owned();
    let topic = SynthFederation::topic(4);

    let mut group = c.benchmark_group("discovery_parallel");
    group.sample_size(30);

    for (name, engine, cold) in [
        ("serial_cold", &serial, true),
        ("serial_warm", &serial, false),
        ("parallel_cold", &parallel, true),
        ("parallel_warm", &parallel, false),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                if cold {
                    clear_caches(&synth.fed, engine);
                }
                let out = engine.find(&start, &topic).unwrap();
                assert!(out.found());
            });
        });
    }

    group.finish();
    synth.fed.shutdown();
}

criterion_group!(benches, bench_discovery, bench_discovery_parallel);
criterion_main!(benches);
