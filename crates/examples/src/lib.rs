//! Shared helpers for the runnable examples (see the repository-level
//! `examples/` directory). The examples themselves are the interesting
//! part; this library only holds tiny formatting utilities.

#![warn(missing_docs)]

/// Print a section banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}

/// Print an indented block.
pub fn block(text: &str) {
    for line in text.lines() {
        println!("    {line}");
    }
}
