//! Heap table storage with B-tree primary and secondary indexes.
//!
//! Rows live in slot-addressed heaps (`Vec<Option<Row>>`); deletion
//! tombstones the slot so that slot ids stay stable for index entries
//! and for the transaction undo log. Primary keys are enforced through
//! a B-tree unique index; `CREATE INDEX` adds non-unique secondary
//! B-trees used by the executor for equality lookups.

use crate::schema::TableSchema;
use crate::types::{Datum, Row};
use crate::{RelError, RelResult};
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;
use std::ops::Bound;

/// A `Datum` wrapper giving the total `sort_cmp` order, usable as a
/// B-tree key.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyDatum(pub Datum);

impl Eq for KeyDatum {}

impl PartialOrd for KeyDatum {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for KeyDatum {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.sort_cmp(&other.0)
    }
}

/// A composite index key.
pub type IndexKey = Vec<KeyDatum>;

/// Build an index key from selected columns of a row.
pub fn key_of(row: &Row, cols: &[usize]) -> IndexKey {
    cols.iter().map(|&i| KeyDatum(row[i].clone())).collect()
}

/// A non-unique secondary index over one column.
#[derive(Debug, Default, Clone)]
pub struct SecondaryIndex {
    /// Index name (lowercase).
    pub name: String,
    /// Indexed column position.
    pub column: usize,
    /// Key → slots holding that key.
    map: BTreeMap<IndexKey, Vec<usize>>,
}

/// A stored table: schema, heap, and indexes.
#[derive(Debug, Clone)]
pub struct Table {
    /// The table's schema.
    pub schema: TableSchema,
    slots: Vec<Option<Row>>,
    live: usize,
    /// Unique index over the primary-key columns (if any are declared).
    pk: Option<BTreeMap<IndexKey, usize>>,
    pk_cols: Vec<usize>,
    secondary: Vec<SecondaryIndex>,
}

impl Table {
    /// Create an empty table for `schema`.
    pub fn new(schema: TableSchema) -> Table {
        let pk_cols = schema.primary_key_indices();
        Table {
            schema,
            slots: Vec::new(),
            live: 0,
            pk: if pk_cols.is_empty() {
                None
            } else {
                Some(BTreeMap::new())
            },
            pk_cols,
            secondary: Vec::new(),
        }
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live rows exist.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Names of secondary indexes.
    pub fn index_names(&self) -> Vec<String> {
        self.secondary.iter().map(|s| s.name.clone()).collect()
    }

    /// Validate and coerce a row against the schema.
    fn check_row(&self, mut row: Row) -> RelResult<Row> {
        if row.len() != self.schema.arity() {
            return Err(RelError::ArityMismatch {
                expected: self.schema.arity(),
                found: row.len(),
            });
        }
        for (i, col) in self.schema.columns.iter().enumerate() {
            if row[i].is_null() {
                if col.not_null {
                    return Err(RelError::ConstraintViolation(format!(
                        "column {}.{} is NOT NULL",
                        self.schema.name, col.name
                    )));
                }
                continue;
            }
            match row[i].coerce(col.data_type) {
                Some(v) => row[i] = v,
                None => {
                    return Err(RelError::TypeMismatch {
                        expected: format!("{} for column {}", col.data_type, col.name),
                        found: format!("{}", row[i]),
                    })
                }
            }
        }
        Ok(row)
    }

    /// Insert a row, returning its slot id.
    pub fn insert(&mut self, row: Row) -> RelResult<usize> {
        let row = self.check_row(row)?;
        if let Some(pk) = &self.pk {
            let key = key_of(&row, &self.pk_cols);
            if pk.contains_key(&key) {
                return Err(RelError::DuplicateKey(format!(
                    "{} in table {}",
                    key.iter()
                        .map(|k| k.0.to_string())
                        .collect::<Vec<_>>()
                        .join(","),
                    self.schema.name
                )));
            }
        }
        let slot = self.slots.len();
        if let Some(pk) = &mut self.pk {
            pk.insert(key_of(&row, &self.pk_cols), slot);
        }
        for idx in &mut self.secondary {
            idx.map
                .entry(vec![KeyDatum(row[idx.column].clone())])
                .or_default()
                .push(slot);
        }
        self.slots.push(Some(row));
        self.live += 1;
        Ok(slot)
    }

    /// Delete the row in `slot`, returning it (for the undo log).
    pub fn delete_slot(&mut self, slot: usize) -> Option<Row> {
        let row = self.slots.get_mut(slot)?.take()?;
        self.live -= 1;
        if let Some(pk) = &mut self.pk {
            pk.remove(&key_of(&row, &self.pk_cols));
        }
        for idx in &mut self.secondary {
            let key = vec![KeyDatum(row[idx.column].clone())];
            if let Some(slots) = idx.map.get_mut(&key) {
                slots.retain(|&s| s != slot);
                if slots.is_empty() {
                    idx.map.remove(&key);
                }
            }
        }
        Some(row)
    }

    /// Restore a previously deleted row into its original slot
    /// (transaction rollback). The slot must be empty.
    pub fn restore_slot(&mut self, slot: usize, row: Row) {
        debug_assert!(self.slots[slot].is_none(), "restoring into a live slot");
        if let Some(pk) = &mut self.pk {
            pk.insert(key_of(&row, &self.pk_cols), slot);
        }
        for idx in &mut self.secondary {
            idx.map
                .entry(vec![KeyDatum(row[idx.column].clone())])
                .or_default()
                .push(slot);
        }
        self.slots[slot] = Some(row);
        self.live += 1;
    }

    /// Restore `row` into `slot` even if the heap has never grown that
    /// far (log replay and snapshot loading, where slot ids must land
    /// exactly where the log says). Intermediate slots are padded with
    /// tombstones.
    pub fn force_restore(&mut self, slot: usize, row: Row) {
        if self.slots.len() <= slot {
            self.slots.resize(slot + 1, None);
        }
        self.restore_slot(slot, row);
    }

    /// Grow the heap to at least `n` slots (tombstones), so that the
    /// next insert allocates the same slot id it did before a crash.
    pub fn pad_slots(&mut self, n: usize) {
        if self.slots.len() < n {
            self.slots.resize(n, None);
        }
    }

    /// Total heap slots ever allocated (live + tombstoned).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Secondary index definitions as `(name, column)` pairs.
    pub fn secondary_defs(&self) -> Vec<(String, usize)> {
        self.secondary
            .iter()
            .map(|s| (s.name.clone(), s.column))
            .collect()
    }

    /// Replace the row in `slot`, returning the old row.
    pub fn update_slot(&mut self, slot: usize, new_row: Row) -> RelResult<Row> {
        let new_row = self.check_row(new_row)?;
        let old = self.slots[slot]
            .clone()
            .expect("update_slot targets a live slot");
        // Primary key change must stay unique.
        if let Some(pk) = &mut self.pk {
            let old_key = key_of(&old, &self.pk_cols);
            let new_key = key_of(&new_row, &self.pk_cols);
            if old_key != new_key {
                if pk.contains_key(&new_key) {
                    return Err(RelError::DuplicateKey(format!(
                        "update collides in table {}",
                        self.schema.name
                    )));
                }
                pk.remove(&old_key);
                pk.insert(new_key, slot);
            }
        }
        for idx in &mut self.secondary {
            let old_key = vec![KeyDatum(old[idx.column].clone())];
            let new_key = vec![KeyDatum(new_row[idx.column].clone())];
            if old_key != new_key {
                if let Some(slots) = idx.map.get_mut(&old_key) {
                    slots.retain(|&s| s != slot);
                    if slots.is_empty() {
                        idx.map.remove(&old_key);
                    }
                }
                idx.map.entry(new_key).or_default().push(slot);
            }
        }
        self.slots[slot] = Some(new_row);
        Ok(old)
    }

    /// Iterate live `(slot, row)` pairs.
    pub fn scan(&self) -> impl Iterator<Item = (usize, &Row)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|row| (i, row)))
    }

    /// The row in `slot`, if live.
    pub fn row(&self, slot: usize) -> Option<&Row> {
        self.slots.get(slot).and_then(Option::as_ref)
    }

    /// Point lookup by full primary key.
    pub fn lookup_pk(&self, key: &IndexKey) -> Option<usize> {
        self.pk.as_ref()?.get(key).copied()
    }

    /// Positions of the primary-key columns.
    pub fn pk_columns(&self) -> &[usize] {
        &self.pk_cols
    }

    /// Create a secondary index named `name` over `column`.
    pub fn create_index(&mut self, name: &str, column: usize) -> RelResult<()> {
        let lower = name.to_ascii_lowercase();
        if self.secondary.iter().any(|s| s.name == lower) {
            return Err(RelError::IndexExists(lower));
        }
        let mut idx = SecondaryIndex {
            name: lower,
            column,
            map: BTreeMap::new(),
        };
        for (slot, row) in self.scan() {
            idx.map
                .entry(vec![KeyDatum(row[column].clone())])
                .or_default()
                .push(slot);
        }
        self.secondary.push(idx);
        Ok(())
    }

    /// Drop the secondary index named `name` (recovery UNDO of an
    /// uncommitted `CREATE INDEX`). Returns false when absent.
    pub fn drop_index(&mut self, name: &str) -> bool {
        let lower = name.to_ascii_lowercase();
        let before = self.secondary.len();
        self.secondary.retain(|s| s.name != lower);
        self.secondary.len() != before
    }

    /// Slots whose `column` equals `value`, via a secondary index or the
    /// PK index when applicable. `None` means no usable index exists
    /// (the executor falls back to a scan).
    pub fn index_lookup(&self, column: usize, value: &Datum) -> Option<Vec<usize>> {
        if self.pk_cols.len() == 1 && self.pk_cols[0] == column {
            let key = vec![KeyDatum(value.clone())];
            return Some(self.lookup_pk(&key).into_iter().collect());
        }
        self.secondary.iter().find(|s| s.column == column).map(|s| {
            s.map
                .get(&vec![KeyDatum(value.clone())])
                .cloned()
                .unwrap_or_default()
        })
    }

    /// The kind of index usable for point/range access on `column`,
    /// if any: the PK B-tree (single-column primary keys only) or the
    /// first secondary index over that column.
    pub fn index_kind(&self, column: usize) -> Option<IndexKind> {
        if self.schema.single_primary_key() == Some(column) {
            return Some(IndexKind::PrimaryKey);
        }
        self.secondary
            .iter()
            .find(|s| s.column == column)
            .map(|_| IndexKind::Secondary)
    }

    /// Number of distinct keys in the index over `column`, or `None`
    /// when no usable index exists. The planner uses this to estimate
    /// equality-sarg selectivity as `len() / distinct`.
    pub fn index_distinct(&self, column: usize) -> Option<usize> {
        if self.schema.single_primary_key() == Some(column) {
            return self.pk.as_ref().map(BTreeMap::len);
        }
        self.secondary
            .iter()
            .find(|s| s.column == column)
            .map(|s| s.map.len())
    }

    /// Lightweight planner statistics: live row count plus the distinct
    /// key count of every index (PK and secondary), keyed by column
    /// position. Maintained for free by the B-tree indexes themselves.
    pub fn stats(&self) -> TableStats {
        let mut column_distinct = Vec::new();
        if let (Some(col), Some(pk)) = (self.schema.single_primary_key(), self.pk.as_ref()) {
            column_distinct.push((col, pk.len()));
        }
        for s in &self.secondary {
            if !column_distinct.iter().any(|&(c, _)| c == s.column) {
                column_distinct.push((s.column, s.map.len()));
            }
        }
        TableStats {
            rows: self.live,
            column_distinct,
        }
    }

    /// Slots whose `column` falls in the half-open/closed range
    /// `(lo, hi)`, exploiting B-tree key order; `None` means no usable
    /// index exists over `column`. NULL keys (which sort below every
    /// non-null datum) are never returned: no SQL range predicate is
    /// true of NULL. Slots come back in index-key order. An inverted
    /// range (lo above hi) yields an empty result.
    pub fn index_range(
        &self,
        column: usize,
        lo: Bound<&Datum>,
        hi: Bound<&Datum>,
    ) -> Option<Vec<usize>> {
        fn key_bound(b: Bound<&Datum>) -> Bound<IndexKey> {
            match b {
                Bound::Included(d) => Bound::Included(vec![KeyDatum(d.clone())]),
                Bound::Excluded(d) => Bound::Excluded(vec![KeyDatum(d.clone())]),
                Bound::Unbounded => Bound::Unbounded,
            }
        }
        let lo = match lo {
            // An open lower bound must still skip the NULL keys that
            // sort first in the B-tree.
            Bound::Unbounded => Bound::Excluded(vec![KeyDatum(Datum::Null)]),
            other => key_bound(other),
        };
        let hi = key_bound(hi);
        // BTreeMap::range panics on inverted bounds; detect and return
        // an empty slot list instead.
        let inverted = match (&lo, &hi) {
            (Bound::Included(a) | Bound::Excluded(a), Bound::Included(b) | Bound::Excluded(b)) => {
                match a.cmp(b) {
                    Ordering::Greater => true,
                    Ordering::Equal => {
                        matches!(&lo, Bound::Excluded(_)) && matches!(&hi, Bound::Excluded(_))
                    }
                    Ordering::Less => false,
                }
            }
            _ => false,
        };
        if self.pk_cols.len() == 1 && self.pk_cols[0] == column {
            let pk = self.pk.as_ref()?;
            if inverted {
                return Some(Vec::new());
            }
            return Some(pk.range((lo, hi)).map(|(_, &s)| s).collect());
        }
        self.secondary.iter().find(|s| s.column == column).map(|s| {
            if inverted {
                return Vec::new();
            }
            s.map
                .range((lo, hi))
                .flat_map(|(_, slots)| slots.iter().copied())
                .collect()
        })
    }
}

/// Which index structure serves an access path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// The unique primary-key B-tree.
    PrimaryKey,
    /// A non-unique secondary B-tree.
    Secondary,
}

impl fmt::Display for IndexKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexKind::PrimaryKey => write!(f, "PRIMARY KEY"),
            IndexKind::Secondary => write!(f, "secondary index"),
        }
    }
}

/// Planner statistics for one table; see [`Table::stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Live row count.
    pub rows: usize,
    /// `(column position, distinct key count)` per indexed column.
    pub column_distinct: Vec<(usize, usize)>,
}

impl TableStats {
    /// Distinct key count for `column`, if it is indexed.
    pub fn distinct(&self, column: usize) -> Option<usize> {
        self.column_distinct
            .iter()
            .find(|&&(c, _)| c == column)
            .map(|&(_, n)| n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::types::DataType;

    fn beds() -> Table {
        Table::new(TableSchema::new(
            "beds",
            vec![
                Column::new("bed_id", DataType::Int).primary_key(),
                Column::new("location", DataType::Text).not_null(),
                Column::new("default_patient_type", DataType::Text),
            ],
        ))
    }

    fn row(id: i64, loc: &str) -> Row {
        vec![Datum::Int(id), Datum::Text(loc.into()), Datum::Null]
    }

    #[test]
    fn insert_scan_delete() {
        let mut t = beds();
        let s0 = t.insert(row(1, "ward A")).unwrap();
        let s1 = t.insert(row(2, "ward B")).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.scan().count(), 2);
        let deleted = t.delete_slot(s0).unwrap();
        assert_eq!(deleted[0], Datum::Int(1));
        assert_eq!(t.len(), 1);
        assert!(t.row(s0).is_none());
        assert!(t.row(s1).is_some());
    }

    #[test]
    fn duplicate_pk_rejected() {
        let mut t = beds();
        t.insert(row(1, "ward A")).unwrap();
        assert!(matches!(
            t.insert(row(1, "ward B")),
            Err(RelError::DuplicateKey(_))
        ));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn pk_free_after_delete() {
        let mut t = beds();
        let s = t.insert(row(1, "ward A")).unwrap();
        t.delete_slot(s);
        t.insert(row(1, "ward A again")).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn not_null_enforced() {
        let mut t = beds();
        let r = vec![Datum::Int(1), Datum::Null, Datum::Null];
        assert!(matches!(t.insert(r), Err(RelError::ConstraintViolation(_))));
    }

    #[test]
    fn arity_enforced() {
        let mut t = beds();
        assert!(matches!(
            t.insert(vec![Datum::Int(1)]),
            Err(RelError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn type_coercion_on_insert() {
        let mut t = Table::new(TableSchema::new(
            "f",
            vec![Column::new("x", DataType::Double)],
        ));
        t.insert(vec![Datum::Int(3)]).unwrap();
        assert_eq!(t.scan().next().unwrap().1[0], Datum::Double(3.0));
        assert!(matches!(
            t.insert(vec![Datum::Text("x".into())]),
            Err(RelError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn update_slot_maintains_pk_index() {
        let mut t = beds();
        let s = t.insert(row(1, "ward A")).unwrap();
        t.insert(row(2, "ward B")).unwrap();
        // Moving pk 1 → 3 frees 1 and occupies 3.
        let old = t.update_slot(s, row(3, "ward C")).unwrap();
        assert_eq!(old[0], Datum::Int(1));
        assert!(t.index_lookup(0, &Datum::Int(1)).unwrap().is_empty());
        assert_eq!(t.index_lookup(0, &Datum::Int(3)).unwrap(), vec![s]);
        // Colliding update rejected.
        assert!(matches!(
            t.update_slot(s, row(2, "collide")),
            Err(RelError::DuplicateKey(_))
        ));
    }

    #[test]
    fn secondary_index_lookup_and_maintenance() {
        let mut t = beds();
        let s0 = t.insert(row(1, "ward A")).unwrap();
        let s1 = t.insert(row(2, "ward A")).unwrap();
        t.insert(row(3, "ward B")).unwrap();
        t.create_index("beds_loc", 1).unwrap();
        assert!(matches!(
            t.create_index("beds_loc", 1),
            Err(RelError::IndexExists(_))
        ));
        let hits = t.index_lookup(1, &Datum::Text("ward A".into())).unwrap();
        assert_eq!(hits, vec![s0, s1]);
        t.delete_slot(s0);
        let hits = t.index_lookup(1, &Datum::Text("ward A".into())).unwrap();
        assert_eq!(hits, vec![s1]);
        // Update relocates index entry.
        t.update_slot(s1, row(2, "ward B")).unwrap();
        assert!(t
            .index_lookup(1, &Datum::Text("ward A".into()))
            .unwrap()
            .is_empty());
        assert_eq!(
            t.index_lookup(1, &Datum::Text("ward B".into()))
                .unwrap()
                .len(),
            2
        );
    }

    #[test]
    fn restore_slot_round_trips() {
        let mut t = beds();
        let s = t.insert(row(1, "ward A")).unwrap();
        let r = t.delete_slot(s).unwrap();
        t.restore_slot(s, r);
        assert_eq!(t.len(), 1);
        assert_eq!(t.index_lookup(0, &Datum::Int(1)).unwrap(), vec![s]);
    }

    #[test]
    fn no_index_means_none() {
        let t = beds();
        assert!(t.index_lookup(1, &Datum::Text("x".into())).is_none());
        assert!(t.index_lookup(2, &Datum::Null).is_none());
    }

    #[test]
    fn index_range_over_pk_and_secondary() {
        let mut t = beds();
        for i in 1..=9 {
            t.insert(row(i, if i % 2 == 0 { "even" } else { "odd" }))
                .unwrap();
        }
        // PK range: 3 <= bed_id < 7.
        let lo = Datum::Int(3);
        let hi = Datum::Int(7);
        let slots = t
            .index_range(0, Bound::Included(&lo), Bound::Excluded(&hi))
            .unwrap();
        let ids: Vec<i64> = slots
            .iter()
            .map(|&s| match t.row(s).unwrap()[0] {
                Datum::Int(v) => v,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, vec![3, 4, 5, 6]);
        // Unbounded below excludes nothing non-null; bounded above.
        let slots = t
            .index_range(0, Bound::Unbounded, Bound::Included(&lo))
            .unwrap();
        assert_eq!(slots.len(), 3);
        // No index on column 1 until created.
        assert!(t
            .index_range(1, Bound::Unbounded, Bound::Unbounded)
            .is_none());
        t.create_index("beds_loc", 1).unwrap();
        let e = Datum::Text("even".into());
        let slots = t
            .index_range(1, Bound::Included(&e), Bound::Included(&e))
            .unwrap();
        assert_eq!(slots.len(), 4);
        // Inverted range yields empty, not panic.
        let slots = t
            .index_range(0, Bound::Included(&hi), Bound::Included(&lo))
            .unwrap();
        assert!(slots.is_empty());
        let slots = t
            .index_range(0, Bound::Excluded(&lo), Bound::Excluded(&lo))
            .unwrap();
        assert!(slots.is_empty());
    }

    #[test]
    fn index_range_skips_null_keys() {
        let mut t = beds();
        t.insert(vec![Datum::Int(1), Datum::Text("a".into()), Datum::Null])
            .unwrap();
        t.insert(vec![
            Datum::Int(2),
            Datum::Text("b".into()),
            Datum::Text("icu".into()),
        ])
        .unwrap();
        t.create_index("beds_type", 2).unwrap();
        // Fully unbounded range must not surface the NULL key.
        let slots = t
            .index_range(2, Bound::Unbounded, Bound::Unbounded)
            .unwrap();
        assert_eq!(slots.len(), 1);
        assert_eq!(t.row(slots[0]).unwrap()[0], Datum::Int(2));
    }

    #[test]
    fn stats_track_rows_and_distinct_keys() {
        let mut t = beds();
        t.insert(row(1, "ward A")).unwrap();
        t.insert(row(2, "ward A")).unwrap();
        t.insert(row(3, "ward B")).unwrap();
        t.create_index("beds_loc", 1).unwrap();
        let st = t.stats();
        assert_eq!(st.rows, 3);
        assert_eq!(st.distinct(0), Some(3)); // pk
        assert_eq!(st.distinct(1), Some(2)); // two wards
        assert_eq!(st.distinct(2), None); // unindexed
        assert_eq!(t.index_kind(0), Some(IndexKind::PrimaryKey));
        assert_eq!(t.index_kind(1), Some(IndexKind::Secondary));
        assert_eq!(t.index_kind(2), None);
        assert_eq!(t.index_distinct(1), Some(2));
        t.delete_slot(0);
        assert_eq!(t.stats().rows, 2);
    }
}
