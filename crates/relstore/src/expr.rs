//! Scalar expressions: AST, SQL three-valued evaluation, and printing.
//!
//! The same AST is produced by the SQL parser and by the WebTassili
//! translation layer (which builds queries like the paper's
//! `Funding(ResearchProjects.Title, Title = 'AIDS and drugs')` →
//! `SELECT a.funding FROM researchprojects a WHERE a.title = '…'`).

use crate::types::{Datum, Row};
use crate::{RelError, RelResult};
use std::cmp::Ordering;
use std::fmt;

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Logical NOT (three-valued).
    Not,
    /// Arithmetic negation.
    Neg,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (always yields DOUBLE; division by zero errors).
    Div,
    /// Modulo on integers.
    Mod,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Less than.
    Lt,
    /// Less or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater or equal.
    Ge,
    /// Three-valued AND.
    And,
    /// Three-valued OR.
    Or,
    /// String concatenation (`||`).
    Concat,
    /// SQL LIKE with `%` and `_` wildcards.
    Like,
}

impl BinOp {
    /// The canonical SQL spelling of this operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Concat => "||",
            BinOp::Like => "LIKE",
        }
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(*)` or `COUNT(expr)`.
    Count,
    /// `SUM(expr)`.
    Sum,
    /// `AVG(expr)`.
    Avg,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        };
        f.write_str(s)
    }
}

/// A scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Literal(Datum),
    /// A (possibly qualified) column reference.
    Column {
        /// Table name or alias qualifier, if written.
        table: Option<String>,
        /// Column name.
        name: String,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Operand.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// `expr [NOT] IN (v1, v2, …)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate list.
        list: Vec<Expr>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// True for `NOT BETWEEN`.
        negated: bool,
    },
    /// An aggregate call; evaluated only by the grouping executor.
    Aggregate {
        /// Which aggregate.
        func: AggFunc,
        /// Argument, or `None` for `COUNT(*)`.
        arg: Option<Box<Expr>>,
        /// True for `AGG(DISTINCT expr)`.
        distinct: bool,
    },
}

impl Expr {
    /// Shorthand: a column reference without qualifier.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column {
            table: None,
            name: name.into().to_ascii_lowercase(),
        }
    }

    /// Shorthand: a qualified column reference.
    pub fn qcol(table: impl Into<String>, name: impl Into<String>) -> Expr {
        Expr::Column {
            table: Some(table.into().to_ascii_lowercase()),
            name: name.into().to_ascii_lowercase(),
        }
    }

    /// Shorthand: a literal.
    pub fn lit(d: Datum) -> Expr {
        Expr::Literal(d)
    }

    /// Shorthand: binary op.
    pub fn bin(op: BinOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Whether this expression tree contains an aggregate call.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Aggregate { .. } => true,
            Expr::Literal(_) | Expr::Column { .. } => false,
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::Between {
                expr, low, high, ..
            } => expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate(),
        }
    }

    /// Collect every distinct aggregate sub-expression, in first-seen
    /// order (the grouping executor computes these once per group).
    pub fn collect_aggregates<'a>(&'a self, out: &mut Vec<&'a Expr>) {
        match self {
            Expr::Aggregate { .. } => {
                if !out.contains(&self) {
                    out.push(self);
                }
            }
            Expr::Literal(_) | Expr::Column { .. } => {}
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => expr.collect_aggregates(out),
            Expr::Binary { left, right, .. } => {
                left.collect_aggregates(out);
                right.collect_aggregates(out);
            }
            Expr::InList { expr, list, .. } => {
                expr.collect_aggregates(out);
                for e in list {
                    e.collect_aggregates(out);
                }
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.collect_aggregates(out);
                low.collect_aggregates(out);
                high.collect_aggregates(out);
            }
        }
    }

    /// Render in canonical SQL (the engine's own dialect).
    pub fn to_sql(&self) -> String {
        match self {
            Expr::Literal(Datum::Text(s)) => format!("'{}'", s.replace('\'', "''")),
            Expr::Literal(Datum::Date(d)) => {
                format!("'{}'", crate::types::format_date(*d))
            }
            Expr::Literal(d) => d.to_string(),
            Expr::Column { table, name } => match table {
                Some(t) => format!("{t}.{name}"),
                None => name.clone(),
            },
            Expr::Unary { op, expr } => match op {
                UnaryOp::Not => format!("NOT ({})", expr.to_sql()),
                UnaryOp::Neg => format!("-({})", expr.to_sql()),
            },
            Expr::Binary { op, left, right } => {
                format!("({} {} {})", left.to_sql(), op.symbol(), right.to_sql())
            }
            Expr::IsNull { expr, negated } => format!(
                "({} IS {}NULL)",
                expr.to_sql(),
                if *negated { "NOT " } else { "" }
            ),
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let items: Vec<String> = list.iter().map(Expr::to_sql).collect();
                format!(
                    "({} {}IN ({}))",
                    expr.to_sql(),
                    if *negated { "NOT " } else { "" },
                    items.join(", ")
                )
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => format!(
                "({} {}BETWEEN {} AND {})",
                expr.to_sql(),
                if *negated { "NOT " } else { "" },
                low.to_sql(),
                high.to_sql()
            ),
            Expr::Aggregate {
                func,
                arg,
                distinct,
            } => match arg {
                None => format!("{func}(*)"),
                Some(a) => format!(
                    "{func}({}{})",
                    if *distinct { "DISTINCT " } else { "" },
                    a.to_sql()
                ),
            },
        }
    }
}

/// What an expression evaluates against: column resolution plus, inside
/// the grouping executor, precomputed aggregate results.
pub trait EvalContext {
    /// Resolve a column reference to its value in the current row.
    fn resolve_column(&self, table: Option<&str>, name: &str) -> RelResult<Datum>;

    /// Resolve a precomputed aggregate (grouping executor only).
    fn resolve_aggregate(&self, expr: &Expr) -> RelResult<Datum> {
        let _ = expr;
        Err(RelError::AggregateMisuse(
            "aggregate used outside SELECT/HAVING".into(),
        ))
    }
}

/// A context over a single table's row.
pub struct SingleRow<'a> {
    /// Column names, lowercase, in row order.
    pub columns: &'a [String],
    /// Current row.
    pub row: &'a Row,
}

impl EvalContext for SingleRow<'_> {
    fn resolve_column(&self, _table: Option<&str>, name: &str) -> RelResult<Datum> {
        let lower = name.to_ascii_lowercase();
        self.columns
            .iter()
            .position(|c| *c == lower)
            .map(|i| self.row[i].clone())
            .ok_or(RelError::NoSuchColumn(lower))
    }
}

fn truth(d: &Datum) -> RelResult<Option<bool>> {
    match d {
        Datum::Null => Ok(None),
        Datum::Bool(b) => Ok(Some(*b)),
        other => Err(RelError::TypeMismatch {
            expected: "BOOL".into(),
            found: format!("{other}"),
        }),
    }
}

fn from_truth(t: Option<bool>) -> Datum {
    match t {
        Some(b) => Datum::Bool(b),
        None => Datum::Null,
    }
}

/// SQL LIKE pattern matching with `%` (any run) and `_` (single char).
pub fn like_match(text: &str, pattern: &str) -> bool {
    fn rec(t: &[char], p: &[char]) -> bool {
        match p.split_first() {
            None => t.is_empty(),
            Some(('%', rest)) => (0..=t.len()).any(|i| rec(&t[i..], rest)),
            Some(('_', rest)) => match t.split_first() {
                Some((_, t_rest)) => rec(t_rest, rest),
                None => false,
            },
            Some((c, rest)) => match t.split_first() {
                Some((tc, t_rest)) => tc == c && rec(t_rest, rest),
                None => false,
            },
        }
    }
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    rec(&t, &p)
}

/// Evaluate `expr` in `ctx`, producing a [`Datum`].
pub fn eval(expr: &Expr, ctx: &dyn EvalContext) -> RelResult<Datum> {
    match expr {
        Expr::Literal(d) => Ok(d.clone()),
        Expr::Column { table, name } => ctx.resolve_column(table.as_deref(), name),
        Expr::Aggregate { .. } => ctx.resolve_aggregate(expr),
        Expr::Unary { op, expr } => {
            let v = eval(expr, ctx)?;
            match op {
                UnaryOp::Not => Ok(from_truth(truth(&v)?.map(|b| !b))),
                UnaryOp::Neg => match v {
                    Datum::Null => Ok(Datum::Null),
                    Datum::Int(i) => Ok(Datum::Int(-i)),
                    Datum::Double(d) => Ok(Datum::Double(-d)),
                    other => Err(RelError::TypeMismatch {
                        expected: "numeric".into(),
                        found: format!("{other}"),
                    }),
                },
            }
        }
        Expr::Binary { op, left, right } => eval_binary(*op, left, right, ctx),
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, ctx)?;
            Ok(Datum::Bool(v.is_null() != *negated))
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval(expr, ctx)?;
            if v.is_null() {
                return Ok(Datum::Null);
            }
            let mut saw_null = false;
            for item in list {
                let w = eval(item, ctx)?;
                if w.is_null() {
                    saw_null = true;
                    continue;
                }
                if v.sql_cmp(&w) == Some(Ordering::Equal) {
                    return Ok(Datum::Bool(!*negated));
                }
            }
            // SQL: x IN (…, NULL) is NULL when no match was found.
            if saw_null {
                Ok(Datum::Null)
            } else {
                Ok(Datum::Bool(*negated))
            }
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = eval(expr, ctx)?;
            let lo = eval(low, ctx)?;
            let hi = eval(high, ctx)?;
            let ge_lo = match v.sql_cmp(&lo) {
                None => return Ok(Datum::Null),
                Some(o) => o != Ordering::Less,
            };
            let le_hi = match v.sql_cmp(&hi) {
                None => return Ok(Datum::Null),
                Some(o) => o != Ordering::Greater,
            };
            Ok(Datum::Bool((ge_lo && le_hi) != *negated))
        }
    }
}

fn eval_binary(op: BinOp, left: &Expr, right: &Expr, ctx: &dyn EvalContext) -> RelResult<Datum> {
    // AND/OR get short-circuit three-valued logic.
    if op == BinOp::And || op == BinOp::Or {
        let l = truth(&eval(left, ctx)?)?;
        // Short circuit where the answer is determined.
        match (op, l) {
            (BinOp::And, Some(false)) => return Ok(Datum::Bool(false)),
            (BinOp::Or, Some(true)) => return Ok(Datum::Bool(true)),
            _ => {}
        }
        let r = truth(&eval(right, ctx)?)?;
        let out = match op {
            BinOp::And => match (l, r) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            },
            BinOp::Or => match (l, r) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            },
            _ => unreachable!("only AND/OR handled here"),
        };
        return Ok(from_truth(out));
    }

    let l = eval(left, ctx)?;
    let r = eval(right, ctx)?;

    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
            if l.is_null() || r.is_null() {
                return Ok(Datum::Null);
            }
            arith(op, &l, &r)
        }
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            match l.sql_cmp(&r) {
                None => Ok(Datum::Null),
                Some(ord) => {
                    let b = match op {
                        BinOp::Eq => ord == Ordering::Equal,
                        BinOp::Ne => ord != Ordering::Equal,
                        BinOp::Lt => ord == Ordering::Less,
                        BinOp::Le => ord != Ordering::Greater,
                        BinOp::Gt => ord == Ordering::Greater,
                        BinOp::Ge => ord != Ordering::Less,
                        _ => unreachable!(),
                    };
                    Ok(Datum::Bool(b))
                }
            }
        }
        BinOp::Concat => {
            if l.is_null() || r.is_null() {
                return Ok(Datum::Null);
            }
            Ok(Datum::Text(format!("{l}{r}")))
        }
        BinOp::Like => match (&l, &r) {
            (Datum::Null, _) | (_, Datum::Null) => Ok(Datum::Null),
            (Datum::Text(t), Datum::Text(p)) => Ok(Datum::Bool(like_match(t, p))),
            _ => Err(RelError::TypeMismatch {
                expected: "TEXT LIKE TEXT".into(),
                found: format!("{l} LIKE {r}"),
            }),
        },
        BinOp::And | BinOp::Or => unreachable!("handled above"),
    }
}

fn arith(op: BinOp, l: &Datum, r: &Datum) -> RelResult<Datum> {
    use Datum::{Date, Double, Int};
    match (l, r) {
        (Int(a), Int(b)) => match op {
            BinOp::Add => Ok(Int(a.wrapping_add(*b))),
            BinOp::Sub => Ok(Int(a.wrapping_sub(*b))),
            BinOp::Mul => Ok(Int(a.wrapping_mul(*b))),
            BinOp::Div => {
                if *b == 0 {
                    Err(RelError::DivisionByZero)
                } else {
                    Ok(Double(*a as f64 / *b as f64))
                }
            }
            BinOp::Mod => {
                if *b == 0 {
                    Err(RelError::DivisionByZero)
                } else {
                    Ok(Int(a % b))
                }
            }
            _ => unreachable!(),
        },
        // Date arithmetic: date ± int days, date - date = days.
        (Date(a), Int(b)) if matches!(op, BinOp::Add | BinOp::Sub) => {
            let delta = if op == BinOp::Add { *b } else { -*b };
            Ok(Date(a.wrapping_add(delta as i32)))
        }
        (Date(a), Date(b)) if op == BinOp::Sub => Ok(Int((*a as i64) - (*b as i64))),
        _ => {
            let (a, b) = match (to_f64(l), to_f64(r)) {
                (Some(a), Some(b)) => (a, b),
                _ => {
                    return Err(RelError::TypeMismatch {
                        expected: "numeric".into(),
                        found: format!("{l} {} {r}", op.symbol()),
                    })
                }
            };
            match op {
                BinOp::Add => Ok(Double(a + b)),
                BinOp::Sub => Ok(Double(a - b)),
                BinOp::Mul => Ok(Double(a * b)),
                BinOp::Div => {
                    if b == 0.0 {
                        Err(RelError::DivisionByZero)
                    } else {
                        Ok(Double(a / b))
                    }
                }
                BinOp::Mod => Err(RelError::TypeMismatch {
                    expected: "INT % INT".into(),
                    found: format!("{l} % {r}"),
                }),
                _ => unreachable!(),
            }
        }
    }
}

fn to_f64(d: &Datum) -> Option<f64> {
    match d {
        Datum::Int(v) => Some(*v as f64),
        Datum::Double(v) => Some(*v),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct NoRows;
    impl EvalContext for NoRows {
        fn resolve_column(&self, _t: Option<&str>, name: &str) -> RelResult<Datum> {
            Err(RelError::NoSuchColumn(name.into()))
        }
    }

    fn ev(e: &Expr) -> Datum {
        eval(e, &NoRows).unwrap()
    }

    #[test]
    fn arithmetic() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::lit(Datum::Int(2)),
            Expr::bin(
                BinOp::Mul,
                Expr::lit(Datum::Int(3)),
                Expr::lit(Datum::Int(4)),
            ),
        );
        assert_eq!(ev(&e), Datum::Int(14));
        let d = Expr::bin(
            BinOp::Div,
            Expr::lit(Datum::Int(7)),
            Expr::lit(Datum::Int(2)),
        );
        assert_eq!(ev(&d), Datum::Double(3.5));
    }

    #[test]
    fn division_by_zero_errors() {
        let e = Expr::bin(
            BinOp::Div,
            Expr::lit(Datum::Int(1)),
            Expr::lit(Datum::Int(0)),
        );
        assert_eq!(eval(&e, &NoRows), Err(RelError::DivisionByZero));
    }

    #[test]
    fn null_propagates_through_arithmetic_and_concat() {
        let e = Expr::bin(BinOp::Add, Expr::lit(Datum::Null), Expr::lit(Datum::Int(1)));
        assert!(ev(&e).is_null());
        let c = Expr::bin(
            BinOp::Concat,
            Expr::lit(Datum::Text("a".into())),
            Expr::lit(Datum::Null),
        );
        assert!(ev(&c).is_null());
    }

    #[test]
    fn three_valued_and_or() {
        let t = || Expr::lit(Datum::Bool(true));
        let f = || Expr::lit(Datum::Bool(false));
        let n = || Expr::lit(Datum::Null);
        assert_eq!(ev(&Expr::bin(BinOp::And, f(), n())), Datum::Bool(false));
        assert!(ev(&Expr::bin(BinOp::And, t(), n())).is_null());
        assert_eq!(ev(&Expr::bin(BinOp::Or, t(), n())), Datum::Bool(true));
        assert!(ev(&Expr::bin(BinOp::Or, f(), n())).is_null());
        // NOT NULL is NULL
        let not_null = Expr::Unary {
            op: UnaryOp::Not,
            expr: Box::new(n()),
        };
        assert!(ev(&not_null).is_null());
    }

    #[test]
    fn comparisons_with_null_are_unknown() {
        let e = Expr::bin(BinOp::Eq, Expr::lit(Datum::Null), Expr::lit(Datum::Null));
        assert!(ev(&e).is_null());
    }

    #[test]
    fn is_null_checks() {
        let e = Expr::IsNull {
            expr: Box::new(Expr::lit(Datum::Null)),
            negated: false,
        };
        assert_eq!(ev(&e), Datum::Bool(true));
        let e2 = Expr::IsNull {
            expr: Box::new(Expr::lit(Datum::Int(1))),
            negated: true,
        };
        assert_eq!(ev(&e2), Datum::Bool(true));
    }

    #[test]
    fn in_list_with_null_semantics() {
        let in_match = Expr::InList {
            expr: Box::new(Expr::lit(Datum::Int(2))),
            list: vec![Expr::lit(Datum::Int(1)), Expr::lit(Datum::Int(2))],
            negated: false,
        };
        assert_eq!(ev(&in_match), Datum::Bool(true));
        let in_null = Expr::InList {
            expr: Box::new(Expr::lit(Datum::Int(9))),
            list: vec![Expr::lit(Datum::Int(1)), Expr::lit(Datum::Null)],
            negated: false,
        };
        assert!(ev(&in_null).is_null());
        let not_in = Expr::InList {
            expr: Box::new(Expr::lit(Datum::Int(9))),
            list: vec![Expr::lit(Datum::Int(1))],
            negated: true,
        };
        assert_eq!(ev(&not_in), Datum::Bool(true));
    }

    #[test]
    fn between_inclusive() {
        let mk = |v: i64, neg: bool| Expr::Between {
            expr: Box::new(Expr::lit(Datum::Int(v))),
            low: Box::new(Expr::lit(Datum::Int(1))),
            high: Box::new(Expr::lit(Datum::Int(10))),
            negated: neg,
        };
        assert_eq!(ev(&mk(1, false)), Datum::Bool(true));
        assert_eq!(ev(&mk(10, false)), Datum::Bool(true));
        assert_eq!(ev(&mk(11, false)), Datum::Bool(false));
        assert_eq!(ev(&mk(11, true)), Datum::Bool(true));
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("AIDS and drugs", "AIDS%"));
        assert!(like_match("AIDS and drugs", "%drugs"));
        assert!(like_match("AIDS and drugs", "%and%"));
        assert!(like_match("cat", "c_t"));
        assert!(!like_match("cart", "c_t"));
        assert!(like_match("", "%"));
        assert!(!like_match("x", ""));
        assert!(like_match("100%", "100%"));
    }

    #[test]
    fn date_arithmetic() {
        let d = crate::types::parse_date("1999-01-01").unwrap();
        let plus = Expr::bin(
            BinOp::Add,
            Expr::lit(Datum::Date(d)),
            Expr::lit(Datum::Int(31)),
        );
        assert_eq!(
            ev(&plus),
            Datum::Date(crate::types::parse_date("1999-02-01").unwrap())
        );
        let diff = Expr::bin(
            BinOp::Sub,
            Expr::lit(Datum::Date(d + 10)),
            Expr::lit(Datum::Date(d)),
        );
        assert_eq!(ev(&diff), Datum::Int(10));
    }

    #[test]
    fn aggregate_outside_executor_errors() {
        let e = Expr::Aggregate {
            func: AggFunc::Count,
            arg: None,
            distinct: false,
        };
        assert!(matches!(
            eval(&e, &NoRows),
            Err(RelError::AggregateMisuse(_))
        ));
    }

    #[test]
    fn sql_printing() {
        let e = Expr::bin(
            BinOp::And,
            Expr::bin(
                BinOp::Eq,
                Expr::qcol("a", "title"),
                Expr::lit(Datum::Text("AIDS and drugs".into())),
            ),
            Expr::bin(BinOp::Gt, Expr::col("funding"), Expr::lit(Datum::Int(1000))),
        );
        assert_eq!(
            e.to_sql(),
            "((a.title = 'AIDS and drugs') AND (funding > 1000))"
        );
    }

    #[test]
    fn string_literal_escaping() {
        let e = Expr::lit(Datum::Text("O'Brien".into()));
        assert_eq!(e.to_sql(), "'O''Brien'");
    }

    #[test]
    fn collect_aggregates_dedups() {
        let agg = Expr::Aggregate {
            func: AggFunc::Sum,
            arg: Some(Box::new(Expr::col("funding"))),
            distinct: false,
        };
        let e = Expr::bin(BinOp::Add, agg.clone(), agg.clone());
        let mut out = Vec::new();
        e.collect_aggregates(&mut out);
        assert_eq!(out.len(), 1);
        assert!(e.contains_aggregate());
    }
}
