//! A minimal `poll(2)` readiness binding for the reactor core.
//!
//! The workspace builds offline with no external crates, so rather than
//! pull in a readiness library the reactor uses the one syscall it
//! needs, declared directly against the C library that Rust's std
//! already links. `poll` is POSIX, level-triggered, and allocation-free
//! for the fd counts an ORB handles (hundreds of connections); the
//! reactor rebuilds its pollfd array per iteration from its connection
//! table, which keeps registration logic trivial.

use std::io;
use std::os::fd::RawFd;

/// Readable data (or a closed peer's final EOF) is available.
pub const POLLIN: i16 = 0x001;
/// Writing would not block.
pub const POLLOUT: i16 = 0x004;
/// Error condition on the fd (revents only).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (revents only).
pub const POLLHUP: i16 = 0x010;
/// The fd is not open (revents only).
pub const POLLNVAL: i16 = 0x020;

/// One entry of a `poll(2)` fd set, laid out as the kernel expects.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// File descriptor to watch.
    pub fd: RawFd,
    /// Requested readiness events (`POLLIN` / `POLLOUT`).
    pub events: i16,
    /// Returned readiness events, filled by the kernel.
    pub revents: i16,
}

impl PollFd {
    /// Watch `fd` for `events`.
    pub fn new(fd: RawFd, events: i16) -> Self {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// True when any of `mask` came back in `revents`.
    pub fn ready(&self, mask: i16) -> bool {
        self.revents & mask != 0
    }

    /// True when the kernel reported an error/hangup condition.
    pub fn failed(&self) -> bool {
        self.revents & (POLLERR | POLLHUP | POLLNVAL) != 0
    }
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: std::ffi::c_ulong, timeout: std::ffi::c_int)
        -> std::ffi::c_int;
}

/// Block until one of `fds` is ready or `timeout_ms` elapses (negative
/// waits forever). Returns how many entries have nonzero `revents`.
/// `EINTR` is retried internally.
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as std::ffi::c_ulong, timeout_ms) };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                continue;
            }
            return Err(err);
        }
        return Ok(rc as usize);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn poll_reports_readability() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();

        // Nothing to read yet: poll with a short timeout returns 0.
        let mut fds = [PollFd::new(server.as_raw_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 0).unwrap(), 0);
        assert!(!fds[0].ready(POLLIN));

        client.write_all(b"x").unwrap();
        let mut fds = [PollFd::new(server.as_raw_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 1000).unwrap(), 1);
        assert!(fds[0].ready(POLLIN));
    }

    #[test]
    fn poll_reports_writability_and_hangup() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();

        let mut fds = [PollFd::new(client.as_raw_fd(), POLLOUT)];
        assert_eq!(poll_fds(&mut fds, 1000).unwrap(), 1);
        assert!(fds[0].ready(POLLOUT));

        drop(server);
        let mut fds = [PollFd::new(client.as_raw_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 1000).unwrap(), 1);
        // EOF shows as readable (read returns 0) and/or hangup.
        assert!(fds[0].ready(POLLIN) || fds[0].failed());
    }
}
