//! Fixture: the blocking leaf.

pub fn slow_io(s: &Store) {
    s.file.sync_all();
}
