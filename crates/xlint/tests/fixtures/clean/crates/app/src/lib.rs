//! Fixture: no findings. `v.push(1)` under a guard must NOT resolve to
//! `Q::push` (which sends a frame) — `push` collides with std and is
//! stoplisted, so the transitive guard rule stays quiet.

pub struct Q;

impl Q {
    pub fn push(&self) {
        self.wire.send_frame(&[]);
    }
}

pub fn tidy(v: &mut Vec<u8>, m: &M) {
    let g = m.inner.lock();
    v.push(1);
    drop(g);
}
