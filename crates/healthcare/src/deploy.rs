//! Standing up the healthcare federation (§4–5).

use crate::schemas::{build_database, BuiltSource};
use crate::topology::{coalitions, databases, service_links, OrbName};
use std::sync::Arc;
use webfindit::docs::{DocFormat, Document};
use webfindit::federation::{Federation, SiteSpec, SiteVendor};
use webfindit::orb::chaos::{ChaosPlan, ChaosRegistry, ChaosTargets};
use webfindit::wire::cdr::ByteOrder;
use webfindit::WfResult;
use webfindit_relstore::file_mgr::SimVfs;
use webfindit_relstore::Dialect;

/// A running healthcare deployment.
pub struct HealthcareDeployment {
    /// The federation.
    pub fed: Arc<Federation>,
    /// Total ORB invocations spent wiring coalitions and links.
    pub wiring_calls: u64,
    /// The seed used for data generation.
    pub seed: u64,
}

impl HealthcareDeployment {
    /// The sites and advertised ORB endpoints a chaos plan may target
    /// in this deployment.
    pub fn chaos_targets(&self) -> ChaosTargets {
        self.fed.chaos_targets()
    }

    /// Generate a seeded, replayable fault schedule of `events` events
    /// against this deployment's sites and endpoints. The same seed over
    /// the same topology yields the identical schedule, so a chaos run
    /// can be reproduced exactly from its seed alone.
    pub fn chaos_plan(&self, seed: u64, events: usize) -> ChaosPlan {
        ChaosPlan::generate(seed, &self.chaos_targets(), events)
    }

    /// The fault-control plane shared by every channel in the
    /// federation's ORB domain.
    pub fn chaos_registry(&self) -> Arc<ChaosRegistry> {
        self.fed.chaos_registry()
    }
}

/// Build the full 14-database healthcare federation: three ORBs
/// (Orbix big-endian C++-flavored, OrbixWeb and VisiBroker
/// little-endian Java-flavored), every database with its co-database,
/// the five coalitions, the nine service links, and the documentation
/// store contents.
pub fn build_healthcare(seed: u64) -> WfResult<HealthcareDeployment> {
    build_healthcare_with(seed, false)
}

/// [`build_healthcare`], but every relational site gets the durable
/// storage tier on its own simulated disk ([`SimVfs`]): its generated
/// data is written as the initial checkpoint, and from then on commits
/// go through the WAL. Killing a hosting ORB then loses the site's
/// volatile state exactly as a machine crash would, and restarting it
/// runs crash recovery — the committed rows survive, in-flight
/// transactions do not. Object sites stay in-memory (the paper's
/// Ontos/ObjectStore wrappers never promised durability).
pub fn build_healthcare_durable(seed: u64) -> WfResult<HealthcareDeployment> {
    build_healthcare_with(seed, true)
}

fn build_healthcare_with(seed: u64, durable: bool) -> WfResult<HealthcareDeployment> {
    let fed = Federation::new()?;

    // Figure 2's three ORBs. Byte orders differ so cross-ORB calls are
    // genuinely cross-endian.
    fed.add_orb("Orbix", "orbix.qut.edu.au", 9000, ByteOrder::BigEndian)?;
    fed.add_orb(
        "OrbixWeb",
        "orbixweb.qut.edu.au",
        9001,
        ByteOrder::LittleEndian,
    )?;
    fed.add_orb(
        "VisiBroker",
        "visibroker.qut.edu.au",
        9002,
        ByteOrder::LittleEndian,
    )?;

    // The fourteen sites.
    for info in databases() {
        let orb = match info.dbms.orb() {
            OrbName::Orbix => "Orbix",
            OrbName::OrbixWeb => "OrbixWeb",
            OrbName::VisiBroker => "VisiBroker",
        };
        let built = build_database(&info, seed);
        let vendor = match &built {
            BuiltSource::Relational(db, _) => match db.dialect() {
                Dialect::Oracle => SiteVendor::Relational(Dialect::Oracle),
                Dialect::MSql => SiteVendor::Relational(Dialect::MSql),
                Dialect::Db2 => SiteVendor::Relational(Dialect::Db2),
                Dialect::Sybase => SiteVendor::Relational(Dialect::Sybase),
                Dialect::Canonical => SiteVendor::Relational(Dialect::Canonical),
            },
            BuiltSource::Object(..) => match info.dbms {
                crate::topology::Dbms::Ontos => SiteVendor::Ontos,
                _ => SiteVendor::ObjectStore,
            },
        };
        let interface = match &built {
            BuiltSource::Relational(_, iface) => iface.clone(),
            BuiltSource::Object(_, _, iface) => iface.clone(),
        };
        let spec = SiteSpec {
            name: info.name.to_owned(),
            orb: orb.to_owned(),
            vendor,
            host: info.host.to_owned(),
            information_type: info.information_type.to_owned(),
            documentation_url: info.documentation_url.to_owned(),
            interface,
        };
        match built {
            BuiltSource::Relational(mut db, _) => {
                if durable {
                    db.make_durable(SimVfs::new())
                        .map_err(webfindit_connect::ConnectError::Rel)?;
                }
                fed.add_relational_site(spec, *db)?;
            }
            BuiltSource::Object(store, methods, _) => {
                fed.add_object_site(spec, store, methods)?;
            }
        }
        publish_documentation(&fed, &info);
    }

    // Coalitions and service links from Figure 1.
    let mut wiring_calls = 0;
    for (name, doc, members) in coalitions() {
        wiring_calls += fed.form_coalition(name, None, doc, &members)?;
    }
    for link in service_links() {
        wiring_calls += fed.add_service_link(&link)?;
    }

    // Lattice refinement: the Figure-4 session displays SubClasses of
    // Research, so the taxonomy has at least one level below the
    // coalitions. Cancer Research specializes Research; every Research
    // member learns the subclass, with Queensland Cancer Fund as its
    // instance.
    {
        use webfindit::value_map::descriptor_to_value;
        use webfindit::wire::Value;
        let qcf = fed.site("Queensland Cancer Fund")?;
        let research_members = coalitions()
            .into_iter()
            .find(|(n, _, _)| *n == "Research")
            .map(|(_, _, m)| m)
            .unwrap_or_default();
        for member in research_members {
            let site = fed.site(member)?;
            fed.invoke(
                &site.codb_ior,
                "create_coalition",
                &[
                    Value::string("Cancer Research"),
                    Value::string("Research"),
                    Value::string("cancer-specific medical research"),
                ],
            )?;
            fed.invoke(
                &site.codb_ior,
                "advertise",
                &[
                    Value::string("Cancer Research"),
                    descriptor_to_value(&qcf.descriptor),
                ],
            )?;
            wiring_calls += 2;
        }
    }

    Ok(HealthcareDeployment {
        fed,
        wiring_calls,
        seed,
    })
}

/// Publish the documentation the Figure-4 format picker offers. RBH
/// gets text, HTML (the Figure-5 page), and a Java-applet placeholder.
fn publish_documentation(fed: &Arc<Federation>, info: &crate::topology::DatabaseInfo) {
    let docs = fed.docs();
    docs.publish(
        info.documentation_url,
        Document {
            format: DocFormat::Text,
            content: format!(
                "{} — {}. Hosted at {} on {}.",
                info.name,
                info.information_type,
                info.host,
                info.dbms.name()
            ),
        },
    );
    if info.name == "Royal Brisbane Hospital" {
        docs.publish(
            info.documentation_url,
            Document {
                format: DocFormat::Html,
                content: "<html><head><title>Royal Brisbane Hospital</title></head>\n\
                          <body>\n<h1>Royal Brisbane Hospital</h1>\n\
                          <p>The Royal Brisbane Hospital is a teaching hospital \
                          conducting medical research and providing patient care. \
                          Its database exports the ResearchProjects and \
                          PatientHistory types.</p>\n\
                          <p>Contact: dba.icis.qut.edu.au</p>\n</body></html>"
                    .to_owned(),
            },
        );
        docs.publish(
            info.documentation_url,
            Document {
                format: DocFormat::Applet,
                content: "applet: RBHVirtualTour.class (video clip of the campus)".to_owned(),
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_deployment_comes_up() {
        let dep = build_healthcare(1999).unwrap();
        // 14 sites, 3 ORBs (plus the bootstrap one), 28 servants (a
        // co-database and an ISI per site).
        assert_eq!(dep.fed.site_names().len(), 14);
        assert_eq!(dep.fed.orb_names().len(), 3);
        let mut servants = 0;
        for orb_name in dep.fed.orb_names() {
            servants += dep.fed.orb(&orb_name).unwrap().adapter().len();
        }
        assert_eq!(servants, 28, "14 co-databases + 14 ISIs");
        assert!(dep.wiring_calls > 0);
        dep.fed.shutdown();
    }

    #[test]
    fn durable_deployment_survives_an_orb_crash() {
        let dep = build_healthcare_durable(1999).unwrap();
        let rbh = dep.fed.site("Royal Brisbane Hospital").unwrap();
        let parts = webfindit_connect::parse_url(&rbh.url).unwrap();
        let registry = dep.fed.registry();
        let db = registry.relational(parts.vendor, parts.instance).unwrap();
        assert!(db.lock().is_durable());

        // Committed work before the crash...
        let baseline = db
            .lock()
            .execute("SELECT COUNT(*) c FROM researchprojects")
            .unwrap()
            .rows()
            .unwrap()
            .rows[0][0]
            .clone();
        db.lock()
            .execute("INSERT INTO researchprojects VALUES (9001, 'Durability study', 'wal, recovery', 3, '1999-01-01', NULL, 42000.0)")
            .unwrap();
        // ...and an in-flight transaction that must not survive.
        {
            let mut guard = db.lock();
            guard.begin().unwrap();
            guard
                .execute("INSERT INTO researchprojects VALUES (9002, 'Lost update', 'none', 3, '1999-01-02', NULL, 1.0)")
                .unwrap();
        }

        dep.fed.kill_orb(&rbh.orb_name).unwrap();
        assert!(db.lock().is_crashed(), "durable site dies with its ORB");
        dep.fed.restart_orb(&rbh.orb_name).unwrap();

        let mut guard = db.lock();
        assert!(!guard.is_crashed(), "restart runs recovery");
        let committed = guard
            .execute("SELECT project_id FROM researchprojects WHERE project_id >= 9001")
            .unwrap();
        assert_eq!(
            committed.rows().unwrap().rows,
            vec![vec![webfindit_relstore::Datum::Int(9001)]],
            "committed row survives, in-flight row does not"
        );
        let after = guard
            .execute("SELECT COUNT(*) c FROM researchprojects")
            .unwrap()
            .rows()
            .unwrap()
            .rows[0][0]
            .clone();
        assert_eq!(
            after,
            match baseline {
                webfindit_relstore::Datum::Int(n) => webfindit_relstore::Datum::Int(n + 1),
                other => other,
            }
        );
        drop(guard);
        dep.fed.shutdown();
    }

    #[test]
    fn chaos_plans_replay_over_the_real_topology() {
        let dep = build_healthcare(1999).unwrap();
        let targets = dep.chaos_targets();
        assert_eq!(targets.sites.len(), 14);
        assert_eq!(targets.endpoints.len(), 3, "one endpoint per named ORB");
        let a = dep.chaos_plan(7, 10);
        let b = dep.chaos_plan(7, 10);
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
        assert_ne!(a.digest(), dep.chaos_plan(8, 10).digest());
        dep.fed.shutdown();
    }

    #[test]
    fn rbh_codb_knows_its_two_coalitions_and_links() {
        let dep = build_healthcare(1999).unwrap();
        let rbh = dep.fed.site("Royal Brisbane Hospital").unwrap();
        let codb = rbh.codb.read();
        let memberships = codb.memberships("Royal Brisbane Hospital");
        assert!(
            memberships.contains(&"Research".to_string()),
            "{memberships:?}"
        );
        assert!(
            memberships.contains(&"Medical".to_string()),
            "{memberships:?}"
        );
        // Links involving Medical are known at RBH (a Medical member).
        assert!(!codb.links_involving("Medical").is_empty());
        drop(codb);
        dep.fed.shutdown();
    }
}
