//! Integration tests: synthetic federations, the discovery algorithm,
//! the baselines, and the full WebTassili processing path over real
//! multi-ORB IIOP.

use webfindit::baselines::{CentralIndex, FlatBroadcast};
use webfindit::discovery::DiscoveryEngine;
use webfindit::processor::{Processor, Response};
use webfindit::session::BrowserSession;
use webfindit::synth::{build, SynthConfig, SynthFederation};

fn small() -> SynthFederation {
    build(&SynthConfig {
        databases: 12,
        coalition_size: 3,
        orbs: 3,
        extra_links: 0,
        ring_links: true,
        seed: 7,
    })
    .unwrap()
}

#[test]
fn local_topics_resolve_at_level_zero() {
    let synth = small();
    let engine = DiscoveryEngine::new(synth.fed.clone());
    // A member of coalition 0 looking for its own topic: local hit.
    let outcome = engine
        .find(synth.member_of(0), &SynthFederation::topic(0))
        .unwrap();
    assert!(outcome.found());
    assert_eq!(outcome.stats.found_at_level, Some(0));
    assert_eq!(outcome.stats.total_round_trips(), 0);
    assert!(outcome
        .leads
        .iter()
        .any(|l| l.coalition_name() == Some("Coalition_000")));
    synth.fed.shutdown();
}

#[test]
fn linked_topics_resolve_via_minimal_description() {
    let synth = small();
    let engine = DiscoveryEngine::new(synth.fed.clone());
    // Coalition 0 is linked to coalition 1; the minimal description
    // (class + contact) makes topic_001 findable from coalition 0
    // without broadcasting.
    let outcome = engine
        .find(synth.member_of(0), &SynthFederation::topic(1))
        .unwrap();
    assert!(outcome.found(), "{outcome:?}");
    assert!(
        outcome.stats.sites_visited < synth.sites.len(),
        "discovery should not visit every site: {:?}",
        outcome.stats
    );
    synth.fed.shutdown();
}

#[test]
fn distant_topics_need_more_hops_but_not_broadcast() {
    let synth = build(&SynthConfig {
        databases: 24,
        coalition_size: 3,
        orbs: 3,
        extra_links: 0,
        ring_links: true,
        seed: 11,
    })
    .unwrap();
    let engine = DiscoveryEngine::new(synth.fed.clone());
    let near = engine
        .find(synth.member_of(0), &SynthFederation::topic(1))
        .unwrap();
    let far = engine
        .find(synth.member_of(0), &SynthFederation::topic(4))
        .unwrap();
    assert!(near.found() && far.found());
    assert!(
        far.stats.found_at_level >= near.stats.found_at_level,
        "near {near:?} vs far {far:?}"
    );
    synth.fed.shutdown();
}

#[test]
fn broadcast_always_pays_full_fanout() {
    let synth = small();
    let engine = DiscoveryEngine::new(synth.fed.clone());
    let flat = FlatBroadcast::new(synth.fed.clone());

    let wf = engine
        .find(synth.member_of(0), &SynthFederation::topic(0))
        .unwrap();
    let bc = flat.find(&SynthFederation::topic(0)).unwrap();

    assert!(bc.found());
    assert_eq!(bc.stats.sites_visited, synth.sites.len());
    assert!(
        wf.stats.total_round_trips() < bc.stats.total_round_trips(),
        "WebFINDIT {wf:?} should beat broadcast {bc:?}"
    );
    synth.fed.shutdown();
}

#[test]
fn central_index_is_cheap_to_query_expensive_to_build() {
    let synth = small();
    let central = CentralIndex::build(synth.fed.clone()).unwrap();
    assert!(
        central.registration_calls as usize >= synth.sites.len(),
        "the center ingests at least one call per site"
    );
    let outcome = central.find(&SynthFederation::topic(2)).unwrap();
    assert!(outcome.found());
    assert_eq!(outcome.stats.codb_queries, 2); // find_coalitions + find_links
    synth.fed.shutdown();
}

#[test]
fn webfindit_and_broadcast_agree_on_answerability() {
    let synth = small();
    let engine = DiscoveryEngine::new(synth.fed.clone());
    let flat = FlatBroadcast::new(synth.fed.clone());
    for c in 0..synth.coalition_count() {
        let topic = SynthFederation::topic(c);
        let wf = engine.find(synth.member_of(0), &topic).unwrap();
        let bc = flat.find(&topic).unwrap();
        assert_eq!(
            wf.found(),
            bc.found(),
            "coalition {c}: WebFINDIT {wf:?} vs broadcast {bc:?}"
        );
    }
    // A topic nobody advertises is found by neither.
    let wf = engine
        .find(synth.member_of(0), "nonexistent-subject")
        .unwrap();
    let bc = flat.find("nonexistent-subject").unwrap();
    assert!(!wf.found() && !bc.found());
    synth.fed.shutdown();
}

#[test]
fn webtassili_session_over_the_synthetic_federation() {
    let synth = small();
    let processor = Processor::new(synth.fed.clone());
    let mut session = BrowserSession::new(synth.member_of(0));

    // Find, connect, browse, query — the §2.3 interaction pattern.
    let resp = processor
        .submit(
            &mut session,
            "Find Coalitions With Information topic_000;",
            None,
        )
        .unwrap();
    match &resp {
        Response::Leads { leads, .. } => {
            assert!(leads
                .iter()
                .any(|l| l.coalition_name() == Some("Coalition_000")))
        }
        other => panic!("{other:?}"),
    }

    let resp = processor
        .submit(&mut session, "Connect To Coalition Coalition_000;", None)
        .unwrap();
    assert!(matches!(resp, Response::Connected { .. }));

    let resp = processor
        .submit(
            &mut session,
            "Display Instances of Class Coalition_000;",
            None,
        )
        .unwrap();
    match &resp {
        Response::Instances(names) => assert_eq!(names.len(), 3),
        other => panic!("{other:?}"),
    }

    let resp = processor
        .submit(
            &mut session,
            &format!(
                "Submit Native 'SELECT payload FROM records WHERE id = 1' To Instance {};",
                synth.member_of(0)
            ),
            None,
        )
        .unwrap();
    match &resp {
        Response::Table(rs) => {
            assert_eq!(rs.rows.len(), 1);
        }
        other => panic!("{other:?}"),
    }
    synth.fed.shutdown();
}

#[test]
fn dead_site_degrades_gracefully() {
    let synth = small();
    // Take one coalition-1 member's data source offline and unbind its
    // co-database from naming: discovery should still find topic_001 via
    // the remaining members, not error out.
    let victim = synth.coalitions[1].2[1].clone();
    synth
        .fed
        .naming_client()
        .unbind(&format!("codb/{victim}"))
        .unwrap();
    let engine = DiscoveryEngine::new(synth.fed.clone());
    let outcome = engine
        .find(synth.member_of(0), &SynthFederation::topic(1))
        .unwrap();
    assert!(outcome.found(), "{outcome:?}");
    synth.fed.shutdown();
}

#[test]
fn churn_join_leave_reflects_in_discovery() {
    let synth = small();
    let engine = DiscoveryEngine::new(synth.fed.clone());

    // A new-ish topic appears when a site joins a fresh coalition.
    let newcomer = synth.sites[0].clone();
    synth
        .fed
        .form_coalition("PopUp", None, "information about popup-topic", &[&newcomer])
        .unwrap();
    let outcome = engine.find(synth.member_of(1), "popup-topic").unwrap();
    assert!(outcome.found(), "{outcome:?}");

    // After dissolution at every site, it is gone.
    for site in synth.fed.site_names() {
        let handle = synth.fed.site(&site).unwrap();
        let _ = handle.codb.write().dissolve_coalition("PopUp");
    }
    let outcome = engine.find(synth.member_of(1), "popup-topic").unwrap();
    assert!(!outcome.found(), "{outcome:?}");
    synth.fed.shutdown();
}
