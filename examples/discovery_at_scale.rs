//! Discovery at scale: build synthetic federations of increasing size
//! and compare what a query costs under WebFINDIT's incremental
//! coalition/service-link routing versus flat broadcast versus a
//! centralized global index — the paper's scalability argument, made
//! measurable. (Experiment E1 runs the full sweep; this example shows a
//! single readable slice.)
//!
//! Run with: `cargo run -p webfindit-examples --example discovery_at_scale`

use webfindit::baselines::{CentralIndex, FlatBroadcast};
use webfindit::discovery::DiscoveryEngine;
use webfindit::synth::{build, SynthConfig, SynthFederation};
use webfindit_examples::banner;

fn main() {
    banner("Federation: 48 databases, 12 coalitions, ring of service links");
    let synth = build(&SynthConfig {
        databases: 48,
        coalition_size: 4,
        orbs: 4,
        extra_links: 4,
        ring_links: true,
        seed: 1999,
    })
    .expect("synthetic federation");
    println!(
        "{} sites across {} coalitions, {} links",
        synth.sites.len(),
        synth.coalition_count(),
        synth.links.len()
    );

    let engine = DiscoveryEngine::new(synth.fed.clone());
    let flat = FlatBroadcast::new(synth.fed.clone());
    let central = CentralIndex::build(synth.fed.clone()).expect("central index");

    banner("Cost per query (round-trips), by semantic distance from the asker");
    println!(
        "{:<28} {:>10} {:>10} {:>10}",
        "query", "WebFINDIT", "broadcast", "central"
    );
    let start = synth.member_of(0);
    for target in [0usize, 1, 3, 6, 11] {
        let topic = SynthFederation::topic(target);
        let wf = engine.find(start, &topic).expect("discovery");
        let bc = flat.find(&topic).expect("broadcast");
        let cx = central.find(&topic).expect("central");
        println!(
            "{:<28} {:>10} {:>10} {:>10}   (WebFINDIT found at level {:?})",
            format!("{topic} from coalition 0"),
            wf.stats.total_round_trips(),
            bc.stats.total_round_trips(),
            cx.stats.total_round_trips(),
            wf.stats.found_at_level,
        );
    }

    banner("The other side of the ledger: building the central index");
    println!(
        "central index registration cost: {} ORB calls (every advertisement funnels through one site)",
        central.registration_calls
    );
    println!("WebFINDIT needs no central registration at all — organization is incremental.");

    synth.fed.shutdown();
    println!("\ndone.");
}
