//! The object adapter: maps opaque object keys to active servants.
//!
//! This is the POA (Portable Object Adapter) role: the server-side
//! registry that turns the `object_key` octets arriving in a GIOP
//! Request into a servant invocation. Keys are opaque to clients; here
//! they are human-readable UTF-8 paths like `codb/RBH` or
//! `isi/Medicare`, which makes traces and experiments legible.

use crate::servant::{InvokeResult, Servant, ServantError};
use std::collections::BTreeMap;
use std::sync::Arc;
use webfindit_base::sync::RwLock;

/// A shared, thread-safe servant registry.
#[derive(Default)]
pub struct ObjectAdapter {
    servants: RwLock<BTreeMap<Vec<u8>, Arc<dyn Servant>>>,
}

impl ObjectAdapter {
    /// Create an empty adapter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Activate `servant` under `key`, replacing any previous activation.
    ///
    /// Returns true if a servant was replaced.
    pub fn activate(&self, key: impl Into<Vec<u8>>, servant: Arc<dyn Servant>) -> bool {
        self.servants.write().insert(key.into(), servant).is_some()
    }

    /// Deactivate the servant under `key`. Returns true if one existed.
    pub fn deactivate(&self, key: &[u8]) -> bool {
        self.servants.write().remove(key).is_some()
    }

    /// Whether a servant is active under `key`.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.servants.read().contains_key(key)
    }

    /// Number of active servants.
    pub fn len(&self) -> usize {
        self.servants.read().len()
    }

    /// True when no servants are active.
    pub fn is_empty(&self) -> bool {
        self.servants.read().is_empty()
    }

    /// All active keys, in sorted order (keys are UTF-8 paths by
    /// convention; invalid UTF-8 is rendered lossily).
    pub fn keys(&self) -> Vec<String> {
        self.servants
            .read()
            .keys()
            .map(|k| String::from_utf8_lossy(k).into_owned())
            .collect()
    }

    /// Look up the servant under `key`.
    pub fn lookup(&self, key: &[u8]) -> Option<Arc<dyn Servant>> {
        self.servants.read().get(key).cloned()
    }

    /// Dispatch an invocation to the servant under `key`.
    ///
    /// Missing keys become an `OBJECT_NOT_EXIST`-style error so the ORB
    /// can turn them into a system exception reply.
    pub fn dispatch(
        &self,
        key: &[u8],
        operation: &str,
        args: &[webfindit_wire::Value],
    ) -> InvokeResult {
        let servant = self.lookup(key).ok_or_else(|| {
            ServantError::Resource(format!(
                "OBJECT_NOT_EXIST: {}",
                String::from_utf8_lossy(key)
            ))
        })?;
        servant.invoke(operation, args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::servant::EchoServant;
    use webfindit_wire::Value;

    #[test]
    fn activate_lookup_dispatch() {
        let oa = ObjectAdapter::new();
        assert!(oa.is_empty());
        assert!(!oa.activate("echo/1", Arc::new(EchoServant)));
        assert!(oa.contains(b"echo/1"));
        assert_eq!(oa.len(), 1);
        let out = oa.dispatch(b"echo/1", "ping", &[]).unwrap();
        assert_eq!(out, Value::string("pong"));
    }

    #[test]
    fn replacing_activation_reports_it() {
        let oa = ObjectAdapter::new();
        oa.activate("k", Arc::new(EchoServant));
        assert!(oa.activate("k", Arc::new(EchoServant)));
        assert_eq!(oa.len(), 1);
    }

    #[test]
    fn deactivate_then_dispatch_fails() {
        let oa = ObjectAdapter::new();
        oa.activate("k", Arc::new(EchoServant));
        assert!(oa.deactivate(b"k"));
        assert!(!oa.deactivate(b"k"));
        let err = oa.dispatch(b"k", "ping", &[]).unwrap_err();
        assert!(err.description().contains("OBJECT_NOT_EXIST"));
    }

    #[test]
    fn keys_are_sorted() {
        let oa = ObjectAdapter::new();
        oa.activate("b", Arc::new(EchoServant));
        oa.activate("a", Arc::new(EchoServant));
        assert_eq!(oa.keys(), vec!["a".to_string(), "b".to_string()]);
    }
}
