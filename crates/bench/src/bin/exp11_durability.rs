//! E11 — the cost of durability and the speed of recovery.
//!
//! Three measurements over the relstore durable tier:
//!
//! * **WAL overhead** — per-transaction commit latency for single-row
//!   INSERT transactions on three backends: in-memory (no WAL at all),
//!   durable on [`SimVfs`] (WAL + checkpoints, RAM-backed), and durable
//!   on [`DiskVfs`] (real files, real fsync). The in-memory column is
//!   the floor; the gap to the durable columns is what the paper's
//!   "databases may come and go" availability story costs per commit.
//! * **Group commit** — the same row count committed in batches of 32
//!   per transaction: one log force amortized over 32 ops.
//! * **Recovery time** — after `n` commits beyond the last checkpoint,
//!   the instance is crashed (`simulate_crash`) and reopened; we time
//!   `reopen()` and report how many WAL records the REDO pass replayed.
//!   Run at three checkpoint cadences to show recovery time tracks the
//!   checkpoint interval, not database size.
//!
//! Results print as a table and land in `BENCH_durability.json`;
//! EXPERIMENTS.md records them as E11. `--quick` shrinks the row counts
//! for CI smoke runs.

use std::sync::Arc;
use std::time::Instant;
use webfindit_bench::{header, percentile};
use webfindit_relstore::file_mgr::{SimVfs, Vfs};
use webfindit_relstore::{Database, Dialect};

fn create_schema(db: &mut Database) {
    db.execute("CREATE TABLE accounts (id INT PRIMARY KEY, balance INT, owner TEXT)")
        .expect("create accounts");
}

/// Time `n` autocommit INSERTs; returns (p50_us, p95_us, total_s).
fn time_inserts(db: &mut Database, n: usize, base: i64) -> (f64, f64, f64) {
    let mut lat = Vec::with_capacity(n);
    let start = Instant::now();
    for i in 0..n as i64 {
        let t = Instant::now();
        db.execute(&format!(
            "INSERT INTO accounts VALUES ({}, {}, 'holder-{}')",
            base + i,
            i % 1000,
            i
        ))
        .expect("insert");
        lat.push(t.elapsed().as_secs_f64() * 1e6);
    }
    let total = start.elapsed().as_secs_f64();
    (percentile(&lat, 50.0), percentile(&lat, 95.0), total)
}

/// Time `n` INSERTs committed in explicit transactions of `batch` rows;
/// returns (p50_us per row, p95_us per row, total_s).
fn time_batched(db: &mut Database, n: usize, batch: usize, base: i64) -> (f64, f64, f64) {
    let mut lat = Vec::new();
    let start = Instant::now();
    let mut i = 0i64;
    while (i as usize) < n {
        let t = Instant::now();
        db.begin().expect("begin");
        for _ in 0..batch.min(n - i as usize) {
            db.execute(&format!(
                "INSERT INTO accounts VALUES ({}, {}, 'holder-{}')",
                base + i,
                i % 1000,
                i
            ))
            .expect("insert");
            i += 1;
        }
        db.commit().expect("commit");
        lat.push(t.elapsed().as_secs_f64() * 1e6 / batch as f64);
    }
    let total = start.elapsed().as_secs_f64();
    (percentile(&lat, 50.0), percentile(&lat, 95.0), total)
}

struct BackendResult {
    name: &'static str,
    auto_p50: f64,
    auto_p95: f64,
    auto_total: f64,
    batch_p50: f64,
    batch_p95: f64,
    batch_total: f64,
    wal_appends: u64,
    wal_flushes: u64,
}

fn run_backend(name: &'static str, mut db: Database, n: usize) -> BackendResult {
    create_schema(&mut db);
    let (auto_p50, auto_p95, auto_total) = time_inserts(&mut db, n, 0);
    let (batch_p50, batch_p95, batch_total) = time_batched(&mut db, n, 32, n as i64);
    let stats = db.storage_stats().unwrap_or_default();
    BackendResult {
        name,
        auto_p50,
        auto_p95,
        auto_total,
        batch_p50,
        batch_p95,
        batch_total,
        wal_appends: stats.wal_appends,
        wal_flushes: stats.wal_flushes,
    }
}

struct RecoveryResult {
    checkpoint_every: u32,
    commits_since_checkpoint: usize,
    recover_ms: f64,
    redo: u64,
    undo: u64,
}

/// Commit `n` rows at a given checkpoint cadence, leave one transaction
/// in flight, crash, and time recovery.
fn run_recovery(checkpoint_every: u32, n: usize) -> RecoveryResult {
    let vfs = SimVfs::new();
    let mut db = Database::open_vfs(
        Arc::clone(&vfs) as Arc<dyn Vfs>,
        "exp11",
        Dialect::Canonical,
    )
    .expect("open");
    db.set_checkpoint_every(checkpoint_every);
    create_schema(&mut db);
    for i in 0..n as i64 {
        db.execute(&format!("INSERT INTO accounts VALUES ({i}, {i}, 'r')"))
            .expect("insert");
    }
    let before = db.storage_stats().unwrap_or_default();
    // Crash with a transaction in flight. Under commit-time logging its
    // records never reach the WAL, so the UNDO column stays 0 unless a
    // crash tears the tail of a commit batch — losing in-flight work is
    // free by construction, not by replay effort.
    db.begin().expect("begin");
    db.execute("INSERT INTO accounts VALUES (-1, 0, 'loser')")
        .expect("insert loser");
    db.simulate_crash();
    let t = Instant::now();
    db.reopen().expect("recover");
    let recover_ms = t.elapsed().as_secs_f64() * 1e3;
    let after = db.storage_stats().unwrap_or_default();
    assert_eq!(
        db.execute("SELECT COUNT(*) c FROM accounts")
            .unwrap()
            .rows()
            .unwrap()
            .rows[0][0],
        webfindit_relstore::Datum::Int(n as i64),
        "recovery restores exactly the committed rows"
    );
    RecoveryResult {
        checkpoint_every,
        commits_since_checkpoint: n % checkpoint_every.max(1) as usize,
        recover_ms,
        redo: after.recovery_redo - before.recovery_redo,
        undo: after.recovery_undo - before.recovery_undo,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n = if quick { 500 } else { 10_000 };

    header("E11", "durability cost (WAL + fsync) and recovery time");
    println!("transactions per backend: {n}\n");

    // Backends. The disk backend lives under target/ so repeated runs
    // (and the repo) stay clean.
    let disk_root = std::path::Path::new("target/bench_exp11_disk");
    let _ = std::fs::remove_dir_all(disk_root);
    std::fs::create_dir_all(disk_root).expect("mkdir disk root");

    let results = vec![
        run_backend("in-memory", Database::new("exp11", Dialect::Canonical), n),
        run_backend(
            "durable/sim",
            Database::open_vfs(SimVfs::new() as Arc<dyn Vfs>, "exp11", Dialect::Canonical)
                .expect("open sim"),
            n,
        ),
        run_backend(
            "durable/disk",
            Database::open(disk_root.join("db"), "exp11", Dialect::Canonical).expect("open disk"),
            n,
        ),
    ];

    println!(
        "{:<13} | {:>10} {:>10} {:>9} | {:>10} {:>10} {:>9} | {:>11} {:>10}",
        "backend",
        "auto p50",
        "auto p95",
        "total s",
        "batch p50",
        "batch p95",
        "total s",
        "wal appends",
        "log syncs"
    );
    for r in &results {
        println!(
            "{:<13} | {:>9.1}u {:>9.1}u {:>9.2} | {:>9.1}u {:>9.1}u {:>9.2} | {:>11} {:>10}",
            r.name,
            r.auto_p50,
            r.auto_p95,
            r.auto_total,
            r.batch_p50,
            r.batch_p95,
            r.batch_total,
            r.wal_appends,
            r.wal_flushes
        );
    }

    // Recovery at three checkpoint cadences.
    let rec_n = if quick { 300 } else { 5_000 };
    let cadences: [u32; 3] = [32, 256, 1_000_000];
    let mut recoveries = Vec::new();
    println!("\nrecovery after {rec_n} commits (crash with one in-flight transaction):");
    println!(
        "{:<18} | {:>11} | {:>9} {:>6}",
        "checkpoint every", "recover ms", "redo", "undo"
    );
    for every in cadences {
        let r = run_recovery(every, rec_n);
        println!(
            "{:<18} | {:>11.2} | {:>9} {:>6}",
            r.checkpoint_every, r.recover_ms, r.redo, r.undo
        );
        recoveries.push(r);
    }

    let _ = std::fs::remove_dir_all(disk_root);

    let backends_json: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "    {{\"name\": \"{}\", \"autocommit_p50_us\": {:.1}, \
                 \"autocommit_p95_us\": {:.1}, \"autocommit_total_s\": {:.3}, \
                 \"batch32_p50_us\": {:.1}, \"batch32_p95_us\": {:.1}, \
                 \"batch32_total_s\": {:.3}, \"wal_appends\": {}, \"wal_flushes\": {}}}",
                r.name,
                r.auto_p50,
                r.auto_p95,
                r.auto_total,
                r.batch_p50,
                r.batch_p95,
                r.batch_total,
                r.wal_appends,
                r.wal_flushes
            )
        })
        .collect();
    let recoveries_json: Vec<String> = recoveries
        .iter()
        .map(|r| {
            format!(
                "    {{\"checkpoint_every\": {}, \"commits_since_checkpoint\": {}, \
                 \"recover_ms\": {:.2}, \"redo_records\": {}, \"undo_records\": {}}}",
                r.checkpoint_every, r.commits_since_checkpoint, r.recover_ms, r.redo, r.undo
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"E11\",\n  \"transactions\": {n},\n  \"quick\": {quick},\n  \
         \"backends\": [\n{}\n  ],\n  \"recovery_commits\": {rec_n},\n  \"recoveries\": [\n{}\n  ]\n}}\n",
        backends_json.join(",\n"),
        recoveries_json.join(",\n")
    );
    std::fs::write("BENCH_durability.json", &json).expect("write BENCH_durability.json");
    println!("\nwrote BENCH_durability.json");
}
