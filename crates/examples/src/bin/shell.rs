//! `webfindit-shell` — an interactive WebTassili shell over the
//! healthcare federation: the text-mode equivalent of the paper's
//! Java-applet browser.
//!
//! ```text
//! cargo run -p webfindit-examples --bin webfindit-shell
//! WebTassili> Find Coalitions With Information Medical Research;
//! WebTassili> Connect To Coalition Research;
//! WebTassili> Display Instances of Class Research;
//! WebTassili> Submit Native 'select * from medical_students' To Instance Royal Brisbane Hospital;
//! WebTassili> :help        (shell commands)
//! WebTassili> :quit
//! ```
//!
//! Reads statements from stdin, so it also works non-interactively:
//! `echo "Find Coalitions With Information Medical Research;" | cargo run …`.

use std::io::{self, BufRead, Write};
use webfindit::processor::Processor;
use webfindit::session::BrowserSession;
use webfindit::trace::Trace;
use webfindit_healthcare::build_healthcare;

const HELP: &str = "\
Shell commands:
  :help              this text
  :site <name>       switch the session's home site (default: QUT Research)
  :sites             list federation sites
  :trace on|off      show the layered execution trace per statement
  :transcript        print the session transcript so far
  :quit              exit

Anything else is parsed as a WebTassili statement, e.g.:
  Find Coalitions With Information Medical Research;
  Connect To Coalition Research;
  Display SubClasses of Class Research;
  Display Instances of Class Research;
  Display Document of Instance Royal Brisbane Hospital Of Class Research;
  Display Access Information of Instance Royal Brisbane Hospital;
  Invoke ResearchProjects.Funding((ResearchProjects.Title = 'AIDS and drugs')) On Instance Royal Brisbane Hospital;
  Submit Native 'select * from medical_students' To Instance Royal Brisbane Hospital;
  Create Coalition Telehealth Documentation 'remote care';
  Join Instance Medicare To Coalition Telehealth;
";

fn main() {
    eprintln!("building the healthcare federation (14 databases, 3 ORBs)…");
    let dep = build_healthcare(1999).expect("healthcare deployment");
    let processor = Processor::new(dep.fed.clone());
    let mut session = BrowserSession::new("QUT Research");
    let mut tracing = false;

    eprintln!(
        "ready. You are a user of: {}. Type :help for help.",
        session.site
    );
    let stdin = io::stdin();
    loop {
        print!("WebTassili> ");
        let _ = io::stdout().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(_) => break,
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(cmd) = line.strip_prefix(':') {
            let mut parts = cmd.splitn(2, ' ');
            match (parts.next().unwrap_or(""), parts.next()) {
                ("quit", _) | ("q", _) | ("exit", _) => break,
                ("help", _) => println!("{HELP}"),
                ("sites", _) => {
                    for s in dep.fed.site_names() {
                        println!("  {s}");
                    }
                }
                ("site", Some(name)) => {
                    let name = name.trim();
                    if dep.fed.site(name).is_ok() {
                        session = BrowserSession::new(name);
                        println!("now a user of {name}");
                    } else {
                        println!("unknown site: {name}");
                    }
                }
                ("trace", Some(v)) => {
                    tracing = v.trim() == "on";
                    println!("trace {}", if tracing { "on" } else { "off" });
                }
                ("transcript", _) => print!("{}", session.render_transcript()),
                other => println!("unknown shell command :{} — try :help", other.0),
            }
            continue;
        }
        let mut trace = Trace::new();
        let result = processor.submit(
            &mut session,
            line,
            if tracing { Some(&mut trace) } else { None },
        );
        match result {
            Ok(response) => {
                let rendered = response.render();
                println!("{rendered}");
                session.record(line, rendered);
            }
            Err(e) => println!("error: {e}"),
        }
        if tracing {
            print!("{}", trace.render());
        }
    }
    eprintln!("shutting down…");
    dep.fed.shutdown();
}
