//! Source scrubbing: blank comments, string/char literals, and lifetime
//! ticks while preserving byte offsets and newlines, and record every
//! string literal's span and contents so later passes (IDL-drift arm
//! extraction, `invoke("op")` argument reading) can recover literal text
//! at a known offset.

/// One string literal found while scrubbing. `start` is the byte offset
/// of the opening quote (or the `r` of a raw string); `end` is one past
/// the closing quote (including closing hashes for raw strings).
#[derive(Debug, Clone)]
pub struct StrLit {
    pub start: usize,
    pub end: usize,
    pub line: usize,
    pub value: String,
}

/// A scrubbed file: `text` is byte-for-byte the same length as the
/// input with comments/strings/chars blanked to spaces (newlines kept),
/// `strings` lists the blanked string literals in offset order.
#[derive(Debug)]
pub struct Scrubbed {
    pub text: String,
    pub strings: Vec<StrLit>,
}

pub fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// The identifier immediately before byte offset `end` in `text`
/// (used to name the lock site: `self.entries.lock()` → `entries`).
pub fn ident_before(text: &str, end: usize) -> Option<String> {
    let bytes = text.as_bytes();
    let mut j = end;
    while j > 0 && is_ident_byte(bytes[j - 1]) {
        j -= 1;
    }
    if j == end {
        return None;
    }
    Some(text[j..end].to_owned())
}

/// Blank out comments, string literals, char literals, and lifetime
/// ticks, preserving every newline (so byte offsets keep their line
/// numbers) and leaving all other characters in place.
pub fn scrub(src: &str) -> Scrubbed {
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut strings = Vec::new();
    let mut line = 1usize;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut depth = 1;
                out.extend_from_slice(b"  ");
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else {
                        if bytes[i] == b'\n' {
                            line += 1;
                            out.push(b'\n');
                        } else {
                            out.push(b' ');
                        }
                        i += 1;
                    }
                }
            }
            b'"' => {
                // Ordinary string literal (raw strings are handled below
                // via the `r` prefix case before we ever see the quote).
                let start = i;
                let start_line = line;
                out.push(b' ');
                i += 1;
                let lit_start = i;
                while i < bytes.len() && bytes[i] != b'"' {
                    if bytes[i] == b'\\' {
                        out.push(b' ');
                        i += 1;
                        if i < bytes.len() {
                            if bytes[i] == b'\n' {
                                line += 1;
                                out.push(b'\n');
                            } else {
                                out.push(b' ');
                            }
                            i += 1;
                        }
                    } else {
                        if bytes[i] == b'\n' {
                            line += 1;
                            out.push(b'\n');
                        } else {
                            out.push(b' ');
                        }
                        i += 1;
                    }
                }
                let value = String::from_utf8_lossy(&bytes[lit_start..i]).into_owned();
                out.push(b' ');
                i += 1;
                strings.push(StrLit {
                    start,
                    end: i,
                    line: start_line,
                    value,
                });
            }
            b'r' if matches!(bytes.get(i + 1), Some(b'"') | Some(b'#'))
                && (i == 0 || !is_ident_byte(bytes[i - 1])) =>
            {
                // Raw string r"…", r#"…"#, r##"…"##, …
                let start = i;
                let start_line = line;
                let mut hashes = 0;
                let mut j = i + 1;
                while bytes.get(j) == Some(&b'#') {
                    hashes += 1;
                    j += 1;
                }
                if bytes.get(j) == Some(&b'"') {
                    out.extend(std::iter::repeat_n(b' ', j - i + 1));
                    let lit_start = j + 1;
                    let mut k = j + 1;
                    let mut lit_end = k;
                    'raw: while k < bytes.len() {
                        if bytes[k] == b'"' {
                            let mut h = 0;
                            while bytes.get(k + 1 + h) == Some(&b'#') && h < hashes {
                                h += 1;
                            }
                            if h == hashes {
                                lit_end = k;
                                out.extend(std::iter::repeat_n(b' ', hashes + 1));
                                k += 1 + hashes;
                                break 'raw;
                            }
                        }
                        if bytes[k] == b'\n' {
                            line += 1;
                            out.push(b'\n');
                        } else {
                            out.push(b' ');
                        }
                        k += 1;
                    }
                    let value = String::from_utf8_lossy(&bytes[lit_start..lit_end]).into_owned();
                    strings.push(StrLit {
                        start,
                        end: k,
                        line: start_line,
                        value,
                    });
                    i = k;
                } else {
                    out.push(bytes[i]);
                    i += 1;
                }
            }
            b'\'' => {
                // Char literal or lifetime. `'a` (lifetime) has no
                // closing quote nearby; `'x'` / `'\n'` do.
                let close = if bytes.get(i + 1) == Some(&b'\\') {
                    bytes.get(i + 3) == Some(&b'\'') || bytes.get(i + 4) == Some(&b'\'')
                } else {
                    bytes.get(i + 2) == Some(&b'\'')
                };
                if close {
                    let end = if bytes.get(i + 1) == Some(&b'\\') {
                        if bytes.get(i + 3) == Some(&b'\'') {
                            i + 3
                        } else {
                            i + 4
                        }
                    } else {
                        i + 2
                    };
                    out.extend(std::iter::repeat_n(b' ', end - i + 1));
                    i = end + 1;
                } else {
                    out.push(b' '); // lifetime tick
                    i += 1;
                }
            }
            b'\n' => {
                line += 1;
                out.push(b'\n');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    Scrubbed {
        text: String::from_utf8_lossy(&out).into_owned(),
        strings,
    }
}

/// Re-scan a file recording which line ranges belong to `#[cfg(test)]`
/// modules, so findings inside them can be dropped.
pub fn test_line_ranges(scrubbed: &str) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut depth = 0usize;
    let mut line = 1usize;
    let mut pending = false;
    let mut open: Option<(usize, usize)> = None; // (depth, start_line)
    let mut window = String::new();
    for c in scrubbed.chars() {
        match c {
            '\n' => {
                line += 1;
                if window.contains("#[cfg(test") || window.contains("#[cfg(all(test") {
                    pending = true;
                } else if !window.trim().is_empty() && !window.trim_start().starts_with("#[") {
                    // A non-attribute line between the cfg and the mod
                    // cancels the pending flag unless it opens the mod.
                    if !window.contains("mod ") {
                        pending = false;
                    }
                }
                window.clear();
            }
            '{' => {
                if pending && window.contains("mod ") && open.is_none() {
                    open = Some((depth, line));
                    pending = false;
                }
                depth += 1;
                window.clear();
            }
            '}' => {
                depth = depth.saturating_sub(1);
                if let Some((d, start)) = open {
                    if depth == d {
                        ranges.push((start, line));
                        open = None;
                    }
                }
                window.clear();
            }
            _ => window.push(c),
        }
    }
    if let Some((_, start)) = open {
        ranges.push((start, line));
    }
    ranges
}

pub fn in_ranges(ranges: &[(usize, usize)], line: usize) -> bool {
    ranges.iter().any(|(s, e)| line >= *s && line <= *e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrub_blanks_comments_and_strings_preserving_lines() {
        let src = "let a = \"x.lock()\"; // .invoke(\nlet b = 1; /* .read() */ let c = 'x';";
        let s = scrub(src);
        assert!(!s.text.contains("x.lock()"));
        assert!(!s.text.contains(".invoke("));
        assert!(!s.text.contains(".read()"));
        assert_eq!(s.text.matches('\n').count(), src.matches('\n').count());
        assert!(s.text.contains("let b = 1;"));
        assert_eq!(s.text.len(), src.len());
    }

    #[test]
    fn scrub_records_string_literals_with_offsets() {
        let src = "fn f() { g(\"find_links\", 1); }\nconst X: &str = \"IDL:a/B:1.0\";";
        let s = scrub(src);
        assert_eq!(s.strings.len(), 2);
        assert_eq!(s.strings[0].value, "find_links");
        assert_eq!(s.strings[0].line, 1);
        assert_eq!(&src[s.strings[0].start..s.strings[0].end], "\"find_links\"");
        assert_eq!(s.strings[1].value, "IDL:a/B:1.0");
        assert_eq!(s.strings[1].line, 2);
    }

    #[test]
    fn scrub_handles_raw_strings_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let s = r#\"a.lock()\"#; }";
        let s = scrub(src);
        assert!(!s.text.contains("a.lock()"));
        assert!(s.text.contains("fn f"));
        assert_eq!(s.strings.len(), 1);
        assert_eq!(s.strings[0].value, "a.lock()");
    }

    #[test]
    fn test_ranges_cover_cfg_test_modules() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\n";
        let s = scrub(src);
        let ranges = test_line_ranges(&s.text);
        assert_eq!(ranges.len(), 1);
        assert!(in_ranges(&ranges, 4));
        assert!(!in_ranges(&ranges, 1));
    }
}
