//! Full-stack integration tests over the healthcare deployment:
//! cross-ORB IIOP traffic, heterogeneous data access through all three
//! bridge kinds, gateway compensation, multi-hop discovery, access
//! information, and failure behaviour.

use webfindit::discovery::{DiscoveryEngine, Lead};
use webfindit::processor::{Processor, Response};
use webfindit::session::BrowserSession;
use webfindit_healthcare::build_healthcare;
use webfindit_relstore::Datum;

#[test]
fn cross_orb_iiop_traffic_actually_flows() {
    let dep = build_healthcare(1999).unwrap();
    let processor = Processor::new(dep.fed.clone());
    let mut session = BrowserSession::new("QUT Research");

    let before: u64 = dep
        .fed
        .orb_names()
        .iter()
        .map(|n| dep.fed.orb(n).unwrap().metrics().snapshot().requests_served)
        .sum();

    // RBH lives on VisiBroker; QUT Research's queries go through the
    // bootstrap ORB's client side — every hop is GIOP.
    processor
        .submit(
            &mut session,
            "Submit Native 'SELECT COUNT(*) FROM patient' To Instance Royal Brisbane Hospital;",
            None,
        )
        .unwrap();

    let after: u64 = dep
        .fed
        .orb_names()
        .iter()
        .map(|n| dep.fed.orb(n).unwrap().metrics().snapshot().requests_served)
        .sum();
    assert!(after > before, "the data query must cross an ORB");
    dep.fed.shutdown();
}

#[test]
fn msql_aggregate_is_compensated_at_the_isi() {
    let dep = build_healthcare(1999).unwrap();
    let processor = Processor::new(dep.fed.clone());
    let mut session = BrowserSession::new("Centre Link");

    // Centre Link runs mSQL, which has no aggregates; the ISI's
    // compensating gateway must still answer.
    let resp = processor
        .submit(
            &mut session,
            "Submit Native 'SELECT benefit_type, COUNT(*) n FROM payments GROUP BY benefit_type ORDER BY n DESC' \
             To Instance Centre Link;",
            None,
        )
        .unwrap();
    match resp {
        Response::Table(rs) => {
            assert_eq!(rs.columns, vec!["benefit_type", "n"]);
            assert!(!rs.rows.is_empty());
            let total: i64 = rs
                .rows
                .iter()
                .map(|r| match &r[1] {
                    Datum::Int(n) => *n,
                    other => panic!("count not an int: {other:?}"),
                })
                .sum();
            assert_eq!(total, 30, "all seeded payments accounted for");
        }
        other => panic!("{other:?}"),
    }
    dep.fed.shutdown();
}

#[test]
fn all_three_bridge_kinds_serve_queries() {
    let dep = build_healthcare(1999).unwrap();
    let processor = Processor::new(dep.fed.clone());
    let mut session = BrowserSession::new("QUT Research");

    // JDBC (Oracle).
    let r = processor
        .submit(
            &mut session,
            "Submit Native 'SELECT location FROM beds WHERE bed_id = 1' To Instance Royal Brisbane Hospital;",
            None,
        )
        .unwrap();
    assert!(matches!(r, Response::Table(_)));

    // JNI (Ontos at Prince Charles Hospital).
    let r = processor
        .submit(
            &mut session,
            "Submit Native 'select name, cost from Treatment where cost > 500' To Instance Prince Charles Hospital;",
            None,
        )
        .unwrap();
    match r {
        Response::Objects { columns, rows } => {
            assert_eq!(columns, vec!["name", "cost"]);
            assert!(!rows.is_empty());
        }
        other => panic!("{other:?}"),
    }

    // Native C++ (ObjectStore at Ambulance).
    let r = processor
        .submit(
            &mut session,
            "Submit Native 'select suburb from Callout where priority = 1' To Instance Ambulance;",
            None,
        )
        .unwrap();
    assert!(matches!(r, Response::Objects { .. }));
    dep.fed.shutdown();
}

#[test]
fn medical_insurance_found_via_service_link_chain() {
    // The §2.3 scenario: a QUT researcher asks for Medical Insurance.
    // QUT's local coalition (Research) fails; RBH (a Research member)
    // is also in Medical, which has a service link to Medical
    // Insurance.
    let dep = build_healthcare(1999).unwrap();
    let engine = DiscoveryEngine::new(dep.fed.clone());
    let outcome = engine.find("QUT Research", "Medical Insurance").unwrap();
    assert!(outcome.found(), "{outcome:?}");
    let mentions_insurance = outcome.leads.iter().any(|l| match l {
        Lead::Coalition { name, .. } => name.contains("Insurance"),
        Lead::Link { link, .. } => {
            link.description.to_ascii_lowercase().contains("insurance")
                || link.link_name().contains("Insurance")
        }
    });
    assert!(mentions_insurance, "{:?}", outcome.leads);
    dep.fed.shutdown();
}

#[test]
fn discovery_is_cheaper_than_broadcast_on_the_healthcare_world() {
    let dep = build_healthcare(1999).unwrap();
    let engine = DiscoveryEngine::new(dep.fed.clone());
    let flat = webfindit::baselines::FlatBroadcast::new(dep.fed.clone());

    let wf = engine.find("QUT Research", "Medical Research").unwrap();
    let bc = flat.find("Medical Research").unwrap();
    assert!(wf.found() && bc.found());
    assert!(wf.stats.total_round_trips() < bc.stats.total_round_trips());
    assert_eq!(bc.stats.sites_visited, 14);
    dep.fed.shutdown();
}

#[test]
fn access_information_round_trips_over_iiop() {
    let dep = build_healthcare(1999).unwrap();
    let processor = Processor::new(dep.fed.clone());
    let mut session = BrowserSession::new("Medicare");
    let resp = processor
        .submit(
            &mut session,
            "Display Access Information of Instance MBF;",
            None,
        )
        .unwrap();
    match resp {
        Response::AccessInfo(d) => {
            assert_eq!(d.name, "MBF");
            assert!(d.wrapper.starts_with("jdbc:db2://"));
        }
        other => panic!("{other:?}"),
    }
    dep.fed.shutdown();
}

#[test]
fn querying_an_unknown_instance_fails_cleanly() {
    let dep = build_healthcare(1999).unwrap();
    let processor = Processor::new(dep.fed.clone());
    let mut session = BrowserSession::new("Medicare");
    let err = processor
        .submit(
            &mut session,
            "Submit Native 'SELECT 1 FROM x' To Instance Nonexistent Hospital;",
            None,
        )
        .unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("Nonexistent Hospital") || msg.contains("not bound"),
        "{msg}"
    );
    dep.fed.shutdown();
}

#[test]
fn bad_sql_returns_a_user_visible_error_not_a_crash() {
    let dep = build_healthcare(1999).unwrap();
    let processor = Processor::new(dep.fed.clone());
    let mut session = BrowserSession::new("QUT Research");
    let err = processor
        .submit(
            &mut session,
            "Submit Native 'SELEC broken FROM' To Instance Royal Brisbane Hospital;",
            None,
        )
        .unwrap_err();
    assert!(
        err.to_string().contains("exception") || err.to_string().contains("parse"),
        "{err}"
    );
    // The session is still usable afterwards.
    let ok = processor
        .submit(
            &mut session,
            "Submit Native 'SELECT COUNT(*) FROM doctors' To Instance Royal Brisbane Hospital;",
            None,
        )
        .unwrap();
    assert!(matches!(ok, Response::Table(_)));
    dep.fed.shutdown();
}

#[test]
fn two_deployments_coexist_in_one_process() {
    // ORB ports are ephemeral and domains are isolated, so two
    // federations must not interfere.
    let a = build_healthcare(1).unwrap();
    let b = build_healthcare(2).unwrap();
    let pa = Processor::new(a.fed.clone());
    let pb = Processor::new(b.fed.clone());
    let mut sa = BrowserSession::new("QUT Research");
    let mut sb = BrowserSession::new("QUT Research");
    let ra = pa
        .submit(
            &mut sa,
            "Find Coalitions With Information Medical Research;",
            None,
        )
        .unwrap();
    let rb = pb
        .submit(
            &mut sb,
            "Find Coalitions With Information Medical Research;",
            None,
        )
        .unwrap();
    assert!(matches!(ra, Response::Leads { .. }));
    assert!(matches!(rb, Response::Leads { .. }));
    a.fed.shutdown();
    b.fed.shutdown();
}

#[test]
fn data_source_outage_degrades_to_a_clean_error() {
    // DISCO-style unavailable-source handling: take a database engine
    // offline (the ISI and co-database stay up); data queries fail with
    // a resource error while metadata browsing keeps working.
    let dep = build_healthcare(1999).unwrap();
    let processor = Processor::new(dep.fed.clone());
    let mut session = BrowserSession::new("QUT Research");

    assert!(dep.fed.registry().unregister("oracle", "Medibank"));

    let err = processor
        .submit(
            &mut session,
            "Submit Native 'SELECT COUNT(*) FROM members' To Instance Medibank;",
            None,
        )
        .unwrap_err();
    assert!(err.to_string().contains("unknown data source"), "{err}");

    // Metadata about the dead source is still served by co-databases.
    let resp = processor
        .submit(
            &mut session,
            "Display Access Information of Instance Medibank;",
            None,
        )
        .unwrap();
    assert!(matches!(resp, Response::AccessInfo(_)));

    // Other sites are unaffected.
    let resp = processor
        .submit(
            &mut session,
            "Submit Native 'SELECT COUNT(*) FROM policies' To Instance MBF;",
            None,
        )
        .unwrap();
    assert!(matches!(resp, Response::Table(_)));
    dep.fed.shutdown();
}

#[test]
fn find_databases_statement_lists_members() {
    let dep = build_healthcare(1999).unwrap();
    let processor = Processor::new(dep.fed.clone());
    let mut session = BrowserSession::new("QUT Research");
    let resp = processor
        .submit(
            &mut session,
            "Find Databases With Information Medical Research;",
            None,
        )
        .unwrap();
    match resp {
        Response::Databases(names) => {
            assert!(
                names.contains(&"Royal Brisbane Hospital".to_string()),
                "{names:?}"
            );
            assert!(names.contains(&"QUT Research".to_string()), "{names:?}");
        }
        other => panic!("{other:?}"),
    }
    dep.fed.shutdown();
}

#[test]
fn subclass_refinement_from_the_connected_coalition() {
    let dep = build_healthcare(1999).unwrap();
    let processor = Processor::new(dep.fed.clone());
    let mut session = BrowserSession::new("QUT Research");
    processor
        .submit(&mut session, "Connect To Coalition Research;", None)
        .unwrap();
    let resp = processor
        .submit(&mut session, "Display SubClasses of Class Research;", None)
        .unwrap();
    assert_eq!(resp, Response::Subclasses(vec!["Cancer Research".into()]));
    // Instances of the subclass.
    let resp = processor
        .submit(
            &mut session,
            "Display Instances of Class Cancer Research;",
            None,
        )
        .unwrap();
    assert_eq!(
        resp,
        Response::Instances(vec!["Queensland Cancer Fund".into()])
    );
    dep.fed.shutdown();
}

#[test]
fn concurrent_sessions_share_the_federation_safely() {
    use std::sync::Arc as StdArc;
    let dep = build_healthcare(1999).unwrap();
    let fed = dep.fed.clone();
    let processor = StdArc::new(Processor::new(fed.clone()));

    let mut handles = Vec::new();
    for (i, home) in ["QUT Research", "Medicare", "Centre Link", "MBF"]
        .iter()
        .enumerate()
    {
        let processor = StdArc::clone(&processor);
        let home = home.to_string();
        handles.push(std::thread::spawn(move || {
            let mut session = BrowserSession::new(home);
            for round in 0..10 {
                // Mix metadata and data traffic.
                let resp = processor
                    .submit(
                        &mut session,
                        "Find Coalitions With Information Medical Research;",
                        None,
                    )
                    .unwrap();
                assert!(matches!(resp, Response::Leads { .. }));
                let resp = processor
                    .submit(
                        &mut session,
                        "Submit Native 'SELECT name FROM medical_students WHERE year = 3' \
                         To Instance Royal Brisbane Hospital;",
                        None,
                    )
                    .unwrap();
                match resp {
                    Response::Table(rs) => {
                        // Deterministic data: every thread and round
                        // sees identical rows.
                        assert!(rs.rows.len() < 21, "thread {i} round {round}");
                    }
                    other => panic!("{other:?}"),
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    dep.fed.shutdown();
}

#[test]
fn explain_travels_through_the_wrapper_too() {
    // EXPLAIN is an engine feature, but it is reachable through the
    // full WebFINDIT stack like any native statement — useful when
    // debugging a wrapper's translated queries.
    let dep = build_healthcare(1999).unwrap();
    let processor = Processor::new(dep.fed.clone());
    let mut session = BrowserSession::new("QUT Research");
    let resp = processor
        .submit(
            &mut session,
            "Submit Native 'EXPLAIN SELECT a.funding FROM researchprojects a \
             WHERE a.title = ''AIDS and drugs''' To Instance Royal Brisbane Hospital;",
            None,
        )
        .unwrap();
    match resp {
        Response::Table(rs) => {
            assert_eq!(rs.columns, vec!["plan"]);
            let text = rs.to_text_table();
            // The deployment creates a secondary index on title, so the
            // wrapper-visible plan shows the index path.
            assert!(text.contains("index lookup"), "{text}");
        }
        other => panic!("{other:?}"),
    }
    dep.fed.shutdown();
}

#[test]
fn parallel_discovery_matches_serial_across_the_topology() {
    // The determinism contract on the real 14-site deployment: a
    // parallel wave fanout must produce byte-identical leads and
    // degraded sets to a serial traversal, cold cache and warm.
    let dep = build_healthcare(1999).unwrap();
    let mut serial = DiscoveryEngine::new(dep.fed.clone());
    serial.max_workers = 1;
    let mut parallel = DiscoveryEngine::new(dep.fed.clone());
    parallel.max_workers = 8;

    for topic in [
        "Medical Research",
        "Medical Insurance",
        "cancer Research funding",
        "taxation records",
        "emergency transport",
        "subject nobody advertises",
    ] {
        let s = serial.find("QUT Research", topic).unwrap();
        let cold = parallel.find("QUT Research", topic).unwrap();
        let warm = parallel.find("QUT Research", topic).unwrap();
        for p in [&cold, &warm] {
            assert_eq!(s.leads, p.leads, "{topic}");
            assert_eq!(s.degraded, p.degraded, "{topic}");
            assert_eq!(s.stats.sites_visited, p.stats.sites_visited, "{topic}");
        }
        assert!(
            warm.stats.total_round_trips() <= cold.stats.total_round_trips(),
            "{topic}: warm cache must not cost extra round-trips \
             (cold {:?}, warm {:?})",
            cold.stats,
            warm.stats
        );
    }

    // The fanout and cache counters behind E8 are live on the client ORB.
    let m = dep.fed.client_orb().metrics().snapshot();
    assert!(m.fanout_waves > 0, "remote waves were dispatched");
    assert!(m.fanout_peak_width > 1, "waves actually fanned out");
    assert!(m.codb_cache_hits > 0, "warm runs hit the metadata cache");
    assert!(m.ior_cache_hits > 0, "repeat resolutions hit the IOR cache");
    dep.fed.shutdown();
}

#[test]
fn discovery_trace_reports_fanout_and_cache_counters() {
    let dep = build_healthcare(1999).unwrap();
    let processor = Processor::new(dep.fed.clone());
    let mut session = BrowserSession::new("QUT Research");
    let mut trace = webfindit::Trace::new();
    let resp = processor
        .submit(
            &mut session,
            "Find Coalitions With Information Medical Insurance;",
            Some(&mut trace),
        )
        .unwrap();
    assert!(matches!(resp, Response::Leads { .. }));
    let rendered = trace.render();
    assert!(rendered.contains("waves"), "{rendered}");
    assert!(rendered.contains("peak width"), "{rendered}");
    assert!(rendered.contains("ior cache"), "{rendered}");
    assert!(rendered.contains("codb cache"), "{rendered}");
    dep.fed.shutdown();
}
