//! The database engine: catalog, statement execution, transactions.
//!
//! A [`Database`] is one simulated vendor instance (the paper's "Oracle
//! database at RBH", "mSQL database at CentreLink", …). It owns its
//! tables, enforces its [`Dialect`]'s feature set, and executes parsed
//! statements with:
//!
//! * **statement atomicity** — a multi-row `INSERT` that fails half-way
//!   undoes the rows it already wrote;
//! * **explicit transactions** — `BEGIN`/`COMMIT`/`ROLLBACK` backed by an
//!   undo log of inverse slot operations.
//!
//! A database is either purely in-memory ([`Database::new`], the fast
//! path — byte-identical behavior to before the durable tier existed)
//! or durable ([`Database::open`]/[`Database::open_vfs`]/
//! [`Database::make_durable`]): every mutation then also emits
//! ARIES-style WAL records (redo + undo images) before the statement
//! is acknowledged, the log is forced at commit, checkpoints write
//! double-buffered snapshots through the buffer pool, and open-time
//! recovery replays the log to the last committed state. A crash —
//! real or injected via [`Database::arm_crash_point`] — leaves the
//! instance dead ([`RelError::Unavailable`]) until
//! [`Database::reopen`] recovers it.

use crate::dialect::Dialect;
use crate::exec::{execute_select_with_metrics, ExecMetrics, ResultSet};
use crate::expr::{eval, EvalContext, Expr};
use crate::file_mgr::{DiskVfs, Vfs};
use crate::recovery::{self, Meta};
use crate::sql::ast::Statement;
use crate::sql::parse_statement;
use crate::storage::Table;
use crate::tx::{TxId, TxManager};
use crate::types::{Datum, Row};
use crate::wal::{CrashInjector, CrashPoint, LogMgr, TableImage, WalRecord};
use crate::{RelError, RelResult};
use std::collections::HashMap;
use std::sync::Arc;

/// Result of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecOutcome {
    /// A query produced rows.
    Rows(ResultSet),
    /// DML affected this many rows.
    Count(usize),
    /// DDL or transaction control completed.
    Done,
}

impl ExecOutcome {
    /// The result set, if this outcome carries one.
    pub fn rows(&self) -> Option<&ResultSet> {
        match self {
            ExecOutcome::Rows(rs) => Some(rs),
            _ => None,
        }
    }

    /// The affected-row count, if this outcome carries one.
    pub fn count(&self) -> Option<usize> {
        match self {
            ExecOutcome::Count(n) => Some(*n),
            _ => None,
        }
    }
}

/// Inverse operations recorded while a transaction is open.
#[derive(Debug)]
enum UndoOp {
    /// Undo an insert: delete the slot.
    Insert { table: String, slot: usize },
    /// Undo a delete: restore the row into its slot.
    Delete {
        table: String,
        slot: usize,
        row: Row,
    },
    /// Undo an update: put the old row back.
    Update {
        table: String,
        slot: usize,
        old: Row,
    },
    /// Undo CREATE TABLE: drop it.
    CreateTable { name: String },
    /// Undo CREATE INDEX: drop it.
    CreateIndex { table: String, name: String },
    /// Undo DROP TABLE: put the whole table back.
    DropTable { name: String, table: Box<Table> },
}

/// A successful statement's effects, captured (durable databases only)
/// for WAL emission after the in-memory mutation lands.
#[derive(Debug)]
enum WalChange {
    Insert {
        table: String,
        slot: usize,
        row: Row,
    },
    Delete {
        table: String,
        slot: usize,
        row: Row,
    },
    Update {
        table: String,
        slot: usize,
        old: Row,
        new: Row,
    },
    CreateTable {
        schema: crate::schema::TableSchema,
    },
    DropTable {
        image: TableImage,
    },
    CreateIndex {
        table: String,
        name: String,
        column: usize,
    },
}

impl WalChange {
    fn table_name(&self) -> &str {
        match self {
            WalChange::Insert { table, .. }
            | WalChange::Delete { table, .. }
            | WalChange::Update { table, .. }
            | WalChange::CreateIndex { table, .. } => table,
            WalChange::CreateTable { schema } => &schema.name,
            WalChange::DropTable { image } => &image.schema.name,
        }
    }

    fn into_record(self, tx: TxId) -> WalRecord {
        match self {
            WalChange::Insert { table, slot, row } => WalRecord::Insert {
                tx,
                table,
                slot: slot as u64,
                row,
            },
            WalChange::Delete { table, slot, row } => WalRecord::Delete {
                tx,
                table,
                slot: slot as u64,
                row,
            },
            WalChange::Update {
                table,
                slot,
                old,
                new,
            } => WalRecord::Update {
                tx,
                table,
                slot: slot as u64,
                old,
                new,
            },
            WalChange::CreateTable { schema } => WalRecord::CreateTable { tx, schema },
            WalChange::DropTable { image } => WalRecord::DropTable { tx, table: image },
            WalChange::CreateIndex {
                table,
                name,
                column,
            } => WalRecord::CreateIndex {
                tx,
                table,
                name,
                column: column as u32,
            },
        }
    }
}

/// Cumulative durable-tier counters (zeroed for in-memory databases).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StorageStats {
    /// WAL records appended.
    pub wal_appends: u64,
    /// Bytes appended to the WAL (frame headers included).
    pub wal_bytes: u64,
    /// Log forces (fsync at commit / checkpoint barriers).
    pub wal_flushes: u64,
    /// Snapshot pages written back through the buffer pool.
    pub pages_flushed: u64,
    /// Checkpoints taken (snapshot + meta flip + WAL compaction).
    pub checkpoints: u64,
    /// Transactions committed durably.
    pub commits: u64,
    /// Transactions rolled back (live `ROLLBACK`, not recovery).
    pub rollbacks: u64,
    /// Op records re-applied by recovery REDO passes.
    pub recovery_redo: u64,
    /// Op records reversed by recovery UNDO passes.
    pub recovery_undo: u64,
    /// Torn WAL tails truncated during recovery.
    pub torn_tail_truncations: u64,
    /// Recoveries that fell back past an unreadable snapshot.
    pub snapshot_fallbacks: u64,
}

/// Buffer-pool frames used for snapshot reads and writes.
const SNAP_POOL_FRAMES: usize = 64;

/// Commits between automatic checkpoints.
const DEFAULT_CHECKPOINT_EVERY: u32 = 32;

/// The durable tier attached to a [`Database`] opened with
/// [`Database::open`]/[`Database::open_vfs`]/[`Database::make_durable`].
#[derive(Debug)]
struct Storage {
    vfs: Arc<dyn Vfs>,
    log: LogMgr,
    txm: TxManager,
    current_tx: Option<TxId>,
    /// WAL records of the open transaction, buffered until COMMIT.
    /// The engine is strictly no-steal (uncommitted data never reaches
    /// a page), so nothing before the commit point needs to be on
    /// disk; deferring the append means rolled-back transactions never
    /// touch the log at all. This is what makes recovery's physical
    /// slot-level UNDO sound: the only loser records that can exist
    /// are a torn tail batch, which no committed record ever follows.
    txn_buf: Vec<WalRecord>,
    injector: CrashInjector,
    /// Set when a crash (injected or simulated) killed this instance;
    /// every call fails with [`RelError::Unavailable`] until reopen.
    dead: bool,
    epoch: u64,
    active_gen: u8,
    commits_since_ckpt: u32,
    checkpoint_every: u32,
    stats: StorageStats,
}

impl Storage {
    fn new(vfs: Arc<dyn Vfs>, wal_tail: u64, next_tx: u64, epoch: u64, active_gen: u8) -> Storage {
        let log = LogMgr::new(Arc::clone(&vfs), recovery::WAL_FILE, wal_tail);
        Storage {
            vfs,
            log,
            txm: TxManager::new(next_tx),
            current_tx: None,
            txn_buf: Vec::new(),
            injector: CrashInjector::default(),
            dead: false,
            epoch,
            active_gen,
            commits_since_ckpt: 0,
            checkpoint_every: DEFAULT_CHECKPOINT_EVERY,
            stats: StorageStats::default(),
        }
    }

    fn crash(&mut self, point: CrashPoint) -> RelError {
        self.dead = true;
        self.current_tx = None;
        RelError::Unavailable(format!("crash injected at {point}"))
    }

    fn append(&mut self, rec: &WalRecord) -> RelResult<()> {
        let before = self.log.tail();
        self.log.append(rec)?;
        self.stats.wal_appends += 1;
        self.stats.wal_bytes += self.log.tail() - before;
        Ok(())
    }

    /// Append a non-commit record, honoring the after-WAL-append
    /// crash point.
    fn append_op(&mut self, rec: WalRecord) -> RelResult<()> {
        self.append(&rec)?;
        if self.injector.hit(CrashPoint::AfterWalAppend) {
            return Err(self.crash(CrashPoint::AfterWalAppend));
        }
        Ok(())
    }

    fn force_log(&mut self) -> RelResult<()> {
        self.log.flush()?;
        self.stats.wal_flushes += 1;
        Ok(())
    }

    fn begin(&mut self) -> RelResult<TxId> {
        let tx = self.txm.begin();
        self.current_tx = Some(tx);
        self.txn_buf.clear();
        Ok(tx)
    }

    /// Write the transaction's buffered records — `Begin`, the ops,
    /// then `Commit` — and force the log. The ack invariant the crash
    /// harness relies on: the commit record only becomes durable on
    /// paths that go on to acknowledge the COMMIT, so "caller saw Ok"
    /// ⟺ "recovery replays the transaction". `AfterWalAppend` can
    /// fire on the Begin/op appends (leaving a loser tail batch for
    /// recovery's UNDO pass), `PreCommitRecord` fires after the ops
    /// but *before* the commit append, and no crash point sits
    /// between the commit append and the fsync.
    fn commit(&mut self, tx: TxId) -> RelResult<()> {
        let ops = std::mem::take(&mut self.txn_buf);
        self.append_op(WalRecord::Begin { tx })?;
        for rec in ops {
            self.append_op(rec)?;
        }
        if self.injector.hit(CrashPoint::PreCommitRecord) {
            return Err(self.crash(CrashPoint::PreCommitRecord));
        }
        self.append(&WalRecord::Commit { tx })?;
        self.force_log()?;
        self.txm.release(tx);
        self.current_tx = None;
        self.stats.commits += 1;
        self.commits_since_ckpt += 1;
        Ok(())
    }

    /// Roll back the open transaction. Its buffered records are simply
    /// discarded — nothing was ever appended, so the log needs no
    /// abort record and recovery never sees the transaction.
    fn rollback(&mut self, tx: TxId) -> RelResult<()> {
        self.txn_buf.clear();
        self.txm.release(tx);
        self.current_tx = None;
        self.stats.rollbacks += 1;
        Ok(())
    }

    /// Buffer one statement's changes: reuse the open transaction or
    /// wrap the statement in its own begin/commit.
    fn apply(&mut self, changes: Vec<WalChange>) -> RelResult<()> {
        let auto = self.current_tx.is_none();
        let tx = match self.current_tx {
            Some(tx) => tx,
            None => self.begin()?,
        };
        for ch in &changes {
            self.txm.lock(tx, ch.table_name())?;
        }
        for ch in changes {
            self.txn_buf.push(ch.into_record(tx));
        }
        if auto {
            self.commit(tx)?;
        }
        Ok(())
    }

    /// Write a checkpoint: snapshot every table into the inactive
    /// generation through a buffer pool (the mid-page-flush crash
    /// point sits between page write-backs), flip the meta slot, then
    /// compact the WAL. A crash anywhere in between recovers from the
    /// previous snapshot + log — the active generation is never
    /// written in place.
    fn checkpoint(&mut self, tables: &HashMap<String, Table>) -> RelResult<()> {
        debug_assert!(self.current_tx.is_none(), "checkpoint requires quiescence");
        let target = 1 - (self.active_gen & 1);
        let stream = recovery::encode_snapshot(tables);
        let mgr =
            crate::file_mgr::PageFileMgr::new(Arc::clone(&self.vfs), recovery::snap_file(target));
        let mut pool = crate::buffer::BufferPool::new(mgr, SNAP_POOL_FRAMES);
        let injector = &mut self.injector;
        let mut crashed = false;
        let res = recovery::write_snapshot(&mut pool, &stream, || {
            if injector.hit(CrashPoint::MidPageFlush) {
                crashed = true;
                return Err(RelError::Unavailable(
                    "crash injected at mid-page-flush".into(),
                ));
            }
            Ok(())
        });
        self.stats.pages_flushed += pool.stats().pages_flushed;
        if crashed {
            return Err(self.crash(CrashPoint::MidPageFlush));
        }
        res?;
        self.epoch += 1;
        recovery::write_meta(
            &self.vfs,
            &Meta {
                epoch: self.epoch,
                active_gen: target,
                watermark: self.log.tail(),
                next_tx: self.txm.next_tx(),
            },
        )?;
        self.active_gen = target;
        // Compact: the snapshot now reflects the whole log. A crash
        // between the reset and the second meta write is safe — the
        // stale watermark merely points past an empty log.
        self.log.reset()?;
        self.epoch += 1;
        recovery::write_meta(
            &self.vfs,
            &Meta {
                epoch: self.epoch,
                active_gen: target,
                watermark: 0,
                next_tx: self.txm.next_tx(),
            },
        )?;
        self.stats.checkpoints += 1;
        self.commits_since_ckpt = 0;
        Ok(())
    }
}

/// Cumulative execution statistics (read by the experiments).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DbStats {
    /// Statements successfully executed.
    pub statements: u64,
    /// Rows returned by queries.
    pub rows_returned: u64,
    /// Rows written (inserted + updated + deleted).
    pub rows_written: u64,
    /// Rows read from table heaps by query pipelines.
    pub rows_scanned: u64,
    /// Index entries hit by point lookups, range scans, and probes.
    pub index_hits: u64,
    /// Rows materialized by blocking operators (sort, aggregation).
    pub rows_spilled: u64,
}

/// One simulated relational database instance.
#[derive(Debug)]
pub struct Database {
    name: String,
    dialect: Dialect,
    tables: HashMap<String, Table>,
    txn: Option<Vec<UndoOp>>,
    stats: DbStats,
    last_exec: Option<ExecMetrics>,
    /// `None` for the in-memory fast path; `Some` once the durable
    /// tier is attached.
    storage: Option<Storage>,
}

/// Evaluation context rejecting all column references (INSERT values).
struct ConstOnly;

impl EvalContext for ConstOnly {
    fn resolve_column(&self, _t: Option<&str>, name: &str) -> RelResult<Datum> {
        Err(RelError::Unsupported(format!(
            "column reference {name} in a constant context"
        )))
    }
}

impl Database {
    /// Create an empty in-memory database named `name` speaking
    /// `dialect` (the fast path — no durability).
    pub fn new(name: impl Into<String>, dialect: Dialect) -> Database {
        Database {
            name: name.into(),
            dialect,
            tables: HashMap::new(),
            txn: None,
            stats: DbStats::default(),
            last_exec: None,
            storage: None,
        }
    }

    /// Open (or create) a durable database rooted at directory `path`,
    /// recovering to the last committed state.
    pub fn open(
        path: impl Into<std::path::PathBuf>,
        name: impl Into<String>,
        dialect: Dialect,
    ) -> RelResult<Database> {
        let vfs = Arc::new(DiskVfs::new(path)?) as Arc<dyn Vfs>;
        Database::open_vfs(vfs, name, dialect)
    }

    /// Open (or create) a durable database on an arbitrary [`Vfs`]
    /// (the crash harness uses [`crate::file_mgr::SimVfs`] here),
    /// recovering to the last committed state.
    pub fn open_vfs(
        vfs: Arc<dyn Vfs>,
        name: impl Into<String>,
        dialect: Dialect,
    ) -> RelResult<Database> {
        let r = recovery::recover(&vfs, SNAP_POOL_FRAMES)?;
        let mut st = Storage::new(vfs, r.wal_tail, r.next_tx, r.epoch, r.active_gen);
        st.stats.recovery_redo = r.stats.redo;
        st.stats.recovery_undo = r.stats.undo;
        st.stats.torn_tail_truncations = r.stats.torn_tail_truncations;
        st.stats.snapshot_fallbacks = r.stats.snapshot_fallbacks;
        let mut db = Database {
            name: name.into(),
            dialect,
            tables: r.tables,
            txn: None,
            stats: DbStats::default(),
            last_exec: None,
            storage: Some(st),
        };
        // Compact on open so recovery time stays bounded by one
        // checkpoint interval, not the database's whole history.
        db.checkpoint()?;
        Ok(db)
    }

    /// Attach the durable tier to a database built in memory (e.g. by
    /// the healthcare data generators), writing its current state as
    /// the initial checkpoint. The target `vfs` must be fresh.
    pub fn make_durable(&mut self, vfs: Arc<dyn Vfs>) -> RelResult<()> {
        if self.txn.is_some() {
            return Err(RelError::TransactionState(
                "cannot attach durable storage inside a transaction".into(),
            ));
        }
        if self.storage.is_some() {
            return Err(RelError::Storage("database is already durable".into()));
        }
        self.storage = Some(Storage::new(vfs, 0, 1, 0, 1));
        self.checkpoint()
    }

    /// True once the durable tier is attached.
    pub fn is_durable(&self) -> bool {
        self.storage.is_some()
    }

    /// True when a crash (injected or simulated) killed this instance;
    /// every operation fails until [`Database::reopen`].
    pub fn is_crashed(&self) -> bool {
        self.storage.as_ref().is_some_and(|st| st.dead)
    }

    /// The durable tier's Vfs, if attached.
    pub fn vfs(&self) -> Option<Arc<dyn Vfs>> {
        self.storage.as_ref().map(|st| Arc::clone(&st.vfs))
    }

    /// Durable-tier counters (`None` for in-memory databases).
    pub fn storage_stats(&self) -> Option<StorageStats> {
        self.storage.as_ref().map(|st| st.stats)
    }

    /// Arm a one-shot crash: the `n`-th future occurrence (1-based) of
    /// `point` kills the storage stack mid-operation.
    pub fn arm_crash_point(&mut self, point: CrashPoint, n: u64) {
        if let Some(st) = &mut self.storage {
            st.injector.arm(point, n);
        }
    }

    /// Disarm any pending crash point.
    pub fn disarm_crash_points(&mut self) {
        if let Some(st) = &mut self.storage {
            st.injector.disarm();
        }
    }

    /// Override the automatic checkpoint cadence (commits between
    /// checkpoints); tests use small values to exercise the snapshot
    /// path, benches large ones to isolate WAL cost.
    pub fn set_checkpoint_every(&mut self, every: u32) {
        if let Some(st) = &mut self.storage {
            st.checkpoint_every = every.max(1);
        }
    }

    /// Kill a durable instance as a crash would: volatile state is
    /// gone, every call errs until [`Database::reopen`]. Returns false
    /// (and does nothing) for in-memory databases — they have no disk
    /// image to come back from.
    pub fn simulate_crash(&mut self) -> bool {
        let Some(st) = &mut self.storage else {
            return false;
        };
        st.dead = true;
        st.current_tx = None;
        self.tables = HashMap::new();
        self.txn = None;
        true
    }

    /// Recover a durable instance from its Vfs (after a crash, or to
    /// prove recovery idempotent on a healthy instance). Cumulative
    /// storage counters carry over; recovery counters accumulate.
    pub fn reopen(&mut self) -> RelResult<()> {
        let old = self
            .storage
            .take()
            .ok_or_else(|| RelError::Storage("reopen on an in-memory database".into()))?;
        let r = recovery::recover(&old.vfs, SNAP_POOL_FRAMES)?;
        let mut st = Storage::new(
            Arc::clone(&old.vfs),
            r.wal_tail,
            r.next_tx,
            r.epoch,
            r.active_gen,
        );
        st.checkpoint_every = old.checkpoint_every;
        st.stats = old.stats;
        st.stats.recovery_redo += r.stats.redo;
        st.stats.recovery_undo += r.stats.undo;
        st.stats.torn_tail_truncations += r.stats.torn_tail_truncations;
        st.stats.snapshot_fallbacks += r.stats.snapshot_fallbacks;
        self.tables = r.tables;
        self.txn = None;
        self.storage = Some(st);
        self.checkpoint()
    }

    /// Write a checkpoint now (snapshot + meta flip + WAL compaction).
    /// No-op for in-memory databases; an error inside a transaction.
    pub fn checkpoint(&mut self) -> RelResult<()> {
        if self.txn.is_some() {
            return Err(RelError::TransactionState(
                "cannot checkpoint inside a transaction".into(),
            ));
        }
        let Some(st) = self.storage.as_mut() else {
            return Ok(());
        };
        if st.dead {
            return Err(RelError::Unavailable("database crashed; reopen it".into()));
        }
        let res = st.checkpoint(&self.tables);
        if self.storage.as_ref().is_some_and(|s| s.dead) {
            self.tables = HashMap::new();
            self.txn = None;
        }
        res
    }

    /// The instance name (e.g. `"Royal Brisbane Hospital"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The vendor dialect this instance enforces.
    pub fn dialect(&self) -> Dialect {
        self.dialect
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> DbStats {
        self.stats
    }

    /// Execution metrics from the most recent SELECT, if any.
    pub fn last_exec_metrics(&self) -> Option<&ExecMetrics> {
        self.last_exec.as_ref()
    }

    /// Borrow the whole catalog (read-only), e.g. for planning or for
    /// running the naive reference executor against live tables.
    pub fn tables(&self) -> &HashMap<String, Table> {
        &self.tables
    }

    /// Run a SELECT through the retained naive reference executor.
    ///
    /// Differential tests and the E10 benchmark use this as the
    /// semantic baseline for the planned pipeline.
    pub fn query_naive(&self, sql: &str) -> RelResult<ResultSet> {
        match parse_statement(sql)? {
            Statement::Select(s) => crate::exec::execute_select_naive(&s, &self.tables),
            other => Err(RelError::Unsupported(format!(
                "query_naive only runs SELECT, got {other:?}"
            ))),
        }
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.keys().cloned().collect();
        names.sort();
        names
    }

    /// Borrow a table's metadata.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(&name.to_ascii_lowercase())
    }

    /// True while a transaction is open.
    pub fn in_transaction(&self) -> bool {
        self.txn.is_some()
    }

    /// Bulk-create a table and load rows into it, bypassing SQL parsing.
    ///
    /// Used by gateway compensation (staging remote tables locally) and
    /// by the healthcare data generators. Rows are validated against the
    /// schema exactly as `INSERT` would.
    pub fn import_table(
        &mut self,
        schema: crate::schema::TableSchema,
        rows: Vec<Row>,
    ) -> RelResult<usize> {
        if self.tables.contains_key(&schema.name) {
            return Err(RelError::TableExists(schema.name));
        }
        let mut table = Table::new(schema.clone());
        let mut n = 0;
        for row in rows {
            table.insert(row)?;
            n += 1;
        }
        let mut wal: Vec<WalChange> = Vec::new();
        if self.storage.is_some() {
            wal.push(WalChange::CreateTable {
                schema: schema.clone(),
            });
            for (slot, row) in table.scan() {
                wal.push(WalChange::Insert {
                    table: schema.name.clone(),
                    slot,
                    row: row.clone(),
                });
            }
        }
        self.tables.insert(schema.name, table);
        self.stats.rows_written += n as u64;
        if !wal.is_empty() {
            self.wal_apply(wal)?;
        }
        Ok(n)
    }

    /// Parse and execute one SQL statement.
    pub fn execute(&mut self, sql: &str) -> RelResult<ExecOutcome> {
        let stmt = parse_statement(sql)?;
        self.execute_stmt(&stmt)
    }

    /// `BEGIN` (convenience wrapper for the connect layer).
    pub fn begin(&mut self) -> RelResult<()> {
        self.execute_stmt(&Statement::Begin).map(|_| ())
    }

    /// `COMMIT` (convenience wrapper for the connect layer).
    pub fn commit(&mut self) -> RelResult<()> {
        self.execute_stmt(&Statement::Commit).map(|_| ())
    }

    /// `ROLLBACK` (convenience wrapper for the connect layer).
    pub fn rollback(&mut self) -> RelResult<()> {
        self.execute_stmt(&Statement::Rollback).map(|_| ())
    }

    /// Checkpoint (outside any transaction) once enough commits have
    /// accumulated. Runs as a statement *prefix* — never inside the
    /// COMMIT path — so a mid-page-flush crash can only fail a
    /// statement that has not yet touched memory or the log, keeping
    /// "COMMIT acknowledged ⟺ transaction durable" exact.
    fn maybe_checkpoint(&mut self) -> RelResult<()> {
        if self.txn.is_some() {
            return Ok(());
        }
        match self.storage.as_ref() {
            Some(st) if !st.dead && st.commits_since_ckpt >= st.checkpoint_every => {
                self.checkpoint()
            }
            _ => Ok(()),
        }
    }

    /// Reset volatile state after a storage call that crashed.
    fn after_storage(&mut self, res: RelResult<()>) -> RelResult<()> {
        if self.storage.as_ref().is_some_and(|s| s.dead) {
            self.tables = HashMap::new();
            self.txn = None;
        }
        res
    }

    /// Emit one successful statement's WAL records (durable only).
    fn wal_apply(&mut self, changes: Vec<WalChange>) -> RelResult<()> {
        let res = match self.storage.as_mut() {
            Some(st) => st.apply(changes),
            None => Ok(()),
        };
        self.after_storage(res)
    }

    fn durable_begin(&mut self) -> RelResult<()> {
        let res = match self.storage.as_mut() {
            Some(st) => st.begin().map(|_| ()),
            None => Ok(()),
        };
        self.after_storage(res)
    }

    fn durable_commit(&mut self) -> RelResult<()> {
        let res = match self.storage.as_mut() {
            Some(st) => match st.current_tx {
                Some(tx) => st.commit(tx),
                None => Ok(()),
            },
            None => Ok(()),
        };
        self.after_storage(res)
    }

    fn durable_rollback(&mut self) -> RelResult<()> {
        let res = match self.storage.as_mut() {
            Some(st) => match st.current_tx {
                Some(tx) => st.rollback(tx),
                None => Ok(()),
            },
            None => Ok(()),
        };
        self.after_storage(res)
    }

    /// Execute an already-parsed statement.
    pub fn execute_stmt(&mut self, stmt: &Statement) -> RelResult<ExecOutcome> {
        if self.is_crashed() {
            return Err(RelError::Unavailable("database crashed; reopen it".into()));
        }
        self.maybe_checkpoint()?;
        self.dialect.check(stmt)?;
        let durable = self.storage.is_some();
        let mut wal: Vec<WalChange> = Vec::new();
        let outcome = match stmt {
            Statement::Select(s) => {
                let (rs, m) = execute_select_with_metrics(s, &self.tables)?;
                self.stats.rows_returned += rs.rows.len() as u64;
                self.stats.rows_scanned += m.rows_scanned;
                self.stats.index_hits += m.index_hits;
                self.stats.rows_spilled += m.rows_spilled;
                self.last_exec = Some(m);
                ExecOutcome::Rows(rs)
            }
            Statement::Explain(s) => {
                let plan = crate::exec::explain_select(s, &self.tables)?;
                ExecOutcome::Rows(crate::exec::ResultSet {
                    columns: vec!["plan".to_string()],
                    rows: plan
                        .into_iter()
                        .map(|line| vec![Datum::Text(line)])
                        .collect(),
                })
            }
            Statement::CreateTable(schema) => {
                if self.tables.contains_key(&schema.name) {
                    return Err(RelError::TableExists(schema.name.clone()));
                }
                self.tables
                    .insert(schema.name.clone(), Table::new(schema.clone()));
                if let Some(log) = &mut self.txn {
                    log.push(UndoOp::CreateTable {
                        name: schema.name.clone(),
                    });
                }
                if durable {
                    wal.push(WalChange::CreateTable {
                        schema: schema.clone(),
                    });
                }
                ExecOutcome::Done
            }
            Statement::DropTable { name, if_exists } => {
                let lower = name.to_ascii_lowercase();
                match self.tables.remove(&lower) {
                    Some(t) => {
                        if durable {
                            wal.push(WalChange::DropTable {
                                image: TableImage::of(&t),
                            });
                        }
                        if let Some(log) = &mut self.txn {
                            log.push(UndoOp::DropTable {
                                name: lower,
                                table: Box::new(t),
                            });
                        }
                        ExecOutcome::Done
                    }
                    None if *if_exists => ExecOutcome::Done,
                    None => return Err(RelError::NoSuchTable(lower)),
                }
            }
            Statement::CreateIndex {
                name,
                table,
                column,
            } => {
                let lower = table.to_ascii_lowercase();
                let t = self
                    .tables
                    .get_mut(&lower)
                    .ok_or_else(|| RelError::NoSuchTable(lower.clone()))?;
                let (ci, _) = t.schema.column(column)?;
                t.create_index(name, ci)?;
                if let Some(log) = &mut self.txn {
                    log.push(UndoOp::CreateIndex {
                        table: lower.clone(),
                        name: name.to_ascii_lowercase(),
                    });
                }
                if durable {
                    wal.push(WalChange::CreateIndex {
                        table: lower,
                        name: name.to_ascii_lowercase(),
                        column: ci,
                    });
                }
                ExecOutcome::Done
            }
            Statement::Insert {
                table,
                columns,
                rows,
            } => self.run_insert(table, columns.as_deref(), rows, &mut wal)?,
            Statement::Update {
                table,
                assignments,
                filter,
            } => self.run_update(table, assignments, filter.as_ref(), &mut wal)?,
            Statement::Delete { table, filter } => {
                self.run_delete(table, filter.as_ref(), &mut wal)?
            }
            Statement::Begin => {
                if self.txn.is_some() {
                    return Err(RelError::TransactionState(
                        "transaction already open".into(),
                    ));
                }
                self.durable_begin()?;
                self.txn = Some(Vec::new());
                ExecOutcome::Done
            }
            Statement::Commit => {
                if self.txn.is_none() {
                    return Err(RelError::TransactionState("no open transaction".into()));
                }
                self.durable_commit()?;
                self.txn = None;
                ExecOutcome::Done
            }
            Statement::Rollback => {
                let log = self
                    .txn
                    .take()
                    .ok_or(RelError::TransactionState("no open transaction".into()))?;
                self.apply_undo(log);
                self.durable_rollback()?;
                ExecOutcome::Done
            }
        };
        if !wal.is_empty() {
            self.wal_apply(wal)?;
        }
        self.stats.statements += 1;
        Ok(outcome)
    }

    fn apply_undo(&mut self, log: Vec<UndoOp>) {
        for op in log.into_iter().rev() {
            match op {
                UndoOp::Insert { table, slot } => {
                    if let Some(t) = self.tables.get_mut(&table) {
                        t.delete_slot(slot);
                    }
                }
                UndoOp::Delete { table, slot, row } => {
                    if let Some(t) = self.tables.get_mut(&table) {
                        t.restore_slot(slot, row);
                    }
                }
                UndoOp::Update { table, slot, old } => {
                    if let Some(t) = self.tables.get_mut(&table) {
                        let _ = t.update_slot(slot, old);
                    }
                }
                UndoOp::CreateTable { name } => {
                    self.tables.remove(&name);
                }
                UndoOp::CreateIndex { table, name } => {
                    if let Some(t) = self.tables.get_mut(&table) {
                        t.drop_index(&name);
                    }
                }
                UndoOp::DropTable { name, table } => {
                    self.tables.insert(name, *table);
                }
            }
        }
    }

    fn run_insert(
        &mut self,
        table: &str,
        columns: Option<&[String]>,
        value_rows: &[Vec<Expr>],
        wal: &mut Vec<WalChange>,
    ) -> RelResult<ExecOutcome> {
        let durable = self.storage.is_some();
        let lower = table.to_ascii_lowercase();
        let t = self
            .tables
            .get_mut(&lower)
            .ok_or(RelError::NoSuchTable(lower.clone()))?;

        // Map written columns to schema positions.
        let positions: Vec<usize> = match columns {
            Some(cols) => {
                let mut ps = Vec::with_capacity(cols.len());
                for c in cols {
                    ps.push(t.schema.column(c)?.0);
                }
                ps
            }
            None => (0..t.schema.arity()).collect(),
        };

        // The WAL redo image is captured *after* insertion so it holds
        // the coerced row exactly as stored.
        let mut inserted: Vec<(usize, Option<Row>)> = Vec::new();
        let mut insert_all = || -> RelResult<()> {
            for exprs in value_rows {
                if exprs.len() != positions.len() {
                    return Err(RelError::ArityMismatch {
                        expected: positions.len(),
                        found: exprs.len(),
                    });
                }
                let mut row = vec![Datum::Null; t.schema.arity()];
                for (i, e) in exprs.iter().enumerate() {
                    row[positions[i]] = eval(e, &ConstOnly)?;
                }
                let slot = t.insert(row)?;
                let captured = if durable { t.row(slot).cloned() } else { None };
                inserted.push((slot, captured));
            }
            Ok(())
        };
        match insert_all() {
            Ok(()) => {
                let n = inserted.len();
                if let Some(log) = &mut self.txn {
                    for (slot, _) in &inserted {
                        log.push(UndoOp::Insert {
                            table: lower.clone(),
                            slot: *slot,
                        });
                    }
                }
                for (slot, captured) in inserted {
                    if let Some(row) = captured {
                        wal.push(WalChange::Insert {
                            table: lower.clone(),
                            slot,
                            row,
                        });
                    }
                }
                self.stats.rows_written += n as u64;
                Ok(ExecOutcome::Count(n))
            }
            Err(e) => {
                // Statement atomicity: roll back this statement's rows.
                for (slot, _) in inserted {
                    t.delete_slot(slot);
                }
                Err(e)
            }
        }
    }

    fn run_update(
        &mut self,
        table: &str,
        assignments: &[(String, Expr)],
        filter: Option<&Expr>,
        wal: &mut Vec<WalChange>,
    ) -> RelResult<ExecOutcome> {
        let durable = self.storage.is_some();
        let lower = table.to_ascii_lowercase();
        let t = self
            .tables
            .get_mut(&lower)
            .ok_or(RelError::NoSuchTable(lower.clone()))?;
        let columns = t.schema.column_names();

        // Resolve assignment targets first.
        let mut targets = Vec::with_capacity(assignments.len());
        for (col, e) in assignments {
            targets.push((t.schema.column(col)?.0, e));
        }

        // Phase 1: decide which slots match and compute the new rows.
        let mut changes: Vec<(usize, Row)> = Vec::new();
        for (slot, row) in t.scan() {
            let ctx = crate::expr::SingleRow {
                columns: &columns,
                row,
            };
            let keep = match filter {
                None => true,
                Some(f) => matches!(eval(f, &ctx)?, Datum::Bool(true)),
            };
            if !keep {
                continue;
            }
            let mut new_row = row.clone();
            for (pos, e) in &targets {
                new_row[*pos] = eval(e, &ctx)?;
            }
            changes.push((slot, new_row));
        }

        // Phase 2: apply, undoing on mid-statement failure. The WAL
        // after-image is read back post-update so it is the coerced
        // row exactly as stored.
        let mut applied: Vec<(usize, Row, Option<Row>)> = Vec::new();
        for (slot, new_row) in changes {
            match t.update_slot(slot, new_row) {
                Ok(old) => {
                    let captured = if durable { t.row(slot).cloned() } else { None };
                    applied.push((slot, old, captured));
                }
                Err(e) => {
                    for (s, old, _) in applied.into_iter().rev() {
                        let _ = t.update_slot(s, old);
                    }
                    return Err(e);
                }
            }
        }
        let n = applied.len();
        if durable {
            for (slot, old, new) in applied {
                if let Some(log) = &mut self.txn {
                    log.push(UndoOp::Update {
                        table: lower.clone(),
                        slot,
                        old: old.clone(),
                    });
                }
                wal.push(WalChange::Update {
                    table: lower.clone(),
                    slot,
                    old,
                    new: new.expect("captured on the durable path"),
                });
            }
        } else if let Some(log) = &mut self.txn {
            for (slot, old, _) in applied {
                log.push(UndoOp::Update {
                    table: lower.clone(),
                    slot,
                    old,
                });
            }
        }
        self.stats.rows_written += n as u64;
        Ok(ExecOutcome::Count(n))
    }

    fn run_delete(
        &mut self,
        table: &str,
        filter: Option<&Expr>,
        wal: &mut Vec<WalChange>,
    ) -> RelResult<ExecOutcome> {
        let durable = self.storage.is_some();
        let lower = table.to_ascii_lowercase();
        let t = self
            .tables
            .get_mut(&lower)
            .ok_or(RelError::NoSuchTable(lower.clone()))?;
        let columns = t.schema.column_names();

        let mut victims: Vec<usize> = Vec::new();
        for (slot, row) in t.scan() {
            let ctx = crate::expr::SingleRow {
                columns: &columns,
                row,
            };
            let doomed = match filter {
                None => true,
                Some(f) => matches!(eval(f, &ctx)?, Datum::Bool(true)),
            };
            if doomed {
                victims.push(slot);
            }
        }
        let mut n = 0;
        for slot in victims {
            if let Some(row) = t.delete_slot(slot) {
                n += 1;
                if durable {
                    if let Some(log) = &mut self.txn {
                        log.push(UndoOp::Delete {
                            table: lower.clone(),
                            slot,
                            row: row.clone(),
                        });
                    }
                    wal.push(WalChange::Delete {
                        table: lower.clone(),
                        slot,
                        row,
                    });
                } else if let Some(log) = &mut self.txn {
                    log.push(UndoOp::Delete {
                        table: lower.clone(),
                        slot,
                        row,
                    });
                }
            }
        }
        self.stats.rows_written += n as u64;
        Ok(ExecOutcome::Count(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hospital_db() -> Database {
        let mut db = Database::new("RBH", Dialect::Oracle);
        db.execute(
            "CREATE TABLE medical_students (student_id INT PRIMARY KEY, \
             name TEXT NOT NULL, course TEXT, year INT)",
        )
        .unwrap();
        db.execute(
            "INSERT INTO medical_students VALUES \
             (1, 'J. Chen', 'MBBS', 3), (2, 'A. Patel', 'MBBS', 5), (3, 'T. Nguyen', 'Nursing', 2)",
        )
        .unwrap();
        db
    }

    #[test]
    fn the_papers_section5_query() {
        let mut db = hospital_db();
        let out = db.execute("select * from medical_students").unwrap();
        let rs = out.rows().unwrap();
        assert_eq!(rs.columns, vec!["student_id", "name", "course", "year"]);
        assert_eq!(rs.rows.len(), 3);
    }

    #[test]
    fn insert_returns_count_and_updates_stats() {
        let mut db = hospital_db();
        let out = db
            .execute("INSERT INTO medical_students VALUES (4, 'New', 'MBBS', 1)")
            .unwrap();
        assert_eq!(out.count(), Some(1));
        assert_eq!(db.stats().rows_written, 4); // 3 seed + 1
    }

    #[test]
    fn multi_row_insert_is_atomic() {
        let mut db = hospital_db();
        // Second row collides with pk 1 → whole statement rolls back.
        let err = db
            .execute("INSERT INTO medical_students VALUES (9, 'X', 'c', 1), (1, 'Dup', 'c', 1)")
            .unwrap_err();
        assert!(matches!(err, RelError::DuplicateKey(_)));
        let rs = db.execute("SELECT COUNT(*) FROM medical_students").unwrap();
        assert_eq!(rs.rows().unwrap().rows[0][0], Datum::Int(3));
    }

    #[test]
    fn update_with_self_reference() {
        let mut db = hospital_db();
        let out = db
            .execute("UPDATE medical_students SET year = year + 1 WHERE course = 'MBBS'")
            .unwrap();
        assert_eq!(out.count(), Some(2));
        let rs = db
            .execute("SELECT year FROM medical_students WHERE student_id = 1")
            .unwrap();
        assert_eq!(rs.rows().unwrap().rows[0][0], Datum::Int(4));
    }

    #[test]
    fn delete_with_filter() {
        let mut db = hospital_db();
        let out = db
            .execute("DELETE FROM medical_students WHERE year < 3")
            .unwrap();
        assert_eq!(out.count(), Some(1));
        assert_eq!(db.table("medical_students").unwrap().len(), 2);
    }

    #[test]
    fn transaction_rollback_restores_everything() {
        let mut db = hospital_db();
        db.execute("BEGIN").unwrap();
        db.execute("INSERT INTO medical_students VALUES (10, 'Tmp', 'c', 1)")
            .unwrap();
        db.execute("UPDATE medical_students SET year = 99").unwrap();
        db.execute("DELETE FROM medical_students WHERE student_id = 2")
            .unwrap();
        db.execute("CREATE TABLE scratch (x INT)").unwrap();
        db.execute("ROLLBACK").unwrap();

        assert!(db.table("scratch").is_none());
        let rs = db
            .execute("SELECT student_id, year FROM medical_students ORDER BY student_id")
            .unwrap();
        let rows = &rs.rows().unwrap().rows;
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], vec![Datum::Int(1), Datum::Int(3)]);
        assert_eq!(rows[1], vec![Datum::Int(2), Datum::Int(5)]);
    }

    #[test]
    fn transaction_commit_keeps_changes() {
        let mut db = hospital_db();
        db.execute("BEGIN").unwrap();
        db.execute("DELETE FROM medical_students").unwrap();
        db.execute("COMMIT").unwrap();
        assert_eq!(db.table("medical_students").unwrap().len(), 0);
        assert!(!db.in_transaction());
    }

    #[test]
    fn rollback_of_drop_table_restores_data() {
        let mut db = hospital_db();
        db.execute("BEGIN").unwrap();
        db.execute("DROP TABLE medical_students").unwrap();
        assert!(db.table("medical_students").is_none());
        db.execute("ROLLBACK").unwrap();
        assert_eq!(db.table("medical_students").unwrap().len(), 3);
    }

    #[test]
    fn transaction_state_errors() {
        let mut db = hospital_db();
        assert!(matches!(
            db.execute("COMMIT"),
            Err(RelError::TransactionState(_))
        ));
        db.execute("BEGIN").unwrap();
        assert!(matches!(
            db.execute("BEGIN"),
            Err(RelError::TransactionState(_))
        ));
    }

    #[test]
    fn dialect_gating_applies() {
        let mut db = Database::new("CentreLink", Dialect::MSql);
        db.execute("CREATE TABLE t (x INT)").unwrap();
        assert!(matches!(
            db.execute("SELECT COUNT(*) FROM t"),
            Err(RelError::Unsupported(_))
        ));
        // Canonical engine runs it fine.
        let mut db2 = Database::new("x", Dialect::Canonical);
        db2.execute("CREATE TABLE t (x INT)").unwrap();
        db2.execute("SELECT COUNT(*) FROM t").unwrap();
    }

    #[test]
    fn create_index_and_use() {
        let mut db = hospital_db();
        db.execute("CREATE INDEX ms_course ON medical_students (course)")
            .unwrap();
        assert!(matches!(
            db.execute("CREATE INDEX ms_course ON medical_students (course)"),
            Err(RelError::IndexExists(_))
        ));
        let rs = db
            .execute("SELECT name FROM medical_students WHERE course = 'MBBS' ORDER BY name")
            .unwrap();
        assert_eq!(rs.rows().unwrap().rows.len(), 2);
    }

    #[test]
    fn insert_with_column_subset_fills_nulls() {
        let mut db = Database::new("x", Dialect::Canonical);
        db.execute("CREATE TABLE t (a INT PRIMARY KEY, b TEXT, c DOUBLE)")
            .unwrap();
        db.execute("INSERT INTO t (a) VALUES (1)").unwrap();
        let rs = db.execute("SELECT * FROM t").unwrap();
        assert_eq!(
            rs.rows().unwrap().rows[0],
            vec![Datum::Int(1), Datum::Null, Datum::Null]
        );
    }

    #[test]
    fn insert_values_must_be_constant() {
        let mut db = Database::new("x", Dialect::Canonical);
        db.execute("CREATE TABLE t (a INT)").unwrap();
        assert!(db.execute("INSERT INTO t VALUES (b)").is_err());
    }

    // ---- durable tier ---------------------------------------------------

    use crate::file_mgr::SimVfs;

    fn durable_db(vfs: &Arc<SimVfs>) -> Database {
        let mut db =
            Database::open_vfs(Arc::clone(vfs) as Arc<dyn Vfs>, "RBH", Dialect::Canonical).unwrap();
        db.execute("CREATE TABLE beds (id INT PRIMARY KEY, loc TEXT)")
            .unwrap();
        db.execute("INSERT INTO beds VALUES (1, 'ward A'), (2, 'ward B')")
            .unwrap();
        db
    }

    fn count(db: &mut Database, sql: &str) -> i64 {
        match db.execute(sql).unwrap().rows().unwrap().rows[0][0] {
            Datum::Int(n) => n,
            ref d => panic!("expected int, got {d:?}"),
        }
    }

    #[test]
    fn durable_data_survives_crash_and_power_loss() {
        let vfs = SimVfs::new();
        let mut db = durable_db(&vfs);
        assert!(db.is_durable());
        assert!(db.simulate_crash());
        assert!(matches!(
            db.execute("SELECT * FROM beds"),
            Err(RelError::Unavailable(_))
        ));
        vfs.power_loss(42); // unsynced writes (maybe) gone
        db.reopen().unwrap();
        assert_eq!(count(&mut db, "SELECT COUNT(*) FROM beds"), 2);
    }

    #[test]
    fn uncommitted_transaction_rolls_back_across_crash() {
        let vfs = SimVfs::new();
        let mut db = durable_db(&vfs);
        db.execute("BEGIN").unwrap();
        db.execute("INSERT INTO beds VALUES (3, 'ward C')").unwrap();
        db.execute("UPDATE beds SET loc = 'hijacked' WHERE id = 1")
            .unwrap();
        // Crash before COMMIT.
        db.simulate_crash();
        vfs.power_loss(7);
        db.reopen().unwrap();
        assert_eq!(count(&mut db, "SELECT COUNT(*) FROM beds"), 2);
        let rs = db.execute("SELECT loc FROM beds WHERE id = 1").unwrap();
        assert_eq!(
            rs.rows().unwrap().rows[0][0],
            Datum::Text("ward A".into()),
            "loser update reversed"
        );
    }

    #[test]
    fn committed_transaction_survives_power_loss() {
        let vfs = SimVfs::new();
        let mut db = durable_db(&vfs);
        db.execute("BEGIN").unwrap();
        db.execute("DELETE FROM beds WHERE id = 2").unwrap();
        db.execute("INSERT INTO beds VALUES (9, 'icu')").unwrap();
        db.execute("COMMIT").unwrap();
        db.simulate_crash();
        vfs.power_loss(1234);
        db.reopen().unwrap();
        assert_eq!(count(&mut db, "SELECT COUNT(*) FROM beds"), 2);
        assert_eq!(count(&mut db, "SELECT COUNT(*) FROM beds WHERE id = 9"), 1);
        assert_eq!(count(&mut db, "SELECT COUNT(*) FROM beds WHERE id = 2"), 0);
    }

    #[test]
    fn pre_commit_record_crash_makes_the_transaction_a_loser() {
        let vfs = SimVfs::new();
        let mut db = durable_db(&vfs);
        db.execute("BEGIN").unwrap();
        db.execute("INSERT INTO beds VALUES (5, 'ward E')").unwrap();
        db.arm_crash_point(CrashPoint::PreCommitRecord, 1);
        assert!(matches!(
            db.execute("COMMIT"),
            Err(RelError::Unavailable(_))
        ));
        assert!(db.is_crashed());
        vfs.power_loss(99);
        db.reopen().unwrap();
        assert_eq!(count(&mut db, "SELECT COUNT(*) FROM beds WHERE id = 5"), 0);
        let st = db.storage_stats().unwrap();
        assert!(st.recovery_undo > 0 || st.recovery_redo > 0);
    }

    #[test]
    fn after_wal_append_crash_kills_the_statement() {
        let vfs = SimVfs::new();
        let mut db = durable_db(&vfs);
        db.arm_crash_point(CrashPoint::AfterWalAppend, 2);
        // Auto-commit statement: Begin append (hit 1) + op append (hit 2).
        assert!(matches!(
            db.execute("INSERT INTO beds VALUES (7, 'ward G')"),
            Err(RelError::Unavailable(_))
        ));
        vfs.power_loss(3);
        db.reopen().unwrap();
        // No commit record → the insert must not survive.
        assert_eq!(count(&mut db, "SELECT COUNT(*) FROM beds WHERE id = 7"), 0);
        assert_eq!(count(&mut db, "SELECT COUNT(*) FROM beds"), 2);
    }

    #[test]
    fn mid_page_flush_crash_leaves_previous_checkpoint_valid() {
        let vfs = SimVfs::new();
        let mut db = durable_db(&vfs);
        db.arm_crash_point(CrashPoint::MidPageFlush, 1);
        assert!(matches!(db.checkpoint(), Err(RelError::Unavailable(_))));
        vfs.power_loss(55);
        db.reopen().unwrap();
        assert_eq!(count(&mut db, "SELECT COUNT(*) FROM beds"), 2);
    }

    #[test]
    fn make_durable_persists_an_in_memory_build() {
        let mut db = hospital_db();
        assert!(!db.is_durable());
        let vfs = SimVfs::new();
        db.make_durable(Arc::clone(&vfs) as Arc<dyn Vfs>).unwrap();
        assert!(db.is_durable());
        db.execute("INSERT INTO medical_students VALUES (4, 'New', 'MBBS', 1)")
            .unwrap();
        db.simulate_crash();
        vfs.power_loss(8);
        db.reopen().unwrap();
        assert_eq!(
            count(&mut db, "SELECT COUNT(*) FROM medical_students"),
            4,
            "seed rows from the checkpoint plus the logged insert"
        );
    }

    #[test]
    fn automatic_checkpoints_compact_the_wal() {
        let vfs = SimVfs::new();
        let mut db = durable_db(&vfs);
        db.set_checkpoint_every(2);
        for i in 10..20 {
            db.execute(&format!("INSERT INTO beds VALUES ({i}, 'w')"))
                .unwrap();
        }
        let st = db.storage_stats().unwrap();
        assert!(st.checkpoints >= 3, "cadence-driven checkpoints: {st:?}");
        assert!(st.pages_flushed > 0);
        assert!(st.wal_appends > 0);
        // WAL was compacted recently: far smaller than total appends imply.
        let wal_len = vfs.len("wal").unwrap();
        assert!(
            wal_len < st.wal_bytes,
            "wal {wal_len} should be compacted below lifetime bytes {}",
            st.wal_bytes
        );
        db.simulate_crash();
        db.reopen().unwrap();
        assert_eq!(count(&mut db, "SELECT COUNT(*) FROM beds"), 12);
    }

    #[test]
    fn reopen_is_idempotent_on_a_healthy_database() {
        let vfs = SimVfs::new();
        let mut db = durable_db(&vfs);
        db.reopen().unwrap();
        db.reopen().unwrap();
        assert_eq!(count(&mut db, "SELECT COUNT(*) FROM beds"), 2);
    }

    #[test]
    fn in_memory_fast_path_has_no_durable_surface() {
        let mut db = hospital_db();
        assert!(!db.is_durable());
        assert!(!db.is_crashed());
        assert!(db.storage_stats().is_none());
        assert!(db.vfs().is_none());
        assert!(!db.simulate_crash());
        assert!(db.checkpoint().is_ok(), "checkpoint is a no-op in memory");
        assert!(matches!(db.reopen(), Err(RelError::Storage(_))));
        // Data untouched by all of the above.
        assert_eq!(db.table("medical_students").unwrap().len(), 3);
    }
}
