//! A miniature property-testing harness.
//!
//! Replaces the external `proptest` dependency for the `prop_*` test
//! suites: each property runs over a sequence of deterministic seeds,
//! and a failing case reports the seed so the exact input regenerates
//! with `cases_from(seed, 1, ..)`. There is no shrinking — generators
//! here are small enough that the failing seed is directly debuggable.

use crate::rng::StdRng;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Run `property` for `n` deterministic cases, seeds `0..n`.
///
/// Panics (re-raising the property's panic) after printing the failing
/// seed, so `cargo test` output pinpoints the case to replay.
pub fn cases(n: u64, property: impl FnMut(&mut StdRng)) {
    cases_from(0, n, property);
}

/// Run `property` for seeds `start..start + n`.
pub fn cases_from(start: u64, n: u64, mut property: impl FnMut(&mut StdRng)) {
    for seed in start..start + n {
        let mut rng = StdRng::seed_from_u64(seed);
        if let Err(panic) = catch_unwind(AssertUnwindSafe(|| property(&mut rng))) {
            eprintln!("property failed at seed {seed} (replay with cases_from({seed}, 1, ..))");
            resume_unwind(panic);
        }
    }
}

/// A random string of `len` characters drawn from `alphabet`.
pub fn string_from(rng: &mut StdRng, alphabet: &str, len: usize) -> String {
    let chars: Vec<char> = alphabet.chars().collect();
    (0..len)
        .map(|_| chars[rng.gen_range(0..chars.len())])
        .collect()
}

/// A random string whose length is drawn from `lens`.
pub fn string_of(rng: &mut StdRng, alphabet: &str, lens: std::ops::Range<usize>) -> String {
    let len = rng.gen_range(lens);
    string_from(rng, alphabet, len)
}

/// A vector with a length drawn from `lens`, elements from `gen`.
pub fn vec_of<T>(
    rng: &mut StdRng,
    lens: std::ops::Range<usize>,
    mut gen: impl FnMut(&mut StdRng) -> T,
) -> Vec<T> {
    let len = rng.gen_range(lens);
    (0..len).map(|_| gen(rng)).collect()
}

/// Pick one element of a non-empty slice.
pub fn pick<'a, T>(rng: &mut StdRng, xs: &'a [T]) -> &'a T {
    &xs[rng.gen_range(0..xs.len())]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic() {
        let mut firsts = Vec::new();
        cases(5, |rng| firsts.push(rng.next_u64()));
        let mut again = Vec::new();
        cases(5, |rng| again.push(rng.next_u64()));
        assert_eq!(firsts, again);
        assert_eq!(firsts.len(), 5);
    }

    #[test]
    #[should_panic(expected = "boom at seed 3")]
    fn failing_seed_is_reported() {
        cases(10, |rng| {
            let x = rng.next_u64();
            // Force a failure on one specific seed.
            if x == StdRng::seed_from_u64(3).next_u64() {
                panic!("boom at seed 3");
            }
        });
    }

    #[test]
    fn generators_respect_bounds() {
        cases(20, |rng| {
            let s = string_of(rng, "abc", 2..5);
            assert!((2..5).contains(&s.len()));
            assert!(s.chars().all(|c| "abc".contains(c)));
            let v = vec_of(rng, 0..4, |r| r.gen_range(0..10));
            assert!(v.len() < 4);
            let choice = *pick(rng, &[1, 2, 3]);
            assert!((1..=3).contains(&choice));
        });
    }
}
