//! Information-space administration with WebTassili's management
//! constructs (§2.1's coalition dynamics): create a coalition, have
//! databases join and leave, link it to others, and dissolve it —
//! watching how each change propagates through co-databases and what it
//! costs in ORB invocations.
//!
//! Run with: `cargo run -p webfindit-examples --example federation_admin`

use webfindit::processor::Processor;
use webfindit::session::BrowserSession;
use webfindit_examples::{banner, block};
use webfindit_healthcare::build_healthcare;

fn main() {
    let dep = build_healthcare(1999).expect("healthcare deployment");
    let processor = Processor::new(dep.fed.clone());
    // The administrator works from the Medicare site.
    let mut session = BrowserSession::new("Medicare");

    banner("1. A new coalition forms (Telehealth)");
    for stmt in [
        "Create Coalition Telehealth Documentation 'remote consultation providers';",
        "Join Instance Medicare To Coalition Telehealth;",
        "Join Instance Prince Charles Hospital To Coalition Telehealth;",
        "Display Instances of Class Telehealth;",
    ] {
        println!("\nWebTassili> {stmt}");
        match processor.submit(&mut session, stmt, None) {
            Ok(response) => block(&response.render()),
            Err(e) => block(&format!("error: {e}")),
        }
    }

    banner("2. It becomes discoverable across the federation");
    let mut qut = BrowserSession::new("QUT Research");
    {
        let stmt = "Find Coalitions With Information remote consultation;";
        println!("\nWebTassili@QUT> {stmt}");
        match processor.submit(&mut qut, stmt, None) {
            Ok(response) => block(&response.render()),
            Err(e) => block(&format!("error: {e}")),
        }
    }

    banner("3. Linking and membership churn");
    for stmt in [
        "Link Coalition Telehealth To Coalition Medical Insurance Description 'telehealth rebates';",
        "Leave Instance Prince Charles Hospital From Coalition Telehealth;",
        "Display Instances of Class Telehealth;",
    ] {
        println!("\nWebTassili> {stmt}");
        match processor.submit(&mut session, stmt, None) {
            Ok(response) => block(&response.render()),
            Err(e) => block(&format!("error: {e}")),
        }
    }

    banner("4. Dissolution (§2.1: 'old coalitions may be dissolved')");
    for stmt in [
        "Dissolve Coalition Telehealth;",
        "Find Coalitions With Information remote consultation;",
    ] {
        println!("\nWebTassili> {stmt}");
        match processor.submit(&mut session, stmt, None) {
            Ok(response) => block(&response.render()),
            Err(e) => block(&format!("error: {e}")),
        }
    }

    dep.fed.shutdown();
    println!("\ndone.");
}
