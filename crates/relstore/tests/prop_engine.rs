//! Property-based tests for the relational engine.
//!
//! Invariants:
//! * expression printing parses back to the same AST (printer/parser
//!   round-trip);
//! * index-assisted equality lookups agree with full scans;
//! * insert-then-count is consistent under random batches with random
//!   duplicate keys (statement atomicity);
//! * `ORDER BY` output is actually sorted under the engine's total order;
//! * date parse/format round-trips across a wide range.

use webfindit_base::prop::{self, string_from, vec_of};
use webfindit_base::rng::StdRng;
use webfindit_relstore::expr::{BinOp, Expr};
use webfindit_relstore::sql::ast::Statement;
use webfindit_relstore::sql::parse_statement;
use webfindit_relstore::types::{format_date, parse_date, Datum};
use webfindit_relstore::{Database, Dialect};

const ALNUM_SPACE: &str = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ";
const LOWER: &str = "abcdefghijklmnopqrstuvwxyz";
const IDENT_TAIL: &str = "abcdefghijklmnopqrstuvwxyz0123456789_";

fn arb_datum(rng: &mut StdRng) -> Datum {
    match rng.gen_range(0..5) {
        0 => Datum::Null,
        // Non-negative only: `-1` prints as a unary-negation expression,
        // which is a different (equivalent) AST after reparsing.
        1 => Datum::Int(rng.gen_range(0i32..i32::MAX) as i64),
        2 => Datum::Double(rng.gen_range(0.0f64..1.0e6)),
        3 => {
            let len = rng.gen_range(0usize..13);
            Datum::Text(string_from(rng, ALNUM_SPACE, len))
        }
        _ => Datum::Bool(rng.gen_bool(0.5)),
    }
}

fn arb_cmp_op(rng: &mut StdRng) -> BinOp {
    [
        BinOp::Eq,
        BinOp::Ne,
        BinOp::Lt,
        BinOp::Le,
        BinOp::Gt,
        BinOp::Ge,
    ][rng.gen_range(0..6usize)]
}

fn arb_ident(rng: &mut StdRng, max_tail: usize) -> String {
    loop {
        let mut s = string_from(rng, LOWER, 1);
        let tail = rng.gen_range(0..=max_tail);
        s.push_str(&string_from(rng, IDENT_TAIL, tail));
        if !is_keyword(&s) {
            return s;
        }
    }
}

/// A small generator of printable-and-parsable expressions.
fn arb_expr(rng: &mut StdRng, depth: u32) -> Expr {
    let pick = if depth == 0 {
        rng.gen_range(0..3)
    } else {
        rng.gen_range(0..8)
    };
    match pick {
        0 => Expr::lit(arb_datum(rng)),
        1 => Expr::col(arb_ident(rng, 8)),
        2 => Expr::qcol(arb_ident(rng, 6), arb_ident(rng, 6)),
        3 => {
            let op = arb_cmp_op(rng);
            Expr::bin(op, arb_expr(rng, depth - 1), arb_expr(rng, depth - 1))
        }
        4 => Expr::bin(
            BinOp::Add,
            arb_expr(rng, depth - 1),
            arb_expr(rng, depth - 1),
        ),
        5 => Expr::bin(
            BinOp::And,
            arb_expr(rng, depth - 1),
            arb_expr(rng, depth - 1),
        ),
        6 => Expr::bin(
            BinOp::Or,
            arb_expr(rng, depth - 1),
            arb_expr(rng, depth - 1),
        ),
        _ => Expr::IsNull {
            expr: Box::new(arb_expr(rng, depth - 1)),
            negated: rng.gen_bool(0.5),
        },
    }
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "select"
            | "from"
            | "where"
            | "group"
            | "having"
            | "order"
            | "limit"
            | "and"
            | "or"
            | "not"
            | "in"
            | "between"
            | "like"
            | "is"
            | "null"
            | "true"
            | "false"
            | "join"
            | "inner"
            | "left"
            | "on"
            | "as"
            | "by"
            | "desc"
            | "asc"
            | "date"
            | "count"
            | "sum"
            | "avg"
            | "min"
            | "max"
            | "distinct"
            | "union"
            | "set"
            | "outer"
            | "all"
    )
}

#[test]
fn expr_print_parse_roundtrip() {
    prop::cases(128, |rng| {
        let e = arb_expr(rng, 3);
        // NaN-free and keyword-free by construction, so printing then
        // parsing inside a SELECT must reproduce the AST.
        let sql = format!("SELECT {} FROM dual_t", e.to_sql());
        let stmt = parse_statement(&sql).unwrap();
        match stmt {
            Statement::Select(s) => match &s.items[0] {
                webfindit_relstore::sql::ast::SelectItem::Expr { expr, .. } => {
                    assert_eq!(expr, &e);
                }
                other => panic!("unexpected item {other:?}"),
            },
            other => panic!("unexpected stmt {other:?}"),
        }
    });
}

#[test]
fn date_roundtrip() {
    prop::cases(128, |rng| {
        let days = rng.gen_range(-40_000i32..80_000);
        let s = format_date(days);
        assert_eq!(parse_date(&s), Some(days));
    });
}

#[test]
fn index_agrees_with_scan() {
    prop::cases(128, |rng| {
        let keys: std::collections::BTreeSet<i64> = vec_of(rng, 1..60, |r| r.gen_range(0i64..500))
            .into_iter()
            .collect();
        let probe = rng.gen_range(0i64..500);
        let mut indexed = Database::new("i", Dialect::Canonical);
        indexed
            .execute("CREATE TABLE t (k INT PRIMARY KEY, v INT)")
            .unwrap();
        let mut unindexed = Database::new("u", Dialect::Canonical);
        unindexed.execute("CREATE TABLE t (k INT, v INT)").unwrap();
        for k in &keys {
            let ins = format!("INSERT INTO t VALUES ({k}, {})", k * 7);
            indexed.execute(&ins).unwrap();
            unindexed.execute(&ins).unwrap();
        }
        let q = format!("SELECT v FROM t WHERE k = {probe}");
        let a = indexed.execute(&q).unwrap();
        let b = unindexed.execute(&q).unwrap();
        assert_eq!(a.rows().unwrap().rows, b.rows().unwrap().rows);
    });
}

#[test]
fn order_by_is_sorted() {
    prop::cases(128, |rng| {
        let values = vec_of(rng, 0..50, |r| r.gen_range(-1000i64..1000));
        let mut db = Database::new("s", Dialect::Canonical);
        db.execute("CREATE TABLE t (v INT)").unwrap();
        for v in &values {
            db.execute(&format!("INSERT INTO t VALUES ({v})")).unwrap();
        }
        let rs = db.execute("SELECT v FROM t ORDER BY v").unwrap();
        let rows = &rs.rows().unwrap().rows;
        assert_eq!(rows.len(), values.len());
        for w in rows.windows(2) {
            let a = match &w[0][0] {
                Datum::Int(v) => *v,
                _ => unreachable!(),
            };
            let b = match &w[1][0] {
                Datum::Int(v) => *v,
                _ => unreachable!(),
            };
            assert!(a <= b);
        }
    });
}

#[test]
fn duplicate_keys_keep_count_consistent() {
    prop::cases(128, |rng| {
        let inserts = vec_of(rng, 1..40, |r| r.gen_range(0i64..20));
        let mut db = Database::new("d", Dialect::Canonical);
        db.execute("CREATE TABLE t (k INT PRIMARY KEY)").unwrap();
        let mut expected = std::collections::BTreeSet::new();
        for k in &inserts {
            let res = db.execute(&format!("INSERT INTO t VALUES ({k})"));
            if expected.insert(*k) {
                assert!(res.is_ok());
            } else {
                assert!(res.is_err());
            }
        }
        let rs = db.execute("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(
            rs.rows().unwrap().rows[0][0],
            Datum::Int(expected.len() as i64)
        );
    });
}

#[test]
fn rollback_is_exact_inverse() {
    prop::cases(128, |rng| {
        let seed = vec_of(rng, 1..20, |r| {
            (r.gen_range(0i64..50), r.gen_range(-100i64..100))
        });
        let txn_ops = vec_of(rng, 0..15, |r| {
            (
                r.gen_range(0u8..3),
                r.gen_range(0i64..50),
                r.gen_range(-100i64..100),
            )
        });
        let mut db = Database::new("r", Dialect::Canonical);
        db.execute("CREATE TABLE t (k INT PRIMARY KEY, v INT)")
            .unwrap();
        for (k, v) in &seed {
            let _ = db.execute(&format!("INSERT INTO t VALUES ({k}, {v})"));
        }
        let before = db.execute("SELECT * FROM t ORDER BY k").unwrap();
        db.execute("BEGIN").unwrap();
        for (op, k, v) in &txn_ops {
            let sql = match op {
                0 => format!("INSERT INTO t VALUES ({k}, {v})"),
                1 => format!("UPDATE t SET v = {v} WHERE k = {k}"),
                _ => format!("DELETE FROM t WHERE k = {k}"),
            };
            let _ = db.execute(&sql); // failures (e.g. dup key) are fine — txn continues
        }
        db.execute("ROLLBACK").unwrap();
        let after = db.execute("SELECT * FROM t ORDER BY k").unwrap();
        assert_eq!(before.rows().unwrap().rows, after.rows().unwrap().rows);
    });
}
