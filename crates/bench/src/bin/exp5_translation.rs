//! E5 — WebTassili→native translation: correctness on the paper's own
//! example, the per-dialect renderings a wrapper would emit, and
//! round-trip validation over a generated corpus of access-function
//! calls executed against the live RBH database.

use webfindit::processor::{Processor, Response};
use webfindit::session::BrowserSession;
use webfindit_base::rng::StdRng;
use webfindit_bench::header;
use webfindit_healthcare::build_healthcare;
use webfindit_relstore::sql::ast::Statement as SqlStatement;
use webfindit_relstore::sql::parse_statement;
use webfindit_relstore::Dialect;
use webfindit_tassili::{parse, translate_invoke_to_sql};

fn main() {
    header("Experiment E5", "WebTassili → SQL/OQL translation");

    // 1. The paper's §2.3 example, verbatim.
    println!("\n--- the paper's Funding() example ---");
    let tassili = "Invoke ResearchProjects.Funding(ResearchProjects.Title, \
                   (ResearchProjects.Title = 'AIDS and drugs')) On Instance Royal Brisbane Hospital;";
    let stmt = parse(tassili).expect("parse");
    let sql = translate_invoke_to_sql(&stmt).expect("translate");
    println!("WebTassili: {tassili}");
    println!("SQL:        {sql}");
    assert_eq!(
        sql,
        "SELECT a.funding FROM researchprojects a WHERE a.title = 'AIDS and drugs'"
    );

    // 2. Vendor renderings of the translated query (the heterogeneity
    //    the wrappers absorb).
    println!("\n--- per-vendor renderings (with LIMIT 5 added to show the spread) ---");
    let with_limit = format!("{sql} LIMIT 5");
    let parsed = parse_statement(&with_limit).expect("reparse");
    if let SqlStatement::Select(select) = &parsed {
        for dialect in [
            Dialect::Oracle,
            Dialect::MSql,
            Dialect::Db2,
            Dialect::Sybase,
        ] {
            println!("{:<8} {}", dialect.name(), dialect.render_select(select));
        }
    }

    // 3. A generated corpus executed end-to-end against the live RBH.
    println!("\n--- corpus execution against the live deployment ---");
    let dep = build_healthcare(1999).expect("deployment");
    let processor = Processor::new(dep.fed.clone());
    let mut session = BrowserSession::new("QUT Research");
    let mut rng = StdRng::seed_from_u64(5);
    let mut executed = 0;
    let mut nonempty = 0;
    for _ in 0..40 {
        let threshold = rng.gen_range(0..500_000);
        let stmt = format!(
            "Invoke ResearchProjects.Funding((ResearchProjects.Funding > {threshold})) \
             On Instance Royal Brisbane Hospital;"
        );
        match processor.submit(&mut session, &stmt, None) {
            Ok(Response::Table(rs)) => {
                executed += 1;
                if !rs.rows.is_empty() {
                    nonempty += 1;
                }
            }
            Ok(other) => panic!("unexpected response {other:?}"),
            Err(e) => panic!("corpus query failed: {e}"),
        }
    }
    println!("corpus: {executed}/40 executed, {nonempty} returned rows");
    assert_eq!(executed, 40);

    println!("\nAll translations executed through the full ORB + wrapper stack.");
    dep.fed.shutdown();
}
