//! # webfindit-tassili — the WebTassili language
//!
//! WebTassili (paper §2.3) is WebFINDIT's special-purpose language. It
//! serves three roles, all implemented here:
//!
//! 1. **Exploration / user education** — locating coalitions and
//!    databases by information type and browsing the metadata space:
//!    `Find Coalitions With Information Medical Research`,
//!    `Display SubClasses of Class Research`,
//!    `Display Instances of Class Research`,
//!    `Display Document of Instance Royal Brisbane Hospital Of Class
//!    Research`, `Display Access Information of Instance …`,
//!    `Connect To Coalition Research`.
//! 2. **Data queries** — invoking a source's exported access functions
//!    (`Invoke … On Instance …`) or submitting native queries
//!    (`Submit Native '…' To Instance …`), with [`translate`] producing
//!    the vendor SQL exactly as the paper shows for
//!    `Funding(ResearchProjects.Title, Title = 'AIDS and drugs')` →
//!    `SELECT a.Funding FROM ResearchProjects a WHERE a.Title = '…'`.
//! 3. **Information-space management** — definition and maintenance of
//!    the architecture: `Create Coalition`, `Dissolve Coalition`,
//!    `Join/Leave`, `Link … To …`.
//!
//! The crate is dependency-free: parsing produces a plain AST that the
//! WebFINDIT query processor (in the `webfindit` core crate) executes
//! against co-databases and data sources.

#![warn(missing_docs)]

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod translate;

pub use ast::{Arg, LinkTarget, Literal, PredOp, Predicate, Statement};
pub use parser::parse;
pub use translate::{predicate_to_sql, translate_invoke_to_sql};

use std::fmt;

/// Errors from WebTassili parsing or translation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TassiliError {
    /// The input failed to parse.
    Parse {
        /// Description of the problem.
        message: String,
        /// Byte offset where it was noticed.
        offset: usize,
    },
    /// A translation was requested that the target cannot express.
    Translate(String),
}

impl fmt::Display for TassiliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TassiliError::Parse { message, offset } => {
                write!(f, "WebTassili parse error at byte {offset}: {message}")
            }
            TassiliError::Translate(msg) => write!(f, "translation error: {msg}"),
        }
    }
}

impl std::error::Error for TassiliError {}

/// Result alias for WebTassili operations.
pub type TassiliResult<T> = Result<T, TassiliError>;
