//! Fixture: the member-site servant the wave ships to. Exports the
//! `execute` verb so the shipping client is not an IDL orphan — the
//! fixture's only finding is the eager merge's guard.

pub struct MemberServant;

impl Servant for MemberServant {
    fn interface_id(&self) -> &str {
        "IDL:fixture/Member:1.0"
    }

    fn invoke(&self, operation: &str, args: &[Value]) -> InvokeResult {
        match operation {
            "execute" => run_native(args),
            other => fail(other),
        }
    }

    fn operations(&self) -> Vec<String> {
        vec!["execute".to_string()]
    }
}
