//! Shared helpers for the benchmark harness and the figure/experiment
//! regeneration binaries. See DESIGN.md §6 for the experiment index and
//! EXPERIMENTS.md for recorded results.

#![warn(missing_docs)]

/// Print a figure/table header in a consistent style.
pub fn header(id: &str, caption: &str) {
    println!("==================================================================");
    println!("{id}: {caption}");
    println!("==================================================================");
}

/// Format a mean of a series.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation of a series.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert!((stddev(&[2.0, 4.0]) - std::f64::consts::SQRT_2).abs() < 1e-12);
        assert_eq!(stddev(&[1.0]), 0.0);
    }
}
