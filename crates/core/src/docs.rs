//! The document store: the Web stand-in for documentation URLs.
//!
//! Co-database descriptors carry documentation URLs ("a file containing
//! multimedia data or a program that plays a product demonstration").
//! In the paper these resolve over HTTP; here a [`DocStore`] resolves
//! them in-process. Formats mirror the Figure-4 format picker (text,
//! HTML, and the Java-applet placeholder).

use crate::{WebfinditError, WfResult};
use std::collections::BTreeMap;
use webfindit_base::sync::RwLock;

/// Supported documentation formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DocFormat {
    /// Plain text.
    Text,
    /// HTML (the Figure-5 display).
    Html,
    /// A Java applet demo (represented by its descriptor text).
    Applet,
}

impl std::fmt::Display for DocFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DocFormat::Text => "text",
            DocFormat::Html => "HTML",
            DocFormat::Applet => "Java applet",
        };
        f.write_str(s)
    }
}

/// One stored document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    /// Format of the content.
    pub format: DocFormat,
    /// The content itself.
    pub content: String,
}

/// URL → documents (one per available format).
#[derive(Default)]
pub struct DocStore {
    docs: RwLock<BTreeMap<String, BTreeMap<DocFormat, Document>>>,
}

impl DocStore {
    /// Create an empty store.
    pub fn new() -> DocStore {
        DocStore::default()
    }

    /// Publish a document under `url` in its format.
    pub fn publish(&self, url: &str, doc: Document) {
        self.docs
            .write()
            .entry(url.to_owned())
            .or_default()
            .insert(doc.format, doc);
    }

    /// The formats available at `url` (the Figure-4 buttons).
    pub fn formats(&self, url: &str) -> Vec<DocFormat> {
        self.docs
            .read()
            .get(url)
            .map(|m| m.keys().copied().collect())
            .unwrap_or_default()
    }

    /// Fetch `url` in `format`.
    pub fn fetch(&self, url: &str, format: DocFormat) -> WfResult<Document> {
        self.docs
            .read()
            .get(url)
            .and_then(|m| m.get(&format))
            .cloned()
            .ok_or_else(|| WebfinditError::UnknownDocument(format!("{url} ({format})")))
    }

    /// Fetch `url` in the best available format (HTML > text > applet).
    pub fn fetch_best(&self, url: &str) -> WfResult<Document> {
        for format in [DocFormat::Html, DocFormat::Text, DocFormat::Applet] {
            if let Ok(doc) = self.fetch(url, format) {
                return Ok(doc);
            }
        }
        Err(WebfinditError::UnknownDocument(url.to_owned()))
    }

    /// Number of published URLs.
    pub fn len(&self) -> usize {
        self.docs.read().len()
    }

    /// True when nothing is published.
    pub fn is_empty(&self) -> bool {
        self.docs.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_and_fetch() {
        let store = DocStore::new();
        let url = "http://www.medicine.uq.edu.au/RBH";
        store.publish(
            url,
            Document {
                format: DocFormat::Html,
                content: "<h1>Royal Brisbane Hospital</h1>".into(),
            },
        );
        store.publish(
            url,
            Document {
                format: DocFormat::Text,
                content: "Royal Brisbane Hospital".into(),
            },
        );
        assert_eq!(store.formats(url), vec![DocFormat::Text, DocFormat::Html]);
        assert!(store
            .fetch(url, DocFormat::Html)
            .unwrap()
            .content
            .contains("<h1>"));
        assert_eq!(store.fetch_best(url).unwrap().format, DocFormat::Html);
        assert!(store.fetch(url, DocFormat::Applet).is_err());
        assert!(store.fetch_best("http://nowhere").is_err());
        assert_eq!(store.len(), 1);
    }
}
