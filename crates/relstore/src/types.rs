//! SQL data types and runtime values.
//!
//! [`Datum`] is the single runtime value representation: typed scalars
//! plus SQL `NULL`. Comparison follows SQL semantics — `NULL` compares
//! as *unknown* (`None`) in predicate position — while [`Datum::sort_cmp`]
//! provides the total order used by `ORDER BY`, index keys, `DISTINCT`,
//! and `GROUP BY`, where SQL treats NULLs as equal and orders them first.

use std::cmp::Ordering;
use std::fmt;

/// Declared column types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer (covers the paper's `int` columns).
    Int,
    /// 64-bit IEEE float (`real` in the paper's examples).
    Double,
    /// UTF-8 string (`string` / `varchar`).
    Text,
    /// Boolean.
    Bool,
    /// Calendar date, stored as days since 1970-01-01.
    Date,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "INT",
            DataType::Double => "DOUBLE",
            DataType::Text => "TEXT",
            DataType::Bool => "BOOL",
            DataType::Date => "DATE",
        };
        f.write_str(s)
    }
}

impl DataType {
    /// Parse a type name as written in `CREATE TABLE`, accepting the
    /// common vendor spellings.
    pub fn parse(name: &str) -> Option<DataType> {
        Some(match name.to_ascii_uppercase().as_str() {
            "INT" | "INTEGER" | "BIGINT" | "SMALLINT" | "NUMBER" => DataType::Int,
            "DOUBLE" | "REAL" | "FLOAT" | "DECIMAL" | "NUMERIC" => DataType::Double,
            "TEXT" | "VARCHAR" | "VARCHAR2" | "CHAR" | "STRING" | "CLOB" => DataType::Text,
            "BOOL" | "BOOLEAN" => DataType::Bool,
            "DATE" | "DATETIME" | "TIMESTAMP" => DataType::Date,
            _ => return None,
        })
    }
}

/// A runtime value.
#[derive(Debug, Clone)]
pub enum Datum {
    /// SQL NULL.
    Null,
    /// Integer.
    Int(i64),
    /// Double-precision float.
    Double(f64),
    /// String.
    Text(String),
    /// Boolean.
    Bool(bool),
    /// Date as days since the Unix epoch.
    Date(i32),
}

/// One stored or produced tuple.
pub type Row = Vec<Datum>;

impl Datum {
    /// The dynamic type, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        Some(match self {
            Datum::Null => return None,
            Datum::Int(_) => DataType::Int,
            Datum::Double(_) => DataType::Double,
            Datum::Text(_) => DataType::Text,
            Datum::Bool(_) => DataType::Bool,
            Datum::Date(_) => DataType::Date,
        })
    }

    /// True for SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Datum::Null)
    }

    /// Coerce into `target` if losslessly possible (Int→Double, and Text
    /// date literals → Date). Returns `None` when the coercion is not
    /// meaningful.
    pub fn coerce(&self, target: DataType) -> Option<Datum> {
        match (self, target) {
            (Datum::Null, _) => Some(Datum::Null),
            (Datum::Int(v), DataType::Double) => Some(Datum::Double(*v as f64)),
            (Datum::Int(v), DataType::Int) => Some(self.clone().tap_int(*v)),
            (Datum::Text(s), DataType::Date) => parse_date(s).map(Datum::Date),
            (d, t) if d.data_type() == Some(t) => Some(d.clone()),
            _ => None,
        }
    }

    fn tap_int(self, _v: i64) -> Datum {
        self
    }

    /// SQL comparison: `None` when either side is NULL or the types are
    /// incomparable; numeric types compare cross-type.
    pub fn sql_cmp(&self, other: &Datum) -> Option<Ordering> {
        match (self, other) {
            (Datum::Null, _) | (_, Datum::Null) => None,
            (Datum::Int(a), Datum::Int(b)) => Some(a.cmp(b)),
            (Datum::Double(a), Datum::Double(b)) => a.partial_cmp(b),
            (Datum::Int(a), Datum::Double(b)) => (*a as f64).partial_cmp(b),
            (Datum::Double(a), Datum::Int(b)) => a.partial_cmp(&(*b as f64)),
            (Datum::Text(a), Datum::Text(b)) => Some(a.cmp(b)),
            (Datum::Bool(a), Datum::Bool(b)) => Some(a.cmp(b)),
            (Datum::Date(a), Datum::Date(b)) => Some(a.cmp(b)),
            // A Text date literal compared against a Date column.
            (Datum::Text(a), Datum::Date(b)) => parse_date(a).map(|d| d.cmp(b)),
            (Datum::Date(a), Datum::Text(b)) => parse_date(b).map(|d| a.cmp(&d)),
            _ => None,
        }
    }

    /// Total order for sorting/grouping: NULLs first and equal to each
    /// other, then by type rank, then by value.
    pub fn sort_cmp(&self, other: &Datum) -> Ordering {
        fn rank(d: &Datum) -> u8 {
            match d {
                Datum::Null => 0,
                Datum::Bool(_) => 1,
                Datum::Int(_) | Datum::Double(_) => 2,
                Datum::Date(_) => 3,
                Datum::Text(_) => 4,
            }
        }
        match self.sql_cmp(other) {
            Some(ord) => ord,
            None => match (self.is_null(), other.is_null()) {
                (true, true) => Ordering::Equal,
                (true, false) => Ordering::Less,
                (false, true) => Ordering::Greater,
                (false, false) => {
                    // Incomparable non-null types: order by rank for a
                    // stable, if arbitrary, total order.
                    let (ra, rb) = (rank(self), rank(other));
                    if ra != rb {
                        ra.cmp(&rb)
                    } else {
                        // NaN vs number lands here: order NaN last.
                        match (self, other) {
                            (Datum::Double(a), Datum::Double(b)) => a.is_nan().cmp(&b.is_nan()),
                            _ => Ordering::Equal,
                        }
                    }
                }
            },
        }
    }

    /// Equality under the grouping/sorting order (NULL == NULL).
    pub fn group_eq(&self, other: &Datum) -> bool {
        self.sort_cmp(other) == Ordering::Equal
    }

    /// A canonical key string for hashing in group-by/distinct/hash-join.
    ///
    /// Two datums with `group_eq` true produce identical keys. Numeric
    /// values are canonicalized through f64 so `Int(1)` and `Double(1.0)`
    /// collide, matching `sql_cmp`.
    pub fn group_key(&self, out: &mut String) {
        use std::fmt::Write;
        match self {
            Datum::Null => out.push('N'),
            Datum::Bool(b) => {
                let _ = write!(out, "b{}", *b as u8);
            }
            Datum::Int(v) => {
                let _ = write!(out, "f{}", (*v as f64).to_bits());
            }
            Datum::Double(v) => {
                let _ = write!(out, "f{}", v.to_bits());
            }
            Datum::Date(v) => {
                let _ = write!(out, "d{v}");
            }
            Datum::Text(s) => {
                let _ = write!(out, "t{}:{s}", s.len());
            }
        }
        out.push('|');
    }
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datum::Null => write!(f, "NULL"),
            Datum::Int(v) => write!(f, "{v}"),
            Datum::Double(v) => write!(f, "{v}"),
            Datum::Text(s) => write!(f, "{s}"),
            Datum::Bool(b) => write!(f, "{b}"),
            Datum::Date(d) => write!(f, "{}", format_date(*d)),
        }
    }
}

impl PartialEq for Datum {
    fn eq(&self, other: &Self) -> bool {
        self.group_eq(other)
    }
}

const DAYS_IN_MONTH: [i64; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

fn is_leap(y: i64) -> bool {
    (y % 4 == 0 && y % 100 != 0) || y % 400 == 0
}

/// Parse `YYYY-MM-DD` into days since 1970-01-01.
pub fn parse_date(s: &str) -> Option<i32> {
    let mut parts = s.splitn(3, '-');
    let y: i64 = parts.next()?.parse().ok()?;
    let m: i64 = parts.next()?.parse().ok()?;
    let d: i64 = parts.next()?.parse().ok()?;
    if !(1..=12).contains(&m) {
        return None;
    }
    let max_d = DAYS_IN_MONTH[(m - 1) as usize] + i64::from(m == 2 && is_leap(y));
    if !(1..=max_d).contains(&d) {
        return None;
    }
    // Days from 1970-01-01 to the start of year y.
    let mut days: i64 = 0;
    if y >= 1970 {
        for year in 1970..y {
            days += 365 + i64::from(is_leap(year));
        }
    } else {
        for year in y..1970 {
            days -= 365 + i64::from(is_leap(year));
        }
    }
    for month in 1..m {
        days += DAYS_IN_MONTH[(month - 1) as usize] + i64::from(month == 2 && is_leap(y));
    }
    days += d - 1;
    i32::try_from(days).ok()
}

/// Format days-since-epoch as `YYYY-MM-DD`.
pub fn format_date(mut days: i32) -> String {
    let mut y: i64 = 1970;
    loop {
        let len = 365 + i32::from(is_leap(y));
        if days >= len {
            days -= len;
            y += 1;
        } else if days < 0 {
            y -= 1;
            days += 365 + i32::from(is_leap(y));
        } else {
            break;
        }
    }
    let mut m = 1usize;
    loop {
        let len = (DAYS_IN_MONTH[m - 1] + i64::from(m == 2 && is_leap(y))) as i32;
        if days >= len {
            days -= len;
            m += 1;
        } else {
            break;
        }
    }
    format!("{y:04}-{:02}-{:02}", m, days + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_roundtrip_known_values() {
        assert_eq!(parse_date("1970-01-01"), Some(0));
        assert_eq!(parse_date("1970-02-01"), Some(31));
        assert_eq!(parse_date("1971-01-01"), Some(365));
        assert_eq!(parse_date("1972-03-01"), Some(365 * 2 + 31 + 29)); // leap
        assert_eq!(parse_date("1969-12-31"), Some(-1));
        for s in ["1999-06-15", "2026-07-05", "1960-02-29", "2000-02-29"] {
            let d = parse_date(s).unwrap();
            assert_eq!(format_date(d), s, "roundtrip {s}");
        }
    }

    #[test]
    fn date_rejects_invalid() {
        assert_eq!(parse_date("1999-13-01"), None);
        assert_eq!(parse_date("1999-02-29"), None); // not a leap year
        assert_eq!(parse_date("1999-06-31"), None);
        assert_eq!(parse_date("junk"), None);
        assert_eq!(parse_date("1999-06"), None);
    }

    #[test]
    fn sql_cmp_null_is_unknown() {
        assert_eq!(Datum::Null.sql_cmp(&Datum::Int(1)), None);
        assert_eq!(Datum::Int(1).sql_cmp(&Datum::Null), None);
        assert_eq!(Datum::Null.sql_cmp(&Datum::Null), None);
    }

    #[test]
    fn cross_numeric_comparison() {
        assert_eq!(
            Datum::Int(2).sql_cmp(&Datum::Double(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Datum::Double(1.5).sql_cmp(&Datum::Int(2)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn text_date_comparison() {
        let d = Datum::Date(parse_date("1999-06-15").unwrap());
        assert_eq!(
            Datum::Text("1999-06-15".into()).sql_cmp(&d),
            Some(Ordering::Equal)
        );
        assert_eq!(
            d.sql_cmp(&Datum::Text("2000-01-01".into())),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn sort_order_nulls_first_and_equal() {
        assert_eq!(Datum::Null.sort_cmp(&Datum::Null), Ordering::Equal);
        assert_eq!(Datum::Null.sort_cmp(&Datum::Int(0)), Ordering::Less);
        assert_eq!(Datum::Int(0).sort_cmp(&Datum::Null), Ordering::Greater);
    }

    #[test]
    fn group_keys_collide_exactly_when_equal() {
        let cases = [
            (Datum::Int(1), Datum::Double(1.0), true),
            (Datum::Int(1), Datum::Int(2), false),
            (Datum::Null, Datum::Null, true),
            (Datum::Text("a".into()), Datum::Text("a".into()), true),
            (Datum::Text("a".into()), Datum::Text("b".into()), false),
            (Datum::Bool(true), Datum::Bool(true), true),
        ];
        for (a, b, expect_equal) in cases {
            let (mut ka, mut kb) = (String::new(), String::new());
            a.group_key(&mut ka);
            b.group_key(&mut kb);
            assert_eq!(ka == kb, expect_equal, "{a:?} vs {b:?}");
            assert_eq!(a.group_eq(&b), expect_equal);
        }
    }

    #[test]
    fn coercion() {
        assert_eq!(
            Datum::Int(3).coerce(DataType::Double),
            Some(Datum::Double(3.0))
        );
        assert_eq!(Datum::Null.coerce(DataType::Int), Some(Datum::Null));
        assert_eq!(Datum::Text("x".into()).coerce(DataType::Int), None);
        assert_eq!(
            Datum::Text("1999-01-01".into()).coerce(DataType::Date),
            Some(Datum::Date(parse_date("1999-01-01").unwrap()))
        );
    }

    #[test]
    fn type_parsing_accepts_vendor_spellings() {
        assert_eq!(DataType::parse("VARCHAR2"), Some(DataType::Text));
        assert_eq!(DataType::parse("number"), Some(DataType::Int));
        assert_eq!(DataType::parse("real"), Some(DataType::Double));
        assert_eq!(DataType::parse("blob"), None);
    }
}
