//! Framed byte transports for GIOP.
//!
//! GIOP is transport-agnostic; IIOP is its mapping to TCP. WebFINDIT's
//! three ORBs talk IIOP over real sockets, so this module provides:
//!
//! * [`FramedTcp`] — GIOP framing over a `TcpStream` (the genuine IIOP
//!   path used by the multi-ORB integration tests and benches);
//! * [`PipeTransport`] — an in-process duplex pipe with identical framing
//!   semantics, for fast deterministic tests and single-process
//!   deployments;
//! * [`FaultyTransport`] — a wrapper that injects truncation and
//!   corruption faults, used by the failure-injection tests.
//!
//! All transports move whole frames: a 12-byte GIOP header followed by
//! exactly `body_size` bytes.

use crate::giop::{GiopHeader, GiopMessage};
use crate::{WireError, WireResult};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::time::Duration;

/// A bidirectional, message-framed byte channel.
pub trait Transport: Send {
    /// Send one complete GIOP frame.
    fn send_frame(&mut self, frame: &[u8]) -> WireResult<()>;

    /// Receive one complete GIOP frame (header + body).
    fn recv_frame(&mut self) -> WireResult<Vec<u8>>;

    /// Encode and send a message in one step.
    fn send_message(&mut self, msg: &GiopMessage, order: crate::cdr::ByteOrder) -> WireResult<()> {
        let frame = msg.encode(order)?;
        self.send_frame(&frame)
    }

    /// Receive and decode a message in one step.
    fn recv_message(&mut self) -> WireResult<GiopMessage> {
        let frame = self.recv_frame()?;
        GiopMessage::decode_frame(&frame)
    }
}

/// GIOP framing over a TCP stream — the literal IIOP of the paper.
#[derive(Debug)]
pub struct FramedTcp {
    stream: TcpStream,
}

impl FramedTcp {
    /// Wrap a connected stream.
    pub fn new(stream: TcpStream) -> Self {
        FramedTcp { stream }
    }

    /// Connect to `host:port` with a bounded timeout so a dead endpoint
    /// fails fast instead of hanging a discovery traversal.
    pub fn connect(host: &str, port: u16) -> WireResult<Self> {
        let addr = format!("{host}:{port}");
        let stream = TcpStream::connect(&addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        Ok(FramedTcp { stream })
    }

    /// Clone the underlying stream (TCP streams are duplicable handles).
    pub fn try_clone(&self) -> WireResult<Self> {
        Ok(FramedTcp {
            stream: self.stream.try_clone()?,
        })
    }

    /// Set or clear the read timeout on the underlying stream.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> WireResult<()> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Sever both directions of the underlying stream, unblocking any
    /// thread parked in `recv_frame` on a clone of this transport.
    pub fn shutdown(&self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

impl Transport for FramedTcp {
    fn send_frame(&mut self, frame: &[u8]) -> WireResult<()> {
        self.stream.write_all(frame)?;
        Ok(())
    }

    fn recv_frame(&mut self) -> WireResult<Vec<u8>> {
        let mut hdr = [0u8; 12];
        if let Err(e) = self.stream.read_exact(&mut hdr) {
            return Err(if e.kind() == std::io::ErrorKind::UnexpectedEof {
                WireError::Closed
            } else {
                WireError::Io(e)
            });
        }
        let header = GiopHeader::from_bytes(&hdr)?;
        let mut body = vec![0u8; header.body_size as usize];
        self.stream.read_exact(&mut body)?;
        let mut frame = Vec::with_capacity(12 + body.len());
        frame.extend_from_slice(&hdr);
        frame.extend_from_slice(&body);
        Ok(frame)
    }
}

/// One endpoint of an in-process duplex pipe.
///
/// Created in pairs by [`duplex`]; whatever one side sends the other
/// receives, whole frames at a time. Dropping either end closes the pipe.
#[derive(Debug)]
pub struct PipeTransport {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

/// Create a connected pair of in-process transports.
pub fn duplex() -> (PipeTransport, PipeTransport) {
    let (atx, brx) = channel();
    let (btx, arx) = channel();
    (
        PipeTransport { tx: atx, rx: arx },
        PipeTransport { tx: btx, rx: brx },
    )
}

impl Transport for PipeTransport {
    fn send_frame(&mut self, frame: &[u8]) -> WireResult<()> {
        self.tx.send(frame.to_vec()).map_err(|_| WireError::Closed)
    }

    fn recv_frame(&mut self) -> WireResult<Vec<u8>> {
        self.rx.recv().map_err(|_| WireError::Closed)
    }
}

/// Kinds of injected transport faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Deliver frames untouched.
    None,
    /// Cut each outgoing frame to at most this many bytes.
    Truncate(usize),
    /// Overwrite the GIOP magic of outgoing frames.
    CorruptMagic,
    /// Flip the declared body size to a huge value.
    InflateSize,
    /// Drop outgoing frames entirely (the receiver sees `Closed` when the
    /// wrapper is later dropped, or blocks — callers pair this with
    /// timeouts).
    DropFrames,
}

/// A transport wrapper that injects faults on the send path.
///
/// Used by failure-injection tests to prove the decoder and the ORB's
/// error handling survive hostile or broken peers.
pub struct FaultyTransport<T: Transport> {
    inner: T,
    fault: Fault,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wrap `inner`, applying `fault` to every sent frame.
    pub fn new(inner: T, fault: Fault) -> Self {
        FaultyTransport { inner, fault }
    }

    /// Change the active fault.
    pub fn set_fault(&mut self, fault: Fault) {
        self.fault = fault;
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn send_frame(&mut self, frame: &[u8]) -> WireResult<()> {
        match self.fault {
            Fault::None => self.inner.send_frame(frame),
            Fault::Truncate(n) => {
                let cut = frame.len().min(n);
                self.inner.send_frame(&frame[..cut])
            }
            Fault::CorruptMagic => {
                let mut f = frame.to_vec();
                if f.len() >= 4 {
                    f[0] = b'P';
                    f[1] = b'O';
                    f[2] = b'I';
                    f[3] = b'G';
                }
                self.inner.send_frame(&f)
            }
            Fault::InflateSize => {
                let mut f = frame.to_vec();
                if f.len() >= 12 {
                    // Body size field at offset 8; write an absurd size in
                    // the frame's own byte order (bit 0 of flags octet).
                    let huge = (crate::MAX_MESSAGE_SIZE + 17).to_be_bytes();
                    let huge_le = (crate::MAX_MESSAGE_SIZE + 17).to_le_bytes();
                    if f[6] & 1 == 0 {
                        f[8..12].copy_from_slice(&huge);
                    } else {
                        f[8..12].copy_from_slice(&huge_le);
                    }
                }
                self.inner.send_frame(&f)
            }
            Fault::DropFrames => Ok(()),
        }
    }

    fn recv_frame(&mut self) -> WireResult<Vec<u8>> {
        self.inner.recv_frame()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdr::ByteOrder;
    use crate::giop::{reply_ok, request};
    use crate::value::Value;
    use std::net::TcpListener;
    use std::thread;

    #[test]
    fn pipe_roundtrip() {
        let (mut a, mut b) = duplex();
        let msg = request(1, b"k".to_vec(), "ping", vec![]);
        a.send_message(&msg, ByteOrder::BigEndian).unwrap();
        assert_eq!(b.recv_message().unwrap(), msg);

        let rep = reply_ok(1, Value::string("pong"));
        b.send_message(&rep, ByteOrder::LittleEndian).unwrap();
        assert_eq!(a.recv_message().unwrap(), rep);
    }

    #[test]
    fn pipe_close_detected() {
        let (mut a, b) = duplex();
        drop(b);
        assert!(matches!(a.send_frame(&[0u8; 12]), Err(WireError::Closed)));
        assert!(matches!(a.recv_frame(), Err(WireError::Closed)));
    }

    #[test]
    fn tcp_roundtrip_over_loopback() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t = FramedTcp::new(stream);
            let msg = t.recv_message().unwrap();
            match msg {
                GiopMessage::Request { header, .. } => {
                    t.send_message(
                        &reply_ok(header.request_id, Value::string("over tcp")),
                        ByteOrder::LittleEndian,
                    )
                    .unwrap();
                }
                other => panic!("expected request, got {other:?}"),
            }
        });

        let mut client = FramedTcp::connect("127.0.0.1", addr.port()).unwrap();
        client
            .send_message(
                &request(42, b"obj".to_vec(), "echo", vec![Value::Long(5)]),
                ByteOrder::BigEndian,
            )
            .unwrap();
        match client.recv_message().unwrap() {
            GiopMessage::Reply {
                request_id, body, ..
            } => {
                assert_eq!(request_id, 42);
                assert_eq!(body.as_str(), Some("over tcp"));
            }
            other => panic!("expected reply, got {other:?}"),
        }
        server.join().unwrap();
    }

    #[test]
    fn corrupt_magic_detected_by_receiver() {
        let (a, mut b) = duplex();
        let mut faulty = FaultyTransport::new(a, Fault::CorruptMagic);
        faulty
            .send_message(
                &request(1, b"k".to_vec(), "op", vec![]),
                ByteOrder::BigEndian,
            )
            .unwrap();
        assert!(matches!(b.recv_message(), Err(WireError::BadMagic(_))));
    }

    #[test]
    fn truncated_frame_detected_by_receiver() {
        let (a, mut b) = duplex();
        let mut faulty = FaultyTransport::new(a, Fault::Truncate(15));
        faulty
            .send_message(
                &request(1, b"key".to_vec(), "operation", vec![Value::Long(9)]),
                ByteOrder::BigEndian,
            )
            .unwrap();
        // The pipe delivers a 15-byte frame whose header declares a larger
        // body; decode must fail, not panic.
        assert!(b.recv_message().is_err());
    }

    #[test]
    fn inflated_size_rejected() {
        let (a, mut b) = duplex();
        let mut faulty = FaultyTransport::new(a, Fault::InflateSize);
        faulty
            .send_message(
                &request(1, b"k".to_vec(), "op", vec![]),
                ByteOrder::BigEndian,
            )
            .unwrap();
        assert!(matches!(b.recv_message(), Err(WireError::TooLarge { .. })));
    }

    #[test]
    fn dropped_frames_never_arrive() {
        let (a, b) = duplex();
        let mut faulty = FaultyTransport::new(a, Fault::DropFrames);
        faulty
            .send_message(
                &request(1, b"k".to_vec(), "op", vec![]),
                ByteOrder::BigEndian,
            )
            .unwrap();
        drop(faulty); // closes the pipe
        let mut b = b;
        assert!(matches!(b.recv_frame(), Err(WireError::Closed)));
    }
}
