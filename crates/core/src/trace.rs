//! Layered execution traces — the instrumented view of Figure 3.
//!
//! A [`Trace`] collects timestamped events tagged with the WebFINDIT
//! layer they occurred in, so a query's journey (query layer →
//! communication layer → metadata layer → data layer and back) can be
//! printed exactly as the paper's layer diagram describes it.

use std::fmt;
use std::time::Instant;

/// The four layers of the WebFINDIT architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layer {
    /// Browser + query processor.
    Query,
    /// ORBs and IIOP.
    Communication,
    /// Co-database servers.
    Metadata,
    /// Databases and information source interfaces.
    Data,
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Layer::Query => "query",
            Layer::Communication => "communication",
            Layer::Metadata => "meta-data",
            Layer::Data => "data",
        };
        f.write_str(s)
    }
}

/// One trace event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Which layer produced it.
    pub layer: Layer,
    /// What happened.
    pub message: String,
    /// Microseconds since the trace began.
    pub at_micros: u128,
}

/// An ordered event collector.
pub struct Trace {
    started: Instant,
    events: Vec<TraceEvent>,
}

impl Default for Trace {
    fn default() -> Self {
        Self::new()
    }
}

impl Trace {
    /// Start an empty trace.
    pub fn new() -> Trace {
        Trace {
            started: Instant::now(),
            events: Vec::new(),
        }
    }

    /// Record an event in `layer`.
    pub fn event(&mut self, layer: Layer, message: impl Into<String>) {
        self.events.push(TraceEvent {
            layer,
            message: message.into(),
            at_micros: self.started.elapsed().as_micros(),
        });
    }

    /// Record a Communication-layer event annotated with the live state
    /// of the IIOP channel layer — the in-flight gauge, the timeout,
    /// retry, and eviction counters, and the circuit-breaker transition
    /// counters — so a rendered trace shows what the multiplexed
    /// channels were doing (and which endpoints were being shed) at
    /// that moment.
    pub fn channel_event(
        &mut self,
        message: impl Into<String>,
        metrics: &webfindit_orb::OrbMetrics,
    ) {
        let m = metrics.snapshot();
        self.event(
            Layer::Communication,
            format!(
                "{} [in-flight {}, timeouts {}, retries {}, evictions {}, \
                 breaker opened {}/probes {}/closed {}/rejected {}, \
                 ior cache {}h/{}m/{}inv, codb cache {}h/{}m]",
                message.into(),
                m.in_flight,
                m.timeouts,
                m.retries,
                m.evictions,
                m.breaker_opened,
                m.breaker_probes,
                m.breaker_closed,
                m.breaker_rejections,
                m.ior_cache_hits,
                m.ior_cache_misses,
                m.ior_cache_invalidations,
                m.codb_cache_hits,
                m.codb_cache_misses
            ),
        );
    }

    /// Record a Query-layer event annotated with the discovery fanout
    /// and metadata-cache state: how many parallel waves were
    /// dispatched, over how many sites, the widest wave, and the
    /// IOR/co-database cache hit ratios — the knobs behind the
    /// parallel-discovery experiment (E8).
    pub fn discovery_event(
        &mut self,
        message: impl Into<String>,
        metrics: &webfindit_orb::OrbMetrics,
    ) {
        let m = metrics.snapshot();
        self.event(
            Layer::Query,
            format!(
                "{} [waves {}, fanout sites {}, peak width {}, \
                 ior cache {}h/{}m/{}inv, codb cache {}h/{}m]",
                message.into(),
                m.fanout_waves,
                m.fanout_sites,
                m.fanout_peak_width,
                m.ior_cache_hits,
                m.ior_cache_misses,
                m.ior_cache_invalidations,
                m.codb_cache_hits,
                m.codb_cache_misses
            ),
        );
    }

    /// Record a Data-layer event annotated with the data-layer
    /// execution counters the wrappers report through
    /// [`webfindit_orb::OrbMetrics::record_query_exec`]: rows and bytes
    /// scanned, index hits, and rows spilled to sorts/aggregation —
    /// plus the durability counters mirrored through
    /// [`webfindit_orb::OrbMetrics::record_durability`]: WAL appends,
    /// checkpoint pages flushed, and records replayed/rolled back by
    /// crash recovery — so a rendered trace shows how much storage work
    /// the member databases did, the way it already shows channel and
    /// discovery work.
    pub fn data_event(&mut self, message: impl Into<String>, metrics: &webfindit_orb::OrbMetrics) {
        let m = metrics.snapshot();
        self.event(
            Layer::Data,
            format!(
                "{} [rows scanned {}, bytes {}, index hits {}, spilled {}, \
                 wal appends {}, pages flushed {}, redo {}, undo {}]",
                message.into(),
                m.data_rows_scanned,
                m.data_bytes_scanned,
                m.data_index_hits,
                m.data_rows_spilled,
                m.data_wal_appends,
                m.data_pages_flushed,
                m.data_recovery_redo,
                m.data_recovery_undo
            ),
        );
    }

    /// Record a Query-layer event annotated with the federated-query
    /// counters the coordinator reports through
    /// [`webfindit_orb::OrbMetrics::record_fed_query`],
    /// [`webfindit_orb::OrbMetrics::record_fed_site`], and
    /// [`webfindit_orb::OrbMetrics::record_fed_merge`]: queries fanned
    /// out, per-site subqueries shipped, sites that answered vs
    /// degraded, rows and bytes shipped over the wire, rows surviving
    /// the merge, and semi-join keys shipped — so a rendered trace
    /// shows the shape of a cross-site fan-out the way it already shows
    /// discovery waves.
    pub fn fed_event(&mut self, message: impl Into<String>, metrics: &webfindit_orb::OrbMetrics) {
        let m = metrics.snapshot();
        self.event(
            Layer::Query,
            format!(
                "{} [fed queries {}, subqueries {}, sites {}ok/{}deg, \
                 rows {}shipped/{}merged, bytes shipped {}, keys shipped {}]",
                message.into(),
                m.fed_queries,
                m.fed_subqueries,
                m.fed_sites_answered,
                m.fed_sites_degraded,
                m.fed_rows_shipped,
                m.fed_rows_merged,
                m.fed_bytes_shipped,
                m.fed_keys_shipped
            ),
        );
    }

    /// Record a Communication-layer event annotated with the GIOP
    /// transport totals: request/reply traffic (sent, served, local
    /// short-circuits), raw bytes on the wire in both directions,
    /// exception and LocateReply counts, replies that arrived after
    /// their caller gave up, the fragmentation counters (replies split,
    /// fragments sent and reassembled), and the reactor's backpressure
    /// pauses — the wire-level half of the Communication layer the
    /// breaker-centric [`Trace::channel_event`] does not cover.
    pub fn transport_event(
        &mut self,
        message: impl Into<String>,
        metrics: &webfindit_orb::OrbMetrics,
    ) {
        let m = metrics.snapshot();
        self.event(
            Layer::Communication,
            format!(
                "{} [requests {}s/{}r, local {}, bytes {}out/{}in, \
                 exceptions {}, locates {}, late {}, \
                 fragmented {}/{}sent/{}reasm, backpressure {}]",
                message.into(),
                m.requests_sent,
                m.requests_served,
                m.local_dispatches,
                m.bytes_sent,
                m.bytes_received,
                m.exceptions_sent,
                m.locates_served,
                m.late_replies,
                m.fragmented_replies,
                m.fragments_sent,
                m.fragments_reassembled,
                m.backpressure_pauses
            ),
        );
    }

    /// Record a Communication-layer event annotated with the
    /// concurrency-analysis state: the `deadlock-detect` detector's
    /// report totals (after mirroring them into `metrics` via
    /// [`webfindit_orb::OrbMetrics::sync_analysis`]) and whether the
    /// detector is compiled in at all — so a rendered trace from an
    /// instrumented run shows at a glance if the workload tripped any
    /// lock-order or hold-across-blocking rule.
    pub fn analysis_event(
        &mut self,
        message: impl Into<String>,
        metrics: &webfindit_orb::OrbMetrics,
    ) {
        metrics.sync_analysis();
        let m = metrics.snapshot();
        self.event(
            Layer::Communication,
            format!(
                "{} [detector {}, lock-order cycles {}, blocking violations {}]",
                message.into(),
                if webfindit_base::sync::detect::enabled() {
                    "on"
                } else {
                    "off"
                },
                m.analysis_lock_cycles,
                m.analysis_blocking_violations
            ),
        );
    }

    /// The collected events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events that occurred in `layer`.
    pub fn in_layer(&self, layer: Layer) -> Vec<&TraceEvent> {
        self.events.iter().filter(|e| e.layer == layer).collect()
    }

    /// Render as an indented layer transcript (indentation depth encodes
    /// the layer: query < communication < metadata/data).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            let indent = match e.layer {
                Layer::Query => 0,
                Layer::Communication => 1,
                Layer::Metadata | Layer::Data => 2,
            };
            out.push_str(&"  ".repeat(indent));
            out.push_str(&format!("[{}] {}\n", e.layer, e.message));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn events_keep_order_and_layer() {
        let mut t = Trace::new();
        t.event(Layer::Query, "parse");
        t.event(Layer::Communication, "GIOP request");
        t.event(Layer::Metadata, "co-database lookup");
        t.event(Layer::Data, "SQL execution");
        assert_eq!(t.events().len(), 4);
        assert_eq!(t.in_layer(Layer::Communication).len(), 1);
        let rendered = t.render();
        assert!(rendered.contains("[query] parse"));
        assert!(rendered.contains("    [data] SQL execution"));
        // Monotonic timestamps.
        let times: Vec<u128> = t.events().iter().map(|e| e.at_micros).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn data_event_reports_exec_counters() {
        let metrics = webfindit_orb::OrbMetrics::default();
        metrics.record_query_exec(40, 1024, 3, 5);
        metrics.record_durability(7, 2, 19, 1);
        let mut t = Trace::new();
        t.data_event("SQL executed by the wrapper", &metrics);
        let rendered = t.render();
        assert!(rendered.contains("[data] SQL executed by the wrapper"));
        assert!(rendered.contains("rows scanned 40"));
        assert!(rendered.contains("index hits 3"));
        assert!(rendered.contains("spilled 5"));
        assert!(rendered.contains("wal appends 7"));
        assert!(rendered.contains("pages flushed 2"));
        assert!(rendered.contains("redo 19"));
        assert!(rendered.contains("undo 1"));
    }

    #[test]
    fn fed_event_reports_federation_counters() {
        let metrics = webfindit_orb::OrbMetrics::default();
        metrics.record_fed_query(3, 8);
        metrics.record_fed_site(true, 20, 400);
        metrics.record_fed_site(false, 0, 0);
        metrics.record_fed_merge(20);
        let mut t = Trace::new();
        t.fed_event("federated fan-out merged", &metrics);
        let rendered = t.render();
        assert!(rendered.contains("[query] federated fan-out merged"));
        assert!(rendered.contains("fed queries 1"));
        assert!(rendered.contains("subqueries 3"));
        assert!(rendered.contains("sites 1ok/1deg"));
        assert!(rendered.contains("rows 20shipped/20merged"));
        assert!(rendered.contains("bytes shipped 400"));
        assert!(rendered.contains("keys shipped 8"));
    }

    #[test]
    fn transport_event_reports_wire_counters() {
        let metrics = webfindit_orb::OrbMetrics::default();
        metrics.requests_sent.fetch_add(3, Ordering::Relaxed);
        metrics.requests_served.fetch_add(2, Ordering::Relaxed);
        metrics.local_dispatches.fetch_add(1, Ordering::Relaxed);
        metrics.bytes_sent.fetch_add(512, Ordering::Relaxed);
        metrics.bytes_received.fetch_add(256, Ordering::Relaxed);
        metrics.exceptions_sent.fetch_add(1, Ordering::Relaxed);
        metrics.locates_served.fetch_add(4, Ordering::Relaxed);
        metrics.late_replies.fetch_add(1, Ordering::Relaxed);
        metrics.fragmented_replies.fetch_add(1, Ordering::Relaxed);
        metrics.fragments_sent.fetch_add(6, Ordering::Relaxed);
        metrics
            .fragments_reassembled
            .fetch_add(6, Ordering::Relaxed);
        metrics.backpressure_pauses.fetch_add(2, Ordering::Relaxed);
        let mut t = Trace::new();
        t.transport_event("GIOP reply flushed", &metrics);
        let rendered = t.render();
        assert!(rendered.contains("[communication] GIOP reply flushed"));
        assert!(rendered.contains("requests 3s/2r"));
        assert!(rendered.contains("local 1"));
        assert!(rendered.contains("bytes 512out/256in"));
        assert!(rendered.contains("exceptions 1"));
        assert!(rendered.contains("locates 4"));
        assert!(rendered.contains("late 1"));
        assert!(rendered.contains("fragmented 1/6sent/6reasm"));
        assert!(rendered.contains("backpressure 2"));
    }

    #[test]
    fn analysis_event_reports_detector_state() {
        let metrics = webfindit_orb::OrbMetrics::default();
        let mut t = Trace::new();
        t.analysis_event("post-discovery check", &metrics);
        let rendered = t.render();
        assert!(rendered.contains("post-discovery check"));
        assert!(rendered.contains("lock-order cycles"));
        // Without the feature the detector reports "off" and zeros; an
        // instrumented clean run reports "on" and still zeros.
        assert!(rendered.contains("cycles 0"));
        assert!(rendered.contains("violations 0"));
    }
}
