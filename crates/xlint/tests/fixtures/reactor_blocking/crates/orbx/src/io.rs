//! Fixture: the cross-file helper the reactor reaches.

pub fn helper_flush(r: &Reactor) {
    let q = r.queue.lock();
    wire.send_frame(&q);
}
