//! Finding and witness-path types shared by every rule.

use std::fmt;
use std::path::PathBuf;

/// One hop on an interprocedural witness path: a function (or the final
/// offending site) at a `file:line` location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    pub what: String,
    pub file: PathBuf,
    pub line: usize,
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}:{})", self.what, self.file.display(), self.line)
    }
}

/// One lint hit, before allowlist filtering. Interprocedural rules
/// attach a witness path — the chain of call sites from the rule's
/// root (e.g. `Reactor::run`) to the offending operation.
#[derive(Debug, Clone)]
pub struct Finding {
    pub file: PathBuf,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
    pub witness: Vec<Step>,
}

impl Finding {
    pub fn new(file: PathBuf, line: usize, rule: &'static str, message: String) -> Self {
        Finding {
            file,
            line,
            rule,
            message,
            witness: Vec::new(),
        }
    }

    pub fn with_witness(mut self, witness: Vec<Step>) -> Self {
        self.witness = witness;
        self
    }

    /// The witness path rendered as one ` -> `-joined line, empty for
    /// intra-procedural findings.
    pub fn witness_line(&self) -> String {
        self.witness
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(" -> ")
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )?;
        if !self.witness.is_empty() {
            write!(f, "\n    witness: {}", self.witness_line())?;
        }
        Ok(())
    }
}
