//! Rule evaluation over extracted facts and the resolved call graph.
//!
//! Token-level rules (std-sync-direct, lock-unwrap,
//! thread-spawn-dispatch, same-statement guard-across-blocking) are
//! emitted by the fact extractor itself; this module adds the
//! file-level lock-order-cycle pass and the three interprocedural
//! families: `reactor-blocking`, `idl-drift`, `metrics-drift`, plus the
//! transitive form of `guard-across-blocking`.

use crate::facts::{FileFacts, BLOCKING_CALL_NAMES};
use crate::graph::{fn_at, CallGraph, NodeId};
use crate::report::{Finding, Step};
use crate::scrub::{in_ranges, is_ident_byte};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Per-file scope: findings-scope files produce findings; evidence
/// files (tests/, benches/) only contribute facts — a test invoking an
/// operation proves the servant arm is exercised, but nothing inside a
/// test is ever reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    Findings,
    Evidence,
}

fn is_findings(scopes: &[Scope], file: usize) -> bool {
    scopes[file] == Scope::Findings
}

/// Token findings from the statement machine, filtered to non-test
/// lines of findings-scope files, plus the intra-file
/// lock-order-cycle pass.
pub fn token_rules(files: &[FileFacts], scopes: &[Scope]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        if !is_findings(scopes, fi) {
            continue;
        }
        for f in &file.token_findings {
            if !in_ranges(&file.test_ranges, f.line) {
                out.push(f.clone());
            }
        }
        // Site pairs acquired in both orders within one file.
        for ((a, b), line) in &file.order_edges {
            if a < b {
                if let Some(rev_line) = file.order_edges.get(&(b.clone(), a.clone())) {
                    let anchor = *line.min(rev_line);
                    if !in_ranges(&file.test_ranges, anchor) {
                        out.push(Finding::new(
                            file.path.clone(),
                            anchor,
                            "lock-order-cycle",
                            format!(
                                "sites `{a}` and `{b}` are acquired in both orders \
                                 (lines {line} and {rev_line}) — pick one order"
                            ),
                        ));
                    }
                }
            }
        }
    }
    out
}

/// Render a BFS path as witness steps. Each step is a function with the
/// line of its call into the next hop; the last step carries
/// `site_line`, where the offending operation lives.
fn witness_steps(files: &[FileFacts], path: &[(NodeId, usize)], site_line: usize) -> Vec<Step> {
    let mut steps = Vec::new();
    for (i, (node, _)) in path.iter().enumerate() {
        let f = fn_at(files, *node);
        let line = match path.get(i + 1) {
            Some((_, call_line)) => *call_line,
            None => site_line,
        };
        steps.push(Step {
            what: f.qualified.clone(),
            file: files[node.0].path.clone(),
            line,
        });
    }
    steps
}

/// `reactor-blocking`: blocking tokens or tracked-lock acquisitions in
/// any function transitively reachable from `Reactor::run`. The
/// reactor thread must never wait on anything but `poll(2)`.
pub fn reactor_blocking(files: &[FileFacts], scopes: &[Scope], graph: &CallGraph) -> Vec<Finding> {
    let mut roots = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        if !is_findings(scopes, fi) {
            continue;
        }
        for (gi, f) in file.fns.iter().enumerate() {
            if f.name == "run" && f.impl_type.as_deref() == Some("Reactor") && !f.in_test {
                roots.push((fi, gi));
            }
        }
    }
    if roots.is_empty() {
        return Vec::new();
    }
    let reach = graph.reach(&roots);
    let mut out = Vec::new();
    let mut nodes: Vec<NodeId> = reach.keys().copied().collect();
    nodes.sort();
    for n in nodes {
        if !is_findings(scopes, n.0) {
            continue;
        }
        let f = fn_at(files, n);
        if f.in_test {
            continue;
        }
        let path = graph.path_to(&reach, n);
        for acq in &f.acquires {
            if in_ranges(&files[n.0].test_ranges, acq.line) {
                continue;
            }
            let witness = witness_steps(files, &path, acq.line);
            out.push(
                Finding::new(
                    files[n.0].path.clone(),
                    acq.line,
                    "reactor-blocking",
                    format!(
                        "tracked lock `{}` acquired in `{}`, which is reachable from the \
                         reactor event loop — the reactor thread must never wait on a lock",
                        acq.site, f.qualified
                    ),
                )
                .with_witness(witness),
            );
        }
        for b in &f.blocking {
            if in_ranges(&files[n.0].test_ranges, b.line) {
                continue;
            }
            let witness = witness_steps(files, &path, b.line);
            out.push(
                Finding::new(
                    files[n.0].path.clone(),
                    b.line,
                    "reactor-blocking",
                    format!(
                        "blocking `{}` in `{}`, which is reachable from the reactor \
                         event loop — blocking work belongs on the worker pool",
                        b.token.trim_matches(['.', '(']),
                        f.qualified
                    ),
                )
                .with_witness(witness),
            );
        }
    }
    out
}

/// Transitive `guard-across-blocking`: a lock guard is held at a call
/// site whose callee (transitively) performs a blocking operation. The
/// same-statement form is handled by the token rules; call sites whose
/// name IS a blocking token are skipped here to avoid double-reporting.
pub fn guard_transitive(files: &[FileFacts], scopes: &[Scope], graph: &CallGraph) -> Vec<Finding> {
    // Reverse reachability: which nodes can reach a blocking op?
    let mut rev_edges: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    for (&from, outs) in &graph.edges {
        for &(to, _) in outs {
            rev_edges.entry(to).or_default().push(from);
        }
    }
    let mut blocks: HashSet<NodeId> = HashSet::new();
    let mut queue: Vec<NodeId> = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        for (gi, f) in file.fns.iter().enumerate() {
            if !f.blocking.is_empty() && !f.in_test {
                blocks.insert((fi, gi));
                queue.push((fi, gi));
            }
        }
    }
    while let Some(n) = queue.pop() {
        if let Some(parents) = rev_edges.get(&n) {
            for &p in parents {
                if blocks.insert(p) {
                    queue.push(p);
                }
            }
        }
    }

    let mut out = Vec::new();
    let mut seen: BTreeSet<(usize, usize, String)> = BTreeSet::new();
    for (fi, file) in files.iter().enumerate() {
        if !is_findings(scopes, fi) {
            continue;
        }
        for (gi, f) in file.fns.iter().enumerate() {
            if f.in_test {
                continue;
            }
            for call in &f.calls {
                if call.guards.is_empty() || BLOCKING_CALL_NAMES.contains(&call.name.as_str()) {
                    continue;
                }
                if in_ranges(&file.test_ranges, call.line) {
                    continue;
                }
                // Direct tokens on the same line are already reported.
                if f.blocking.iter().any(|b| b.line == call.line) {
                    continue;
                }
                let Some(outs) = graph.edges.get(&(fi, gi)) else {
                    continue;
                };
                let targets: Vec<NodeId> = outs
                    .iter()
                    .filter(|(t, line)| *line == call.line && blocks.contains(t))
                    .map(|(t, _)| *t)
                    .collect();
                let Some(&target) = targets.first() else {
                    continue;
                };
                // Forward BFS from the target to the nearest blocking fn
                // for the witness path.
                let reach = graph.reach(&[target]);
                let mut best: Option<(usize, NodeId)> = None;
                for node in reach.keys() {
                    let tf = fn_at(files, *node);
                    if tf.blocking.is_empty() {
                        continue;
                    }
                    let len = graph.path_to(&reach, *node).len();
                    if best.is_none() || len < best.unwrap().0 {
                        best = Some((len, *node));
                    }
                }
                let Some((_, bnode)) = best else { continue };
                let bf = fn_at(files, bnode);
                let token = bf.blocking[0].token;
                for g in &call.guards {
                    let key = (fi, call.line, g.site.clone());
                    if !seen.insert(key) {
                        continue;
                    }
                    let mut witness = vec![Step {
                        what: f.qualified.clone(),
                        file: file.path.clone(),
                        line: call.line,
                    }];
                    witness.extend(witness_steps(
                        files,
                        &graph.path_to(&reach, bnode),
                        bf.blocking[0].line,
                    ));
                    out.push(
                        Finding::new(
                            file.path.clone(),
                            call.line,
                            "guard-across-blocking",
                            format!(
                                "guard `{}` (site `{}`, acquired line {}) held across call to \
                                 `{}`, which reaches blocking `{}`",
                                g.name,
                                g.site,
                                g.line,
                                call.name,
                                token.trim_matches(['.', '(']),
                            ),
                        )
                        .with_witness(witness),
                    );
                }
            }
        }
    }
    out
}

/// An operation-name string literal: lowercase identifier shaped like an
/// IDL operation. Filters out `Class.method` driver strings, format
/// fragments, and error text.
fn is_op_literal(s: &str) -> bool {
    !s.is_empty()
        && s.bytes()
            .next()
            .is_some_and(|b| b.is_ascii_lowercase() || b == b'_')
        && s.bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
}

struct Forwarder {
    qualified: String,
    file: usize,
    /// Line of the call that forwards the `&str` parameter onward.
    fwd_line: usize,
    /// Name of the callee the parameter is forwarded to.
    next: String,
}

/// `idl-drift`: client-invoked operations with no matching servant arm,
/// servant arms nothing ever exercises, and `operations()` lists that
/// disagree with the dispatch arms.
pub fn idl_drift(files: &[FileFacts], scopes: &[Scope]) -> Vec<Finding> {
    // Every operation any servant exports (arms or operations() lists),
    // including test/bench servants — a test client invoking a
    // test servant's op is not drift.
    let mut exported: BTreeSet<String> = BTreeSet::new();
    for file in files {
        for s in &file.servants {
            for (arm, _) in &s.arms {
                exported.insert(arm.clone());
            }
            for op in &s.operations {
                exported.insert(op.clone());
            }
        }
    }

    // Forwarder fixpoint: a function that threads one of its `&str`
    // parameters into `invoke`/`invoke_with` (or another forwarder) is
    // itself an invoke site for literal-extraction purposes.
    let enclosing_fn = |file: &FileFacts, offset: usize| -> Option<usize> {
        file.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.body_start <= offset && offset <= f.body_end)
            .max_by_key(|(_, f)| f.body_start)
            .map(|(i, _)| i)
    };
    let mut family: BTreeSet<String> = ["invoke", "invoke_with"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut forwarders: BTreeMap<String, Forwarder> = BTreeMap::new();
    loop {
        let mut grew = false;
        for (fi, file) in files.iter().enumerate() {
            for call in &file.arg_calls {
                if !family.contains(&call.name) {
                    continue;
                }
                let Some(fidx) = enclosing_fn(file, call.offset) else {
                    continue;
                };
                let f = &file.fns[fidx];
                if f.str_params.iter().any(|p| call.ident_args.contains(p))
                    && !family.contains(&f.name)
                {
                    family.insert(f.name.clone());
                    forwarders.insert(
                        f.name.clone(),
                        Forwarder {
                            qualified: f.qualified.clone(),
                            file: fi,
                            fwd_line: call.line,
                            next: call.name.clone(),
                        },
                    );
                    grew = true;
                }
            }
        }
        if !grew {
            break;
        }
    }

    // Every op literal passed to an invoke-family call, everywhere.
    let mut exercised: BTreeSet<String> = BTreeSet::new();
    let mut orphan_candidates: Vec<(String, usize, usize, String, Option<usize>)> = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        for call in &file.arg_calls {
            if !family.contains(&call.name) {
                continue;
            }
            let Some(op) = call.str_args.iter().find(|s| is_op_literal(s)) else {
                continue;
            };
            exercised.insert(op.clone());
            let in_test = scopes[fi] == Scope::Evidence || in_ranges(&file.test_ranges, call.line);
            if !in_test && is_findings(scopes, fi) {
                orphan_candidates.push((
                    op.clone(),
                    fi,
                    call.line,
                    call.name.clone(),
                    enclosing_fn(file, call.offset),
                ));
            }
        }
    }

    let mut out = Vec::new();

    // Orphan invokes: a non-test client invokes an op no servant exports.
    for (op, fi, line, callee, encl) in orphan_candidates {
        if exported.contains(&op) {
            continue;
        }
        // Witness: the forwarder chain from this call down to the real
        // invoke, when the literal travels through helpers.
        let mut witness = Vec::new();
        if let Some(fidx) = encl {
            witness.push(Step {
                what: files[fi].fns[fidx].qualified.clone(),
                file: files[fi].path.clone(),
                line,
            });
        }
        let mut next = callee.clone();
        let mut hops = 0;
        while let Some(fw) = forwarders.get(&next) {
            witness.push(Step {
                what: fw.qualified.clone(),
                file: files[fw.file].path.clone(),
                line: fw.fwd_line,
            });
            next = fw.next.clone();
            hops += 1;
            if hops > 5 {
                break;
            }
        }
        out.push(
            Finding::new(
                files[fi].path.clone(),
                line,
                "idl-drift",
                format!(
                    "client invokes `{op}` but no servant exports that operation — \
                     the call compiles and fails at runtime with UnknownOperation"
                ),
            )
            .with_witness(witness),
        );
    }

    // Dead arms and operations()/arms disagreement, per non-test servant.
    for (fi, file) in files.iter().enumerate() {
        if !is_findings(scopes, fi) {
            continue;
        }
        for s in &file.servants {
            if s.in_test {
                continue;
            }
            let iface = s.interface_id.as_deref().unwrap_or("<unknown interface>");
            for (arm, line) in &s.arms {
                if !exercised.contains(arm) {
                    out.push(Finding::new(
                        file.path.clone(),
                        *line,
                        "idl-drift",
                        format!(
                            "servant arm `{arm}` on `{}` ({iface}) is never invoked by \
                             any client, test, or bench — dead dispatch surface",
                            s.type_name
                        ),
                    ));
                }
            }
            if !s.operations.is_empty() {
                let arm_set: BTreeSet<&str> = s.arms.iter().map(|(a, _)| a.as_str()).collect();
                let op_set: BTreeSet<&str> = s.operations.iter().map(String::as_str).collect();
                for op in op_set.difference(&arm_set) {
                    out.push(Finding::new(
                        file.path.clone(),
                        s.line,
                        "idl-drift",
                        format!(
                            "`{}::operations()` lists `{op}` but `invoke()` has no \
                             matching dispatch arm",
                            s.type_name
                        ),
                    ));
                }
                for arm in arm_set.difference(&op_set) {
                    out.push(Finding::new(
                        file.path.clone(),
                        s.line,
                        "idl-drift",
                        format!(
                            "`{}::invoke()` dispatches `{arm}` but `operations()` \
                             does not list it",
                            s.type_name
                        ),
                    ));
                }
            }
        }
    }
    out
}

/// `metrics-drift`: counters declared but never recorded, or recorded
/// but never surfaced through `Trace`.
pub fn metrics_drift(files: &[FileFacts], scopes: &[Scope]) -> Vec<Finding> {
    let traced: BTreeSet<&str> = files
        .iter()
        .flat_map(|f| f.trace_mentions.iter().map(String::as_str))
        .collect();

    let mut out = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        if !is_findings(scopes, fi) {
            continue;
        }
        for c in &file.counters {
            let recorded = files
                .iter()
                .enumerate()
                .filter(|(i, _)| is_findings(scopes, *i))
                .any(|(_, other)| field_recorded(other, &c.field));
            if !recorded {
                out.push(Finding::new(
                    file.path.clone(),
                    c.line,
                    "metrics-drift",
                    format!(
                        "counter `{}.{}` is declared but never recorded anywhere",
                        c.struct_name, c.field
                    ),
                ));
            } else if !traced.contains(c.field.as_str()) {
                out.push(Finding::new(
                    file.path.clone(),
                    c.line,
                    "metrics-drift",
                    format!(
                        "counter `{}.{}` is recorded but never surfaced through `Trace` — \
                         the measurement exists and nobody can see it",
                        c.struct_name, c.field
                    ),
                ));
            }
        }
    }
    out
}

/// Is `.field` mutated (fetch_add/fetch_sub/fetch_max/store) or passed
/// by reference (to `add`/`gauge_add`/…) anywhere in this file's
/// non-test code?
fn field_recorded(file: &FileFacts, field: &str) -> bool {
    let needle = format!(".{field}");
    let text = &file.scrubbed;
    let bytes = text.as_bytes();
    let mut from = 0;
    while let Some(pos) = text[from..].find(&needle) {
        let at = from + pos;
        from = at + needle.len();
        let end = at + needle.len();
        if bytes.get(end).copied().is_some_and(is_ident_byte) {
            continue; // longer identifier
        }
        let line = text[..at].bytes().filter(|b| *b == b'\n').count() + 1;
        if in_ranges(&file.test_ranges, line) {
            continue;
        }
        // Method chains wrap: `self.field\n    .fetch_add(…)`.
        let after = text[end..].trim_start();
        if after.starts_with(".fetch_add(")
            || after.starts_with(".fetch_sub(")
            || after.starts_with(".fetch_max(")
            || after.starts_with(".store(")
        {
            return true;
        }
        // `&self.field` / `&metrics.field` — reference taken, i.e.
        // passed to a record helper like `add(&m.field, n)`.
        let mut j = at;
        while j > 0 && (is_ident_byte(bytes[j - 1]) || bytes[j - 1] == b'.' || bytes[j - 1] == b':')
        {
            j -= 1;
        }
        if j > 0 && bytes[j - 1] == b'&' {
            return true;
        }
    }
    false
}
