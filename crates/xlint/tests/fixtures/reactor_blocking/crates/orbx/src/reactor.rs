//! Fixture: a reactor whose event loop reaches a tracked lock and a
//! blocking call through a call-graph cycle and a cross-file helper.

pub struct Reactor {
    queue: Mutex<Vec<u8>>,
}

impl Reactor {
    pub fn run(&self) {
        self.tick();
    }

    fn tick(&self) {
        self.step();
    }

    fn step(&self) {
        // Cycle back into tick: reachability must terminate.
        self.tick();
        helper_flush(self);
    }
}
