//! A reusable byte-buffer pool for the CDR encode path.
//!
//! Every GIOP encode used to allocate (and later free) a fresh `Vec<u8>`
//! per message — twice, in fact: once for the CDR body and once for the
//! assembled frame. Under the reactor core an ORB encodes on every
//! request it serves, so those allocations become the dominant
//! per-message cost after the syscalls themselves. [`BufPool`] keeps a
//! bounded shelf of retired buffers; [`PooledBuf`] is a frame that
//! returns its storage to the shelf on drop, so steady-state traffic
//! recycles the same handful of allocations.
//!
//! The pool is deliberately simple: a mutex-guarded stack. Encoding is
//! measured in microseconds and the critical section is a `Vec::pop` /
//! `Vec::push`, so contention is negligible next to the allocator work
//! it avoids. Buffers that grew beyond [`BufPool::max_retained`] are
//! dropped instead of shelved, so one multi-megabyte reply cannot pin
//! its high-water allocation forever.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use webfindit_base::sync::Mutex;

/// Default bound on how many retired buffers the pool shelves.
const DEFAULT_MAX_POOLED: usize = 64;
/// Default bound on the capacity a shelved buffer may retain.
const DEFAULT_MAX_RETAINED: usize = 256 * 1024;

/// A bounded shelf of reusable byte buffers.
#[derive(Debug)]
pub struct BufPool {
    shelf: Mutex<Vec<Vec<u8>>>,
    max_pooled: usize,
    max_retained: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for BufPool {
    fn default() -> Self {
        BufPool::new(DEFAULT_MAX_POOLED, DEFAULT_MAX_RETAINED)
    }
}

impl BufPool {
    /// A pool shelving at most `max_pooled` buffers, each retaining at
    /// most `max_retained` bytes of capacity.
    pub fn new(max_pooled: usize, max_retained: usize) -> Self {
        BufPool {
            shelf: Mutex::new_labeled(Vec::new(), "wire::BufPool.shelf"),
            max_pooled: max_pooled.max(1),
            max_retained: max_retained.max(4096),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// A shared default-sized pool.
    pub fn shared() -> Arc<BufPool> {
        Arc::new(BufPool::default())
    }

    /// Take a cleared buffer from the shelf, or allocate a fresh one.
    pub fn take(&self) -> Vec<u8> {
        match self.shelf.lock().pop() {
            Some(mut buf) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                buf.clear();
                buf
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(256)
            }
        }
    }

    /// Return a buffer to the shelf (dropped if the shelf is full or the
    /// buffer grew beyond the retention bound).
    pub fn give(&self, buf: Vec<u8>) {
        if buf.capacity() > self.max_retained {
            return;
        }
        let mut shelf = self.shelf.lock();
        if shelf.len() < self.max_pooled {
            shelf.push(buf);
        }
    }

    /// `(hits, misses)` — how often `take` reused a shelved buffer.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Buffers currently shelved.
    pub fn shelved(&self) -> usize {
        self.shelf.lock().len()
    }
}

/// An encoded frame backed by pool storage; returns it on drop.
///
/// Dereferences to the frame bytes, so it drops into any API taking
/// `&[u8]` (e.g. `Transport::send_frame`).
#[derive(Debug)]
pub struct PooledBuf {
    buf: Option<Vec<u8>>,
    pool: Arc<BufPool>,
}

impl PooledBuf {
    /// Wrap `buf`, to be returned to `pool` when this handle drops.
    pub fn new(buf: Vec<u8>, pool: Arc<BufPool>) -> Self {
        PooledBuf {
            buf: Some(buf),
            pool,
        }
    }

    /// Detach the bytes from the pool (they will not be recycled).
    pub fn into_vec(mut self) -> Vec<u8> {
        self.buf.take().expect("buffer present until drop")
    }
}

impl std::ops::Deref for PooledBuf {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.buf.as_deref().expect("buffer present until drop")
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if let Some(buf) = self.buf.take() {
            self.pool.give(buf);
        }
    }
}

/// An outgoing frame in either pooled or plain storage, so send queues
/// can carry both without forcing an allocation policy on callers.
#[derive(Debug)]
pub enum FrameBuf {
    /// Pool-backed storage, recycled when the frame is fully written.
    Pooled(PooledBuf),
    /// Ordinary owned bytes.
    Plain(Vec<u8>),
}

impl std::ops::Deref for FrameBuf {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match self {
            FrameBuf::Pooled(b) => b,
            FrameBuf::Plain(v) => v,
        }
    }
}

impl From<PooledBuf> for FrameBuf {
    fn from(b: PooledBuf) -> Self {
        FrameBuf::Pooled(b)
    }
}

impl From<Vec<u8>> for FrameBuf {
    fn from(v: Vec<u8>) -> Self {
        FrameBuf::Plain(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_give_recycles() {
        let pool = BufPool::shared();
        let mut a = pool.take();
        a.extend_from_slice(b"hello");
        let ptr = a.as_ptr();
        pool.give(a);
        assert_eq!(pool.shelved(), 1);
        let b = pool.take();
        assert_eq!(b.as_ptr(), ptr, "same allocation reused");
        assert!(b.is_empty(), "recycled buffer is cleared");
        let (hits, misses) = pool.stats();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn oversized_buffers_not_retained() {
        let pool = BufPool::new(4, 4096);
        pool.give(Vec::with_capacity(1 << 20));
        assert_eq!(pool.shelved(), 0);
    }

    #[test]
    fn shelf_is_bounded() {
        let pool = BufPool::new(2, 4096);
        for _ in 0..5 {
            pool.give(Vec::with_capacity(64));
        }
        assert_eq!(pool.shelved(), 2);
    }

    #[test]
    fn pooled_buf_returns_on_drop() {
        let pool = BufPool::shared();
        {
            let mut v = pool.take();
            v.extend_from_slice(&[1, 2, 3]);
            let framed = PooledBuf::new(v, Arc::clone(&pool));
            assert_eq!(&framed[..], &[1, 2, 3]);
        }
        assert_eq!(pool.shelved(), 1);
    }

    #[test]
    fn into_vec_detaches() {
        let pool = BufPool::shared();
        let framed = PooledBuf::new(vec![9], Arc::clone(&pool));
        let v = framed.into_vec();
        assert_eq!(v, vec![9]);
        assert_eq!(pool.shelved(), 0);
    }
}
