//! Quickstart: build a three-database federation from scratch, organize
//! it into a coalition with a service link, and run the find → connect
//! → browse → query interaction WebFINDIT was designed for.
//!
//! Run with: `cargo run -p webfindit-examples --example quickstart`

use std::sync::Arc;
use webfindit::federation::{Federation, SiteSpec, SiteVendor};
use webfindit::processor::Processor;
use webfindit::session::BrowserSession;
use webfindit::wire::cdr::ByteOrder;
use webfindit_examples::{banner, block};
use webfindit_relstore::{Database, Dialect};

fn site(fed: &Arc<Federation>, name: &str, orb: &str, dialect: Dialect, topic: &str) {
    let mut db = Database::new(name, dialect);
    db.execute("CREATE TABLE notes (id INT PRIMARY KEY, body TEXT)")
        .expect("create");
    for i in 0..3 {
        db.execute(&format!(
            "INSERT INTO notes VALUES ({i}, 'note {i} at {name}')"
        ))
        .expect("insert");
    }
    fed.add_relational_site(
        SiteSpec {
            name: name.into(),
            orb: orb.into(),
            vendor: SiteVendor::Relational(dialect),
            host: format!("{}.example.net", name.to_ascii_lowercase()),
            information_type: topic.into(),
            documentation_url: format!("http://docs.example.net/{name}"),
            interface: Vec::new(),
        },
        db,
    )
    .expect("deploy site");
}

fn main() {
    banner("1. Deploy a federation: two ORBs, three databases");
    let fed = Federation::new().expect("federation");
    fed.add_orb("Orbix", "orbix.example.net", 9000, ByteOrder::BigEndian)
        .expect("orb");
    fed.add_orb(
        "VisiBroker",
        "visi.example.net",
        9001,
        ByteOrder::LittleEndian,
    )
    .expect("orb");
    site(&fed, "ClinicA", "Orbix", Dialect::Oracle, "patient care");
    site(&fed, "ClinicB", "VisiBroker", Dialect::Db2, "patient care");
    site(
        &fed,
        "LabC",
        "VisiBroker",
        Dialect::MSql,
        "pathology results",
    );
    println!("sites: {:?}", fed.site_names());

    banner("2. Organize: a coalition and a service link");
    let calls = fed
        .form_coalition(
            "PatientCare",
            None,
            "patient care providers",
            &["ClinicA", "ClinicB"],
        )
        .expect("coalition");
    println!("formed coalition PatientCare ({calls} ORB calls)");
    let calls = fed
        .add_service_link(&webfindit_codb::ServiceLink {
            from: webfindit_codb::LinkEnd::Database("LabC".into()),
            to: webfindit_codb::LinkEnd::Coalition("PatientCare".into()),
            description: "pathology results for patient care".into(),
        })
        .expect("link");
    println!("added service link LabC → PatientCare ({calls} ORB calls)");

    banner("3. A ClinicA user explores and queries with WebTassili");
    let processor = Processor::new(fed.clone());
    let mut session = BrowserSession::new("ClinicA");
    for stmt in [
        "Find Coalitions With Information patient care;",
        "Connect To Coalition PatientCare;",
        "Display Instances of Class PatientCare;",
        "Display Access Information of Instance ClinicB;",
        "Submit Native 'SELECT body FROM notes WHERE id = 1' To Instance ClinicB;",
        "Find Coalitions With Information pathology results;",
    ] {
        println!("\nWebTassili> {stmt}");
        match processor.submit(&mut session, stmt, None) {
            Ok(response) => block(&response.render()),
            Err(e) => block(&format!("error: {e}")),
        }
    }

    banner("4. Shut the federation down");
    fed.shutdown();
    println!("done.");
}
