//! Fixture: one healthy counter, one recorded-but-invisible, one dead.

pub struct FooMetrics {
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    pub ghosts: AtomicU64,
}

impl FooMetrics {
    pub fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_miss(&self) {
        // Wrapped method chain: still counts as recorded.
        self.misses
            .fetch_add(1, Ordering::Relaxed);
    }
}
