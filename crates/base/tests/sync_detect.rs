//! Negative-path tests for the `deadlock-detect` runtime detector:
//! each deliberately planted bug must produce exactly one report.
//!
//! The detector's violation list, dedup set, and acquired-before graph
//! are process-global, and the tests in this binary run on parallel
//! threads, so every test (a) serializes on `SEQ`, (b) drains leftover
//! violations before its scenario, and (c) asserts only on violations
//! that name its own unique lock labels.
#![cfg(feature = "deadlock-detect")]

use webfindit_base::sync::detect::{self, ViolationKind};
use webfindit_base::sync::Mutex;

static SEQ: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn serialized() -> std::sync::MutexGuard<'static, ()> {
    let guard = SEQ.lock().unwrap_or_else(|e| e.into_inner());
    let _ = detect::take_violations();
    guard
}

fn drained_mentioning(labels: &[&str]) -> Vec<detect::Violation> {
    detect::take_violations()
        .into_iter()
        .filter(|v| labels.iter().any(|l| v.message.contains(l)))
        .collect()
}

#[test]
fn abba_inversion_reports_exactly_once() {
    let _seq = serialized();
    let a = Mutex::new_labeled(0u32, "abba.lockA");
    let b = Mutex::new_labeled(0u32, "abba.lockB");

    // Establish the order A -> B, then invert to B -> A. The inversion
    // is repeated to prove the report is deduplicated, and exercised
    // from a second thread to prove the graph is cross-thread.
    {
        let _ga = a.lock();
        let _gb = b.lock();
    }
    std::thread::scope(|s| {
        s.spawn(|| {
            for _ in 0..3 {
                let _gb = b.lock();
                let _ga = a.lock();
            }
        });
    });

    let hits = drained_mentioning(&["abba.lockA", "abba.lockB"]);
    assert_eq!(hits.len(), 1, "expected exactly one ABBA report: {hits:?}");
    assert_eq!(hits[0].kind, ViolationKind::LockOrderCycle);
    assert!(hits[0].message.contains("abba.lockA"));
    assert!(hits[0].message.contains("abba.lockB"));
    assert!(detect::counters().lock_order_cycles >= 1);
}

#[test]
fn hold_across_blocking_reports_exactly_once() {
    let _seq = serialized();
    let c = Mutex::new_labeled(0u32, "hold.lockC");

    for _ in 0..3 {
        let _g = c.lock();
        detect::blocking_region("hold.region", || {});
    }

    let hits = drained_mentioning(&["hold.lockC"]);
    assert_eq!(
        hits.len(),
        1,
        "expected exactly one hold-across report: {hits:?}"
    );
    assert_eq!(hits[0].kind, ViolationKind::HoldAcrossBlocking);
    assert!(hits[0].message.contains("hold.region"));
    assert!(detect::counters().blocking_violations >= 1);
}

#[test]
fn acquire_inside_blocking_reports_exactly_once() {
    let _seq = serialized();
    let d = Mutex::new_labeled(0u32, "acq.lockD");

    for _ in 0..3 {
        detect::blocking_region("acq.region", || {
            let _g = d.lock();
        });
    }

    let hits = drained_mentioning(&["acq.lockD"]);
    assert_eq!(
        hits.len(),
        1,
        "expected exactly one acquire-in-region report: {hits:?}"
    );
    assert_eq!(hits[0].kind, ViolationKind::AcquireInBlocking);
    assert!(hits[0].message.contains("acq.region"));
}

#[test]
fn exempt_lock_is_not_flagged_and_is_listed() {
    let _seq = serialized();
    let e = Mutex::new_labeled(0u32, "exempt.lockE")
        .allow_hold_across_blocking("test: deliberate hold across a declared region");

    {
        let _g = e.lock();
        detect::blocking_region("exempt.region", || {});
    }
    detect::blocking_region("exempt.region2", || {
        let _g = e.lock();
    });

    let hits = drained_mentioning(&["exempt.lockE"]);
    assert!(hits.is_empty(), "exempt lock must not be flagged: {hits:?}");
    assert!(
        detect::exemptions()
            .iter()
            .any(|(label, just)| label == "exempt.lockE" && just.contains("deliberate")),
        "exemption must be listed: {:?}",
        detect::exemptions()
    );
}

#[test]
fn consistent_order_and_clean_regions_report_nothing() {
    let _seq = serialized();
    let x = Mutex::new_labeled(0u32, "clean.lockX");
    let y = Mutex::new_labeled(0u32, "clean.lockY");

    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                for _ in 0..50 {
                    let _gx = x.lock();
                    let _gy = y.lock();
                }
                detect::blocking_region("clean.region", || {
                    std::hint::black_box(0);
                });
            });
        }
    });

    let hits = drained_mentioning(&["clean.lockX", "clean.lockY"]);
    assert!(hits.is_empty(), "clean usage must not be flagged: {hits:?}");
}
