//! E4 (latency view) — wall-clock cost of coalition churn operations
//! (form/join/leave cycles) on a 16-site federation, including the
//! metadata propagation over IIOP.

use std::sync::atomic::{AtomicU64, Ordering};
use webfindit::synth::{build, SynthConfig};
use webfindit_base::bench::Criterion;
use webfindit_base::{criterion_group, criterion_main};

fn bench_churn(c: &mut Criterion) {
    let synth = build(&SynthConfig {
        databases: 16,
        coalition_size: 4,
        orbs: 3,
        extra_links: 0,
        ring_links: true,
        seed: 77,
    })
    .expect("synthetic federation");
    let fed = synth.fed.clone();
    let counter = AtomicU64::new(0);

    let mut group = c.benchmark_group("churn_16_sites");
    group.sample_size(20);

    group.bench_function("form_join_leave_dissolve_cycle", |b| {
        b.iter(|| {
            // A unique coalition name per iteration keeps the operations
            // honest (no already-exists shortcuts).
            let n = counter.fetch_add(1, Ordering::Relaxed);
            let name = format!("Churn{n}");
            let members: Vec<&str> = synth.sites.iter().take(3).map(String::as_str).collect();
            fed.form_coalition(&name, None, "churn topic", &members)
                .unwrap();
            fed.join_coalition(&synth.sites[3], &name, "churn topic")
                .unwrap();
            fed.leave_coalition(&synth.sites[0], &name).unwrap();
            for site in fed.site_names() {
                let handle = fed.site(&site).unwrap();
                let _ = handle.codb.write().dissolve_coalition(&name);
            }
        });
    });

    group.bench_function("advertise_one_source", |b| {
        // The steady-state operation: one site re-advertising through a
        // coalition of 4 (form_coalition is idempotent about existing
        // members, so this measures the propagation round-trips).
        let members: Vec<&str> = synth.sites.iter().take(4).map(String::as_str).collect();
        fed.form_coalition("Steady", None, "steady topic", &members)
            .unwrap();
        b.iter(|| {
            fed.form_coalition("Steady", None, "steady topic", &members)
                .unwrap();
        });
    });

    group.finish();
    synth.fed.shutdown();
}

criterion_group!(benches, bench_churn);
criterion_main!(benches);
