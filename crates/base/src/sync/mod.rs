//! Poison-free lock wrappers over `std::sync`, instrumented for
//! concurrency analysis.
//!
//! The workspace treats a panic while holding a lock as an isolated
//! event (servant panics are already caught at the dispatch boundary),
//! so lock poisoning is noise: these wrappers recover the guard from a
//! poisoned lock instead of propagating an error. The API mirrors the
//! subset of `parking_lot` the codebase uses: `lock()`, `read()`, and
//! `write()` return guards directly.
//!
//! Because every lock in the workspace flows through this module, it is
//! also the single chokepoint for the opt-in **lock-order deadlock
//! detector** (see [`detect`], compiled in by the `deadlock-detect`
//! feature). With the feature on, every acquisition is registered
//! against a per-thread held-lock stack and a global acquired-before
//! graph; inconsistent acquisition orders (potential ABBA deadlocks)
//! and locks held across declared blocking regions (socket sends,
//! reply waits) are recorded as [`detect::Violation`]s that tests can
//! drain and assert empty. Without the feature the wrappers compile to
//! the plain poison-free shims with no bookkeeping.

pub mod detect;

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, TryLockError};

/// A mutual-exclusion lock whose `lock` ignores poisoning.
pub struct Mutex<T: ?Sized> {
    #[cfg(feature = "deadlock-detect")]
    meta: detect::LockMeta,
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            #[cfg(feature = "deadlock-detect")]
            meta: detect::LockMeta::new(),
            inner: sync::Mutex::new(value),
        }
    }

    /// Wrap `value` in a mutex registered under a stable site label.
    ///
    /// Without an explicit label the detector names a lock after its
    /// first acquisition site; long-lived locks created in constructors
    /// read better under a curated name (`"orb::MuxConn.writer"`).
    pub fn new_labeled(value: T, label: &'static str) -> Self {
        let m = Mutex::new(value);
        #[cfg(feature = "deadlock-detect")]
        m.meta.set_label(label);
        #[cfg(not(feature = "deadlock-detect"))]
        let _ = label;
        m
    }

    /// Exempt this lock from the hold-across-blocking rules, with a
    /// one-line justification (surfaced by [`detect::exemptions`]).
    ///
    /// The few deliberate holds in the workspace — e.g. the writer
    /// mutex that serializes whole-frame socket writes — declare
    /// themselves here; everything else that is held into a
    /// [`detect::blocking_region`] is flagged. Exempt locks still
    /// participate in lock-order (ABBA) analysis.
    pub fn allow_hold_across_blocking(self, justification: &'static str) -> Self {
        #[cfg(feature = "deadlock-detect")]
        self.meta.set_exempt(justification);
        #[cfg(not(feature = "deadlock-detect"))]
        let _ = justification;
        self
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poisoning.
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(feature = "deadlock-detect")]
        let id = self.meta.pre_acquire(detect::AcquireKind::Blocking);
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        #[cfg(feature = "deadlock-detect")]
        detect::post_acquire(id);
        MutexGuard {
            #[cfg(feature = "deadlock-detect")]
            id,
            inner,
        }
    }

    /// Try to acquire the lock without blocking.
    #[track_caller]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(e)) => e.into_inner(),
            Err(TryLockError::WouldBlock) => return None,
        };
        // A try-acquire cannot block, so it can never close a live
        // deadlock cycle; it is registered as held (so later blocking
        // acquisitions see it) but not cycle-checked itself.
        #[cfg(feature = "deadlock-detect")]
        let id = self.meta.pre_acquire(detect::AcquireKind::Try);
        #[cfg(feature = "deadlock-detect")]
        detect::post_acquire(id);
        Some(MutexGuard {
            #[cfg(feature = "deadlock-detect")]
            id,
            inner,
        })
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    #[cfg(feature = "deadlock-detect")]
    id: u64,
    inner: sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized + fmt::Display> fmt::Display for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(feature = "deadlock-detect")]
impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        detect::on_release(self.id);
    }
}

/// A reader-writer lock whose `read`/`write` ignore poisoning.
pub struct RwLock<T: ?Sized> {
    #[cfg(feature = "deadlock-detect")]
    meta: detect::LockMeta,
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap `value` in a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock {
            #[cfg(feature = "deadlock-detect")]
            meta: detect::LockMeta::new(),
            inner: sync::RwLock::new(value),
        }
    }

    /// Wrap `value` in an rwlock registered under a stable site label
    /// (see [`Mutex::new_labeled`]).
    pub fn new_labeled(value: T, label: &'static str) -> Self {
        let l = RwLock::new(value);
        #[cfg(feature = "deadlock-detect")]
        l.meta.set_label(label);
        #[cfg(not(feature = "deadlock-detect"))]
        let _ = label;
        l
    }

    /// Exempt this lock from the hold-across-blocking rules (see
    /// [`Mutex::allow_hold_across_blocking`]).
    pub fn allow_hold_across_blocking(self, justification: &'static str) -> Self {
        #[cfg(feature = "deadlock-detect")]
        self.meta.set_exempt(justification);
        #[cfg(not(feature = "deadlock-detect"))]
        let _ = justification;
        self
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, recovering from poisoning.
    ///
    /// For analysis purposes a read acquisition is treated like any
    /// other: readers still deadlock against writers under inconsistent
    /// ordering, so read edges participate fully in the
    /// acquired-before graph.
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(feature = "deadlock-detect")]
        let id = self.meta.pre_acquire(detect::AcquireKind::Blocking);
        let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
        #[cfg(feature = "deadlock-detect")]
        detect::post_acquire(id);
        RwLockReadGuard {
            #[cfg(feature = "deadlock-detect")]
            id,
            inner,
        }
    }

    /// Acquire an exclusive write guard, recovering from poisoning.
    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(feature = "deadlock-detect")]
        let id = self.meta.pre_acquire(detect::AcquireKind::Blocking);
        let inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        #[cfg(feature = "deadlock-detect")]
        detect::post_acquire(id);
        RwLockWriteGuard {
            #[cfg(feature = "deadlock-detect")]
            id,
            inner,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    #[cfg(feature = "deadlock-detect")]
    id: u64,
    inner: sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized + fmt::Display> fmt::Display for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(feature = "deadlock-detect")]
impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        detect::on_release(self.id);
    }
}

/// Guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    #[cfg(feature = "deadlock-detect")]
    id: u64,
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized + fmt::Display> fmt::Display for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(feature = "deadlock-detect")]
impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        detect::on_release(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn poisoned_mutex_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // A poisoned lock must still hand out guards.
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn labeled_constructors_behave_like_plain_ones() {
        let m = Mutex::new_labeled(5, "test.mutex").allow_hold_across_blocking("unit test");
        assert_eq!(*m.lock(), 5);
        let l = RwLock::new_labeled(vec![1], "test.rwlock");
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
