//! F6 — regenerate Figure 6: the query result on the RBH database. The
//! screenshot shows the result of `select * from medical_students`
//! after pressing Fetch: the query travels query layer → ORB → ISI
//! wrapper → Oracle, and the rows come back as a table. This binary
//! runs the same statement through the full stack and prints the table.

use webfindit::processor::{Processor, Response};
use webfindit::session::BrowserSession;
use webfindit_bench::header;
use webfindit_healthcare::build_healthcare;

fn main() {
    header("Figure 6", "Query Result on RBH Database");
    let dep = build_healthcare(1999).expect("healthcare deployment");
    let processor = Processor::new(dep.fed.clone());
    let mut session = BrowserSession::new("QUT Research");

    let stmt =
        "Submit Native 'select * from medical_students' To Instance Royal Brisbane Hospital;";
    println!("\nSQL (native, via the Fetch button): select * from medical_students\n");
    let resp = processor.submit(&mut session, stmt, None).expect("query");
    match resp {
        Response::Table(rs) => print!("{}", rs.to_text_table()),
        other => println!("unexpected response: {other:?}"),
    }

    // The paper's Funding() example from §2.3, for good measure.
    println!("\nWebTassili access-function path (§2.3):");
    let stmt = "Invoke ResearchProjects.Funding(ResearchProjects.Title, \
                (ResearchProjects.Title = 'AIDS and drugs')) On Instance Royal Brisbane Hospital;";
    println!("WebTassili> {stmt}\n");
    let resp = processor.submit(&mut session, stmt, None).expect("funding");
    match resp {
        Response::Table(rs) => print!("{}", rs.to_text_table()),
        other => println!("unexpected response: {other:?}"),
    }
    dep.fed.shutdown();
}
