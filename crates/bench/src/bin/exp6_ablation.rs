//! E6 — ablation of the two-level organization (§2.1): coalitions and
//! service links together, coalitions only, and links only.
//!
//! For each variant, measure from a fixed start site: what fraction of
//! all advertised topics is discoverable at all (coverage), and at what
//! mean cost. This quantifies why the paper needs *both* mechanisms —
//! coalitions give free local resolution, links give reach.

use webfindit::discovery::DiscoveryEngine;
use webfindit::synth::{build, SynthConfig, SynthFederation};
use webfindit_bench::{header, mean};

struct VariantResult {
    name: &'static str,
    coverage: f64,
    mean_round_trips: f64,
    mean_level: f64,
}

fn run_variant(name: &'static str, config: &SynthConfig) -> VariantResult {
    let synth = build(config).expect("synthetic federation");
    let mut engine = DiscoveryEngine::new(synth.fed.clone());
    // The ablation measures reachability, not the default depth budget:
    // let BFS run to exhaustion.
    engine.max_depth = 64;
    let start = synth.member_of(0).to_owned();
    let mut found = 0usize;
    let mut rts = Vec::new();
    let mut levels = Vec::new();
    let total = synth.coalition_count();
    for c in 0..total {
        let outcome = engine
            .find(&start, &SynthFederation::topic(c))
            .expect("discovery");
        if outcome.found() {
            found += 1;
            rts.push(outcome.stats.total_round_trips() as f64);
            levels.push(outcome.stats.found_at_level.unwrap_or(0) as f64);
        }
    }
    synth.fed.shutdown();
    VariantResult {
        name,
        coverage: found as f64 / total as f64,
        mean_round_trips: mean(&rts),
        mean_level: mean(&levels),
    }
}

fn main() {
    header(
        "Experiment E6",
        "Ablation: coalitions + links vs coalitions-only vs links-only",
    );

    let n = 48;
    let variants = [
        (
            "both (paper design)",
            SynthConfig {
                databases: n,
                coalition_size: 4,
                orbs: 4,
                extra_links: 2,
                ring_links: true,
                seed: 6,
            },
        ),
        (
            "coalitions only",
            SynthConfig {
                databases: n,
                coalition_size: 4,
                orbs: 4,
                extra_links: 0,
                ring_links: false,
                seed: 6,
            },
        ),
        (
            "links only (singleton coalitions)",
            SynthConfig {
                databases: n,
                coalition_size: 1,
                orbs: 4,
                extra_links: 2,
                ring_links: true,
                seed: 6,
            },
        ),
    ];

    println!(
        "\n{:<36} {:>10} {:>16} {:>12}",
        "variant", "coverage", "mean rt (found)", "mean level"
    );
    println!("{}", "-".repeat(80));
    for (name, config) in variants {
        let r = run_variant(name, &config);
        println!(
            "{:<36} {:>9.0}% {:>16.1} {:>12.2}",
            r.name,
            r.coverage * 100.0,
            r.mean_round_trips,
            r.mean_level
        );
    }

    println!(
        "\nReading: coalitions alone answer only the asker's own topics\n\
         (coverage collapses to the local cluster); links alone restore\n\
         reach but at a higher per-query cost (singleton clusters mean no\n\
         free local resolution and longer walks). The paper's two-level\n\
         design keeps coverage complete while holding cost to the\n\
         semantic distance of the query."
    );
}
