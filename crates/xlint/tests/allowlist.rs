//! Allowlist semantics: an entry that suppresses nothing must fail the
//! run with a diagnosis that tells the maintainer exactly what to fix —
//! stale (nothing at that site), wrong rule (site has a finding under a
//! different rule), or witness mismatch (rule and site match but the
//! pinned `via` step is not on the finding's witness path).

use std::path::PathBuf;
use xlint::{analyze_sources, apply_allowlist, parse_allowlist_text, AllowIssue, Scope};

/// A two-file workspace with exactly one interprocedural finding:
/// `caller` holds `g` across `mid`, which reaches `sync_all` in
/// another file.
fn analysis() -> xlint::Analysis {
    let a = "pub fn caller(s: &Store) {\n    let g = s.state.lock();\n    mid(s);\n    drop(g);\n}\n\nfn mid(s: &Store) {\n    slow_io(s);\n}\n";
    let b = "pub fn slow_io(s: &Store) {\n    s.file.sync_all();\n}\n";
    analyze_sources(&[
        (
            PathBuf::from("crates/app/src/a.rs"),
            a.to_owned(),
            Scope::Findings,
        ),
        (
            PathBuf::from("crates/app/src/b.rs"),
            b.to_owned(),
            Scope::Findings,
        ),
    ])
}

#[test]
fn matching_entry_suppresses_and_reports_no_issues() {
    let analysis = analysis();
    assert_eq!(analysis.findings.len(), 1);
    let entries = parse_allowlist_text(
        "guard-across-blocking crates/app/src/a.rs \"mid(s);\" via \"slow_io\" fsync is deliberate here\n",
    )
    .unwrap();
    let outcome = apply_allowlist(&analysis, &entries);
    assert!(outcome.real.is_empty());
    assert_eq!(outcome.suppressed.len(), 1);
    assert!(outcome.issues.is_empty());
}

#[test]
fn stale_entry_fails_with_remove_it_message() {
    let analysis = analysis();
    let entries = parse_allowlist_text(
        "guard-across-blocking crates/app/src/a.rs \"no_such_call()\" was fixed long ago\n",
    )
    .unwrap();
    let outcome = apply_allowlist(&analysis, &entries);
    assert_eq!(outcome.real.len(), 1, "nothing suppressed");
    assert_eq!(outcome.issues.len(), 1);
    assert!(matches!(outcome.issues[0], AllowIssue::Stale { .. }));
    let msg = outcome.issues[0].render();
    assert!(msg.contains("stale allowlist entry"), "{msg}");
    assert!(msg.contains("matches nothing — remove it"), "{msg}");
}

#[test]
fn wrong_rule_entry_names_the_actual_rule() {
    let analysis = analysis();
    let entries = parse_allowlist_text(
        "metrics-drift crates/app/src/a.rs \"mid(s);\" justified under the wrong family\n",
    )
    .unwrap();
    let outcome = apply_allowlist(&analysis, &entries);
    assert_eq!(outcome.real.len(), 1);
    assert_eq!(outcome.issues.len(), 1);
    assert!(matches!(outcome.issues[0], AllowIssue::WrongRule { .. }));
    let msg = outcome.issues[0].render();
    assert!(msg.contains("names the wrong rule"), "{msg}");
    assert!(msg.contains("`guard-across-blocking`"), "{msg}");
    assert!(msg.contains("fix the rule name"), "{msg}");
}

#[test]
fn witness_mismatch_entry_points_at_the_via_clause() {
    let analysis = analysis();
    let entries = parse_allowlist_text(
        "guard-across-blocking crates/app/src/a.rs \"mid(s);\" via \"SomeOtherFn\" pinned to a path that no longer exists\n",
    )
    .unwrap();
    let outcome = apply_allowlist(&analysis, &entries);
    assert_eq!(outcome.real.len(), 1);
    assert_eq!(outcome.issues.len(), 1);
    assert!(matches!(
        outcome.issues[0],
        AllowIssue::WitnessMismatch { .. }
    ));
    let msg = outcome.issues[0].render();
    assert!(msg.contains("matches no step"), "{msg}");
    assert!(msg.contains("update the `via` step"), "{msg}");
}

#[test]
fn the_three_diagnoses_are_distinct() {
    let analysis = analysis();
    let entries = parse_allowlist_text(concat!(
        "guard-across-blocking crates/app/src/a.rs \"no_such_call()\" stale\n",
        "metrics-drift crates/app/src/a.rs \"mid(s);\" wrong family\n",
        "guard-across-blocking crates/app/src/a.rs \"mid(s);\" via \"SomeOtherFn\" wrong path\n",
    ))
    .unwrap();
    let outcome = apply_allowlist(&analysis, &entries);
    assert_eq!(outcome.issues.len(), 3);
    let msgs: Vec<String> = outcome.issues.iter().map(AllowIssue::render).collect();
    assert!(msgs[0].contains("remove it"));
    assert!(msgs[1].contains("wrong rule"));
    assert!(msgs[2].contains("witness clause"));
    // Pairwise distinct diagnostics.
    assert_ne!(msgs[0], msgs[1]);
    assert_ne!(msgs[1], msgs[2]);
    assert_ne!(msgs[0], msgs[2]);
}

#[test]
fn parse_rejects_missing_justification_and_quoting() {
    assert!(parse_allowlist_text("guard-across-blocking a.rs \"snippet\"\n").is_err());
    assert!(parse_allowlist_text("guard-across-blocking a.rs snippet why\n").is_err());
    assert!(parse_allowlist_text("guard-across-blocking a.rs \"s\" via step why\n").is_err());
    assert!(parse_allowlist_text("# comment\n\n").unwrap().is_empty());
}
