//! # webfindit-healthcare — the paper's healthcare application
//!
//! Sections 4–5 of the paper validate WebFINDIT with a Queensland
//! healthcare deployment: **14 databases** (28 counting co-databases)
//! across **five DBMS products** (Oracle, mSQL, DB2, ObjectStore,
//! Ontos), **three IIOP-compliant ORBs** (Orbix, OrbixWeb, VisiBroker),
//! organized into **five coalitions** and **nine service links**
//! (Figure 1). This crate builds exactly that deployment on the
//! simulated substrates:
//!
//! * [`topology`] — the ground-truth names: databases, coalitions,
//!   memberships, service links, DBMS and ORB assignments.
//! * [`schemas`] — per-database schemas (the Royal Brisbane Hospital
//!   schema is the paper's §2.2 relation list verbatim) and seeded
//!   synthetic data generators.
//! * [`deploy`] — [`deploy::build_healthcare`], which stands the whole
//!   federation up and returns handles for querying it.
//! * [`sessions`] — the canned §5 user session that regenerates the
//!   content of Figures 4, 5, and 6.

#![warn(missing_docs)]

pub mod deploy;
pub mod schemas;
pub mod sessions;
pub mod topology;

pub use deploy::{build_healthcare, build_healthcare_durable, HealthcareDeployment};
pub use topology::{coalitions, databases, service_links, DatabaseInfo, Dbms, OrbName};
