//! A small deterministic PRNG (xoshiro256**) with the `gen_range` /
//! `gen_bool` surface the synthetic data generators use.
//!
//! Not cryptographic. Deterministic for a given seed on every platform,
//! which is exactly what the experiments need: `seed_from_u64(s)` must
//! regenerate the same federation on every run and machine.

use std::ops::{Range, RangeInclusive};

/// Seedable deterministic generator (drop-in for the old `rand::StdRng`
/// call sites).
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StdRng {
    /// Derive a full generator state from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> StdRng {
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64 bits (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform value in `range` (half-open or inclusive integer
    /// ranges, or a half-open `f64` range).
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(0..i + 1);
            xs.swap(i, j);
        }
    }

    fn bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Debiased multiply-shift (Lemire).
        let mut m = (self.next_u64() as u128) * (bound as u128);
        if (m as u64) < bound {
            let threshold = bound.wrapping_neg() % bound;
            while (m as u64) < threshold {
                m = (self.next_u64() as u128) * (bound as u128);
            }
        }
        (m >> 64) as u64
    }
}

/// Range types [`StdRng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one uniform sample.
    fn sample(self, rng: &mut StdRng) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.bounded(span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.bounded(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample(self, rng: &mut StdRng) -> f32 {
        (self.start as f64..self.end as f64).sample(rng) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let w: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&f));
            let u: usize = rng.gen_range(0usize..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut xs: Vec<u32> = (0..20).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }
}
