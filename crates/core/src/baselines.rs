//! Comparison systems for the scalability experiments.
//!
//! The paper argues (§1, §6) that neither extreme scales for Web-scale
//! federations: tightly-coupled global schemas "do not scale up given
//! the complexity when constructing the global schema for a large
//! number of heterogeneous systems", and loosely-coupled systems
//! "expect users to know the semantics and locations of the available
//! systems". Experiment E1 quantifies that argument against two
//! baselines:
//!
//! * [`FlatBroadcast`] — no organization at all: a query probes *every*
//!   co-database in the federation (what a user without WebFINDIT's
//!   two-level organization must do).
//! * [`CentralIndex`] — the multidatabase/global-schema approach: one
//!   central repository ingests every advertisement, so queries are one
//!   round-trip but registration and maintenance all funnel through
//!   (and scale with) the center.

use crate::discovery::{DiscoveryOutcome, DiscoveryStats, Lead};
use crate::federation::Federation;
use crate::servants::CoDatabaseServant;
use crate::servants::{link_to_value, value_to_link};
use crate::value_map::{descriptor_to_value, value_to_strings};
use crate::{WebfinditError, WfResult};
use std::sync::Arc;
use webfindit_base::sync::RwLock;
use webfindit_codb::CoDatabase;
use webfindit_wire::{Ior, Value};

/// The no-organization baseline: ask everyone, every time.
pub struct FlatBroadcast {
    fed: Arc<Federation>,
}

impl FlatBroadcast {
    /// Create a broadcaster over the federation.
    pub fn new(fed: Arc<Federation>) -> FlatBroadcast {
        FlatBroadcast { fed }
    }

    /// Find `topic` by probing every site's co-database. A broadcaster
    /// has no way to stop early — it pays the full fan-out each query.
    pub fn find(&self, topic: &str) -> WfResult<DiscoveryOutcome> {
        let mut stats = DiscoveryStats::default();
        let mut leads = Vec::new();
        let nc = self.fed.naming_client();
        for site in self.fed.site_names() {
            stats.sites_visited += 1;
            stats.naming_lookups += 1;
            let ior = match nc.resolve(&format!("codb/{site}")) {
                Ok(ior) => ior,
                Err(_) => continue,
            };
            stats.codb_queries += 1;
            if let Ok(v) = self
                .fed
                .invoke(&ior, "find_coalitions", &[Value::string(topic)])
            {
                for name in value_to_strings(&v)? {
                    leads.push(Lead::Coalition {
                        name,
                        via_site: site.clone(),
                        distance: 1,
                    });
                }
            }
            stats.codb_queries += 1;
            if let Ok(v) = self.fed.invoke(&ior, "find_links", &[Value::string(topic)]) {
                if let Some(seq) = v.as_sequence() {
                    for l in seq {
                        if let Ok(link) = value_to_link(l) {
                            leads.push(Lead::Link {
                                link,
                                via_site: site.clone(),
                                distance: 1,
                            });
                        }
                    }
                }
            }
        }
        if !leads.is_empty() {
            stats.found_at_level = Some(1);
        }
        Ok(DiscoveryOutcome {
            leads,
            degraded: Vec::new(),
            stats,
        })
    }
}

/// The centralized global-index baseline.
///
/// Built by replaying every site's coalitions, advertisements, and
/// links into one central co-database, hosted as a servant on the
/// bootstrap ORB so queries still pay one real GIOP round-trip.
pub struct CentralIndex {
    fed: Arc<Federation>,
    central_ior: Ior,
    /// ORB invocations spent building the index.
    pub registration_calls: u64,
}

impl CentralIndex {
    /// Build the index from the current federation state.
    ///
    /// Every (coalition, member) advertisement and every service link
    /// costs one registration call to the center — the maintenance
    /// funnel that makes the approach scale poorly.
    pub fn build(fed: Arc<Federation>) -> WfResult<CentralIndex> {
        let central = Arc::new(RwLock::new(CoDatabase::new("central-index")));
        let servant = Arc::new(CoDatabaseServant::new(Arc::clone(&central)));
        let central_ior = fed
            .client_orb()
            .activate(b"codb/central-index".to_vec(), servant);

        let mut registration_calls = 0u64;
        for site in fed.site_names() {
            let handle = fed.site(&site)?;
            // Snapshot the registrations under the read guard and release
            // it before the IIOP calls: the guard must not span a GIOP
            // round-trip (xlint: guard-across-blocking).
            let (coalition_data, links) = {
                let codb = handle.codb.read();
                let coalition_data: Vec<_> = codb
                    .coalitions()
                    .into_iter()
                    .map(|coalition| {
                        let doc = codb.coalition_documentation(&coalition).unwrap_or_default();
                        let descriptors: Vec<_> = codb
                            .members_direct(&coalition)
                            .into_iter()
                            .filter_map(|member| codb.descriptor(&member).ok().cloned())
                            .collect();
                        (coalition, doc, descriptors)
                    })
                    .collect();
                (coalition_data, codb.service_links().to_vec())
            };
            for (coalition, doc, descriptors) in coalition_data {
                registration_calls += 1;
                match fed.invoke(
                    &central_ior,
                    "create_coalition",
                    &[
                        Value::string(coalition.clone()),
                        Value::Null,
                        Value::Str(doc),
                    ],
                ) {
                    Ok(_) => {}
                    Err(WebfinditError::Orb(webfindit_orb::OrbError::RemoteException {
                        system: false,
                        ..
                    })) => {}
                    Err(e) => return Err(e),
                }
                for d in &descriptors {
                    registration_calls += 1;
                    match fed.invoke(
                        &central_ior,
                        "advertise",
                        &[Value::string(coalition.clone()), descriptor_to_value(d)],
                    ) {
                        Ok(_) => {}
                        Err(WebfinditError::Orb(webfindit_orb::OrbError::RemoteException {
                            system: false,
                            ..
                        })) => {}
                        Err(e) => return Err(e),
                    }
                }
            }
            for link in &links {
                registration_calls += 1;
                match fed.invoke(&central_ior, "add_link", &[link_to_value(link)]) {
                    Ok(_) => {}
                    Err(WebfinditError::Orb(webfindit_orb::OrbError::RemoteException {
                        system: false,
                        ..
                    })) => {}
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(CentralIndex {
            fed,
            central_ior,
            registration_calls,
        })
    }

    /// Find `topic`: one naming-free round-trip to the center.
    pub fn find(&self, topic: &str) -> WfResult<DiscoveryOutcome> {
        let mut stats = DiscoveryStats {
            sites_visited: 1,
            ..Default::default()
        };
        stats.codb_queries += 1;
        let v = self.fed.invoke(
            &self.central_ior,
            "find_coalitions",
            &[Value::string(topic)],
        )?;
        let mut leads: Vec<Lead> = value_to_strings(&v)?
            .into_iter()
            .map(|name| Lead::Coalition {
                name,
                via_site: "central-index".into(),
                distance: 1,
            })
            .collect();
        stats.codb_queries += 1;
        let lv = self
            .fed
            .invoke(&self.central_ior, "find_links", &[Value::string(topic)])?;
        if let Some(seq) = lv.as_sequence() {
            for l in seq {
                let link = value_to_link(l).map_err(|e| WebfinditError::Protocol(e.to_string()))?;
                leads.push(Lead::Link {
                    link,
                    via_site: "central-index".into(),
                    distance: 1,
                });
            }
        }
        if !leads.is_empty() {
            stats.found_at_level = Some(1);
        }
        Ok(DiscoveryOutcome {
            leads,
            degraded: Vec::new(),
            stats,
        })
    }
}
