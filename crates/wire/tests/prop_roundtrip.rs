//! Property-based round-trip tests for the wire layer.
//!
//! Invariant under test: for every representable `Value` and every GIOP
//! message, `decode(encode(x)) == x` in both byte orders, and hostile
//! inputs never panic the decoder.

use proptest::prelude::*;
use webfindit_wire::cdr::{ByteOrder, CdrReader, CdrWriter};
use webfindit_wire::giop::{self, GiopMessage};
use webfindit_wire::ior::Ior;
use webfindit_wire::value::Value;

/// Strategy producing arbitrary `Value` trees of bounded depth.
fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Void),
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<u8>().prop_map(Value::Octet),
        any::<i16>().prop_map(Value::Short),
        any::<i32>().prop_map(Value::Long),
        any::<i64>().prop_map(Value::LongLong),
        any::<u32>().prop_map(Value::ULong),
        any::<f32>().prop_filter("NaN breaks PartialEq", |f| !f.is_nan())
            .prop_map(Value::Float),
        any::<f64>().prop_filter("NaN breaks PartialEq", |f| !f.is_nan())
            .prop_map(Value::Double),
        "[a-zA-Z0-9 _.-]{0,40}".prop_map(Value::Str),
        ("[a-zA-Z:/.0-9]{1,30}", "[a-z]{1,12}", any::<u16>(), proptest::collection::vec(any::<u8>(), 0..16))
            .prop_map(|(tid, host, port, key)| Value::ObjectRef(Ior::new_iiop(tid, host, port, key))),
    ];
    leaf.prop_recursive(3, 24, 6, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..6).prop_map(Value::Sequence),
            proptest::collection::vec(("[a-z_]{1,10}", inner), 0..6).prop_map(Value::Struct),
        ]
    })
}

fn arb_order() -> impl Strategy<Value = ByteOrder> {
    prop_oneof![Just(ByteOrder::BigEndian), Just(ByteOrder::LittleEndian)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn value_roundtrips(v in arb_value(), order in arb_order()) {
        let mut w = CdrWriter::new(order);
        v.encode(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut r = CdrReader::new(&bytes, order);
        let back = Value::decode(&mut r).unwrap();
        prop_assert_eq!(back, v);
        prop_assert!(r.is_exhausted());
    }

    #[test]
    fn request_roundtrips(
        id in any::<u32>(),
        key in proptest::collection::vec(any::<u8>(), 0..32),
        op in "[a-z_]{1,24}",
        args in proptest::collection::vec(arb_value(), 0..4),
        order in arb_order(),
    ) {
        let msg = giop::request(id, key, op, args);
        let frame = msg.encode(order).unwrap();
        prop_assert_eq!(GiopMessage::decode_frame(&frame).unwrap(), msg);
    }

    #[test]
    fn reply_roundtrips(id in any::<u32>(), body in arb_value(), order in arb_order()) {
        let msg = giop::reply_ok(id, body);
        let frame = msg.encode(order).unwrap();
        prop_assert_eq!(GiopMessage::decode_frame(&frame).unwrap(), msg);
    }

    #[test]
    fn decoder_never_panics_on_noise(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Any byte soup must produce Ok or Err — never a panic.
        let _ = GiopMessage::decode_frame(&bytes);
        let mut r = CdrReader::new(&bytes, ByteOrder::BigEndian);
        let _ = Value::decode(&mut r);
    }

    #[test]
    fn decoder_never_panics_on_bitflipped_frames(
        v in arb_value(),
        order in arb_order(),
        flip_at in any::<prop::sample::Index>(),
        flip_mask in 1u8..=255,
    ) {
        let msg = giop::reply_ok(1, v);
        let mut frame = msg.encode(order).unwrap();
        let i = flip_at.index(frame.len());
        frame[i] ^= flip_mask;
        let _ = GiopMessage::decode_frame(&frame);
    }

    #[test]
    fn ior_stringified_roundtrips(
        tid in "[A-Za-z:/.0-9]{1,40}",
        host in "[a-z.0-9]{1,20}",
        port in any::<u16>(),
        key in proptest::collection::vec(any::<u8>(), 0..24),
    ) {
        let ior = Ior::new_iiop(tid, host, port, key);
        let s = ior.to_stringified();
        prop_assert_eq!(Ior::from_stringified(&s).unwrap(), ior);
    }
}
