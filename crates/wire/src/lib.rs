//! # webfindit-wire — the IIOP substrate
//!
//! A from-scratch implementation of the wire layer that the WebFINDIT paper
//! relies on for inter-ORB interoperability: the CORBA 2.0 **Common Data
//! Representation** (CDR), the **General Inter-ORB Protocol** (GIOP) message
//! set, **Interoperable Object References** (IORs), and byte transports
//! (TCP and in-process pipes).
//!
//! The paper's prototype connects three commercial ORBs (Orbix, OrbixWeb,
//! VisiBroker) that can only talk to each other because they all speak GIOP
//! over TCP/IP (IIOP). This crate provides that common tongue so that the
//! ORB instances built in `webfindit-orb` interoperate through real
//! marshalled bytes rather than shared-memory shortcuts.
//!
//! ## Layout
//!
//! * [`bufpool`] — recycled byte buffers backing the CDR encode path.
//! * [`cdr`] — aligned CDR encoding/decoding with both byte orders.
//! * [`value`] — a self-describing value model (the `any`/TypeCode analog)
//!   used by dynamic invocation.
//! * [`giop`] — GIOP message headers and bodies (Request, Reply,
//!   LocateRequest/Reply, CancelRequest, CloseConnection, MessageError,
//!   Fragment).
//! * [`ior`] — interoperable object references with tagged IIOP profiles.
//! * [`poll`] — a minimal `poll(2)` readiness binding for the reactor core.
//! * [`transport`] — framed byte transports: TCP (blocking and
//!   nonblocking/incremental), in-process duplex pipes, and a
//!   fault-injecting wrapper for tests.

#![warn(missing_docs)]

pub mod bufpool;
pub mod cdr;
pub mod giop;
pub mod ior;
pub mod poll;
pub mod transport;
pub mod value;

pub use bufpool::{BufPool, FrameBuf, PooledBuf};
pub use cdr::{ByteOrder, CdrReader, CdrWriter};
pub use giop::{
    FragmentAssembler, GiopHeader, GiopMessage, MessageKind, ReplyStatus, RequestHeader,
};
pub use ior::{IiopProfile, Ior, TaggedProfile};
pub use transport::{
    duplex, Fault, FaultSlot, FaultyTransport, FramedTcp, NbFramed, NbRead, PipeTransport,
    Transport,
};
pub use value::Value;

use std::fmt;

/// Maximum GIOP message body size this implementation will accept.
///
/// A defensive bound: a corrupted or malicious header cannot make the
/// reader allocate unbounded memory.
pub const MAX_MESSAGE_SIZE: u32 = 16 * 1024 * 1024;

/// Errors produced by the wire layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum WireError {
    /// The buffer ended before a complete value could be decoded.
    UnexpectedEof {
        /// How many bytes the decoder needed.
        needed: usize,
        /// How many bytes remained.
        remaining: usize,
    },
    /// A GIOP frame did not start with the `GIOP` magic bytes.
    BadMagic([u8; 4]),
    /// The GIOP version in a header is not one we speak.
    UnsupportedVersion {
        /// Major version found.
        major: u8,
        /// Minor version found.
        minor: u8,
    },
    /// An enum discriminant or type tag had no defined meaning.
    BadTag {
        /// What was being decoded.
        context: &'static str,
        /// The offending tag value.
        tag: u32,
    },
    /// A decoded string was not valid UTF-8.
    InvalidUtf8,
    /// A decoded boolean octet was neither 0 nor 1.
    InvalidBoolean(u8),
    /// A message or sequence length exceeded a defensive limit.
    TooLarge {
        /// The declared size.
        declared: u64,
        /// The enforced limit.
        limit: u64,
    },
    /// The underlying transport failed.
    Io(std::io::Error),
    /// The peer closed the connection or pipe.
    Closed,
    /// A string that must not contain a NUL byte contained one.
    EmbeddedNul,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof { needed, remaining } => write!(
                f,
                "unexpected end of CDR buffer: needed {needed} bytes, {remaining} remain"
            ),
            WireError::BadMagic(m) => write!(f, "bad GIOP magic {m:?} (expected \"GIOP\")"),
            WireError::UnsupportedVersion { major, minor } => {
                write!(f, "unsupported GIOP version {major}.{minor}")
            }
            WireError::BadTag { context, tag } => {
                write!(f, "invalid tag {tag} while decoding {context}")
            }
            WireError::InvalidUtf8 => write!(f, "decoded string is not valid UTF-8"),
            WireError::InvalidBoolean(b) => write!(f, "invalid boolean octet {b}"),
            WireError::TooLarge { declared, limit } => {
                write!(f, "declared size {declared} exceeds limit {limit}")
            }
            WireError::Io(e) => write!(f, "transport I/O error: {e}"),
            WireError::Closed => write!(f, "transport closed by peer"),
            WireError::EmbeddedNul => write!(f, "string contains an embedded NUL byte"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Convenient result alias for wire operations.
pub type WireResult<T> = Result<T, WireError>;
