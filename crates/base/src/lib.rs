//! # webfindit-base — zero-dependency substrate utilities
//!
//! The build environment for this reproduction is fully offline: no
//! crates.io access, no vendored registry. Everything the workspace
//! previously pulled from external crates is reimplemented here in the
//! small form the codebase actually uses:
//!
//! * [`sync`] — `Mutex`/`RwLock` with the poison-free locking API the
//!   code was written against (a thread that panicked while holding a
//!   lock does not wedge every later caller behind a `Result`).
//! * [`rng`] — a small, seedable, deterministic PRNG covering the
//!   `seed_from_u64` / `gen_range` / `gen_bool` surface the synthetic
//!   data generators use.
//! * [`prop`] — a miniature property-testing harness (seeded case
//!   loops with failing-seed reporting) used by the `prop_*` test
//!   suites.
//! * [`bench`] — a miniature benchmark harness with a criterion-shaped
//!   API (`benchmark_group` / `bench_function` / `iter`) so the bench
//!   targets run standalone with `harness = false`.

#![warn(missing_docs)]

pub mod bench;
pub mod prop;
pub mod rng;
pub mod sync;
