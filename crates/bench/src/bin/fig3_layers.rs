//! F3 — regenerate Figure 3: "WebFINDIT Layers". Traces one meta-data
//! query and one data query through the four layers (query →
//! communication → meta-data / data) and prints the layer transcript,
//! plus the per-ORB traffic the queries generated.

use webfindit::processor::Processor;
use webfindit::session::BrowserSession;
use webfindit::trace::Trace;
use webfindit_bench::header;
use webfindit_healthcare::build_healthcare;

fn main() {
    header("Figure 3", "WebFINDIT Layers — a query's journey");
    let dep = build_healthcare(1999).expect("healthcare deployment");
    let processor = Processor::new(dep.fed.clone());
    let mut session = BrowserSession::new("QUT Research");

    let before: Vec<_> = dep
        .fed
        .orb_names()
        .into_iter()
        .map(|n| (n.clone(), dep.fed.orb(&n).unwrap().metrics().snapshot()))
        .collect();

    println!("\n--- meta-data level query ---");
    let mut trace = Trace::new();
    let stmt = "Find Coalitions With Information Medical Insurance;";
    println!("WebTassili> {stmt}\n");
    let resp = processor
        .submit(&mut session, stmt, Some(&mut trace))
        .expect("meta query");
    print!("{}", trace.render());
    println!("\nresult:\n{}", resp.render());

    println!("\n--- data level query ---");
    let mut trace = Trace::new();
    let stmt = "Submit Native 'SELECT name, course FROM medical_students WHERE year >= 5' \
                To Instance Royal Brisbane Hospital;";
    println!("WebTassili> {stmt}\n");
    let resp = processor
        .submit(&mut session, stmt, Some(&mut trace))
        .expect("data query");
    print!("{}", trace.render());
    println!("\nresult:\n{}", resp.render());

    println!("\n--- communication layer deltas (GIOP requests served per ORB) ---");
    for (name, b) in before {
        let after = dep.fed.orb(&name).unwrap().metrics().snapshot();
        let d = after.since(&b);
        println!(
            "  {:<12} +{} requests served, +{} bytes in, +{} bytes out",
            name, d.requests_served, d.bytes_received, d.bytes_sent
        );
    }
    dep.fed.shutdown();
}
