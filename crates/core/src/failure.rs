//! Graceful-degradation vocabulary shared by discovery and federated
//! query execution.
//!
//! Sites are autonomous: they crash and leave without telling anyone.
//! Both the metadata traversal ([`crate::discovery`]) and the federated
//! data fan-out ([`crate::fedquery`]) keep the answer they can compute
//! from the reachable subtree and report what they had to skip — in the
//! same shape, so callers reason about partial answers uniformly.

use crate::WebfinditError;
use webfindit_orb::OrbError;

/// A site that could not be consulted (its co-database during
/// discovery, or its ISI during a federated fan-out).
///
/// Non-empty `degraded` lists mean the surrounding answer covers only
/// the surviving subtree of the federation; `reason` tells the user
/// which repository to blame and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteFailure {
    /// The unreachable site.
    pub site: String,
    /// Distance at which the probe failed: the BFS level for discovery,
    /// always 0 for a federated fan-out (members are direct targets).
    pub distance: usize,
    /// Rendered cause (naming failure, connect refusal, deadline, …).
    pub reason: String,
}

/// Render a probe failure deterministically.
///
/// Whether a dead endpoint surfaces as "cannot resolve" or "circuit
/// breaker open" depends on how many probes hit it first — under
/// parallel fanout that is a scheduling race. Both mean the same thing
/// to the caller (the endpoint is unreachable), so they canonicalize to
/// one string and parallel output stays byte-identical to serial. The
/// breaker-vs-direct distinction is still observable in
/// [`webfindit_orb::OrbMetrics`].
pub fn degrade_reason(e: &WebfinditError) -> String {
    match e {
        WebfinditError::Orb(
            OrbError::UnknownHost { host, port } | OrbError::CircuitOpen { host, port },
        ) => format!("endpoint {host}:{port} unreachable"),
        other => other.to_string(),
    }
}
