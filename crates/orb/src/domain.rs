//! The ORB domain: shared endpoint resolution across ORB instances.
//!
//! The paper's IORs advertise real hostnames (`dba.icis.qut.edu.au`); in
//! this reproduction every ORB binds a loopback socket on an ephemeral
//! port. `OrbDomain` is the DNS stand-in that maps an advertised
//! `(host, port)` pair to the actual socket address, so IORs keep the
//! paper's names while frames still flow through genuine TCP.
//!
//! A domain is also the unit of deployment bookkeeping: it remembers
//! which ORB instances exist, which is what the Figure-2 regeneration
//! binary walks to print the implementation map.

use crate::chaos::ChaosRegistry;
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::Arc;
use webfindit_base::sync::RwLock;

/// Shared registry of advertised endpoints within one federation.
#[derive(Default)]
pub struct OrbDomain {
    endpoints: RwLock<BTreeMap<(String, u16), SocketAddr>>,
    orb_names: RwLock<Vec<String>>,
    /// Fault-control plane shared by every channel in the domain; a
    /// [`crate::chaos::ChaosPlan`] mutates it to degrade endpoints.
    chaos: Arc<ChaosRegistry>,
}

impl OrbDomain {
    /// Create an empty domain.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Register that `host:port` (as advertised in IORs) is actually
    /// served at `addr`.
    pub fn register_endpoint(&self, host: impl Into<String>, port: u16, addr: SocketAddr) {
        self.endpoints.write().insert((host.into(), port), addr);
    }

    /// Remove an endpoint registration (an ORB shutting down).
    pub fn unregister_endpoint(&self, host: &str, port: u16) {
        self.endpoints.write().remove(&(host.to_owned(), port));
    }

    /// Resolve an advertised endpoint to its socket address.
    pub fn resolve(&self, host: &str, port: u16) -> Option<SocketAddr> {
        self.endpoints.read().get(&(host.to_owned(), port)).copied()
    }

    /// The fault-control plane shared by every channel in this domain.
    pub fn chaos_registry(&self) -> Arc<ChaosRegistry> {
        Arc::clone(&self.chaos)
    }

    /// Record an ORB instance name for deployment listings. A restart
    /// re-registers the same name; the listing keeps one entry.
    pub fn register_orb(&self, name: impl Into<String>) {
        let name = name.into();
        let mut names = self.orb_names.write();
        if !names.contains(&name) {
            names.push(name);
        }
    }

    /// Names of all ORB instances registered in this domain.
    pub fn orb_names(&self) -> Vec<String> {
        self.orb_names.read().clone()
    }

    /// All advertised endpoints, sorted, for diagnostics.
    pub fn endpoints(&self) -> Vec<(String, u16, SocketAddr)> {
        self.endpoints
            .read()
            .iter()
            .map(|((h, p), a)| (h.clone(), *p, *a))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_resolve() {
        let d = OrbDomain::new();
        let addr: SocketAddr = "127.0.0.1:45001".parse().unwrap();
        d.register_endpoint("dba.icis.qut.edu.au", 9000, addr);
        assert_eq!(d.resolve("dba.icis.qut.edu.au", 9000), Some(addr));
        assert_eq!(d.resolve("dba.icis.qut.edu.au", 9001), None);
        assert_eq!(d.resolve("other.host", 9000), None);
    }

    #[test]
    fn unregister_removes() {
        let d = OrbDomain::new();
        let addr: SocketAddr = "127.0.0.1:45001".parse().unwrap();
        d.register_endpoint("h", 1, addr);
        d.unregister_endpoint("h", 1);
        assert_eq!(d.resolve("h", 1), None);
    }

    #[test]
    fn orb_names_accumulate() {
        let d = OrbDomain::new();
        d.register_orb("Orbix");
        d.register_orb("VisiBroker");
        assert_eq!(d.orb_names(), vec!["Orbix", "VisiBroker"]);
    }
}
