//! # webfindit-oostore — a from-scratch object-oriented database
//!
//! The paper stores every **co-database** in an object-oriented DBMS
//! (ObjectStore or Ontos) because the metadata model is inherently a
//! class lattice: "a set of databases exporting a certain type of
//! information is represented by a class", coalitions are classes, and
//! `Display SubClasses of Class Research` is a lattice walk. This crate
//! rebuilds that substrate:
//!
//! * [`model`] — class definitions with (multiple) inheritance,
//!   typed attributes, and declared methods;
//! * [`store`] — the object store: extents, object identity (OIDs),
//!   attribute access with inheritance, lattice queries
//!   (sub/superclasses, instances-of with subclass closure);
//! * [`oql`] — a small OQL-flavoured query language over extents
//!   (`select <attrs> from <Class> where <predicate>`);
//! * [`method`] — registered access routines (the paper's
//!   `Description()` / `Funding()` functions), invokable per class.

#![warn(missing_docs)]

pub mod method;
pub mod model;
pub mod oql;
pub mod store;

pub use model::{AttrDef, ClassDef, OType, OValue, Oid};
pub use oql::{OoExecMetrics, OqlPlan, OqlQuery};
pub use store::{Object, ObjectStore};

use std::fmt;

/// Errors produced by the object store.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum OoError {
    /// A class was defined twice.
    ClassExists(String),
    /// A referenced class does not exist.
    NoSuchClass(String),
    /// Class definition would create an inheritance cycle.
    InheritanceCycle(String),
    /// A referenced attribute does not exist on the class (or ancestors).
    NoSuchAttribute {
        /// The class searched.
        class: String,
        /// The missing attribute.
        attribute: String,
    },
    /// An attribute value did not match its declared type.
    TypeMismatch {
        /// Attribute name.
        attribute: String,
        /// Declared type.
        expected: String,
        /// Offending value.
        found: String,
    },
    /// The referenced object id is not live.
    NoSuchObject(Oid),
    /// A method is not registered for the class.
    NoSuchMethod {
        /// Class name.
        class: String,
        /// Method name.
        method: String,
    },
    /// A method implementation failed.
    MethodFailed(String),
    /// OQL text failed to parse.
    Parse {
        /// Description.
        message: String,
        /// Byte offset.
        offset: usize,
    },
}

impl fmt::Display for OoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OoError::ClassExists(c) => write!(f, "class already exists: {c}"),
            OoError::NoSuchClass(c) => write!(f, "no such class: {c}"),
            OoError::InheritanceCycle(c) => {
                write!(f, "class {c} would create an inheritance cycle")
            }
            OoError::NoSuchAttribute { class, attribute } => {
                write!(f, "class {class} has no attribute {attribute}")
            }
            OoError::TypeMismatch {
                attribute,
                expected,
                found,
            } => write!(
                f,
                "attribute {attribute}: expected {expected}, found {found}"
            ),
            OoError::NoSuchObject(oid) => write!(f, "no such object: {oid}"),
            OoError::NoSuchMethod { class, method } => {
                write!(f, "class {class} has no method {method}")
            }
            OoError::MethodFailed(msg) => write!(f, "method failed: {msg}"),
            OoError::Parse { message, offset } => {
                write!(f, "OQL parse error at byte {offset}: {message}")
            }
        }
    }
}

impl std::error::Error for OoError {}

/// Result alias for object-store operations.
pub type OoResult<T> = Result<T, OoError>;
