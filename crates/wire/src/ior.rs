//! Interoperable Object References (IORs).
//!
//! An IOR is how CORBA 2.0 makes an object reference meaningful across
//! ORBs from different vendors: a repository type id plus a sequence of
//! *tagged profiles*, each an opaque encapsulation describing one way of
//! reaching the object. The IIOP profile (tag 0) carries protocol version,
//! host, port, and the opaque object key that the target ORB's object
//! adapter uses to find the servant.
//!
//! WebFINDIT hands IORs around constantly: the naming service resolves a
//! database name to an IOR, co-database descriptors embed the IOR of their
//! information-source interface, and service-link traversal returns IORs
//! of remote co-database servers.

use crate::cdr::{ByteOrder, CdrReader, CdrWriter};
use crate::{WireError, WireResult};
use std::fmt;

/// Profile tag for IIOP (`TAG_INTERNET_IOP` in the CORBA spec).
pub const TAG_INTERNET_IOP: u32 = 0;
/// Profile tag for multiple components (unused here but reserved).
pub const TAG_MULTIPLE_COMPONENTS: u32 = 1;

/// An opaque tagged profile as it appears inside an IOR.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TaggedProfile {
    /// Profile tag (e.g. [`TAG_INTERNET_IOP`]).
    pub tag: u32,
    /// Encapsulated profile body (first octet is a byte-order flag).
    pub data: Vec<u8>,
}

/// The decoded form of an IIOP profile.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IiopProfile {
    /// IIOP major version (always 1 here).
    pub version_major: u8,
    /// IIOP minor version (0 or 2).
    pub version_minor: u8,
    /// Host name or address of the listening ORB endpoint.
    pub host: String,
    /// TCP port of the endpoint.
    pub port: u16,
    /// Opaque object key interpreted only by the target object adapter.
    pub object_key: Vec<u8>,
}

impl IiopProfile {
    /// Encode into a [`TaggedProfile`] encapsulation using the given order.
    pub fn to_tagged(&self, order: ByteOrder) -> WireResult<TaggedProfile> {
        let mut w = CdrWriter::new(order);
        w.write_octet(order.flag());
        w.write_octet(self.version_major);
        w.write_octet(self.version_minor);
        w.write_string(&self.host)?;
        w.write_ushort(self.port);
        w.write_octets(&self.object_key);
        Ok(TaggedProfile {
            tag: TAG_INTERNET_IOP,
            data: w.into_bytes(),
        })
    }

    /// Decode from a [`TaggedProfile`], which must carry the IIOP tag.
    pub fn from_tagged(profile: &TaggedProfile) -> WireResult<IiopProfile> {
        if profile.tag != TAG_INTERNET_IOP {
            return Err(WireError::BadTag {
                context: "IIOP profile tag",
                tag: profile.tag,
            });
        }
        let mut r = CdrReader::for_encapsulation(&profile.data)?;
        let version_major = r.read_octet()?;
        let version_minor = r.read_octet()?;
        if version_major != 1 {
            return Err(WireError::UnsupportedVersion {
                major: version_major,
                minor: version_minor,
            });
        }
        let host = r.read_string()?;
        let port = r.read_ushort()?;
        let object_key = r.read_octets()?;
        Ok(IiopProfile {
            version_major,
            version_minor,
            host,
            port,
            object_key,
        })
    }
}

/// An interoperable object reference.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Ior {
    /// Repository id of the most-derived interface, e.g.
    /// `IDL:webfindit/InformationSource:1.0`.
    pub type_id: String,
    /// One or more ways to reach the object.
    pub profiles: Vec<TaggedProfile>,
}

impl Ior {
    /// Build an IOR with a single IIOP profile.
    pub fn new_iiop(
        type_id: impl Into<String>,
        host: impl Into<String>,
        port: u16,
        object_key: impl Into<Vec<u8>>,
    ) -> Ior {
        let profile = IiopProfile {
            version_major: 1,
            version_minor: 2,
            host: host.into(),
            port,
            object_key: object_key.into(),
        };
        Ior {
            type_id: type_id.into(),
            profiles: vec![profile
                .to_tagged(ByteOrder::BigEndian)
                .expect("static profile encodes")],
        }
    }

    /// A nil object reference (empty type id, no profiles).
    pub fn nil() -> Ior {
        Ior {
            type_id: String::new(),
            profiles: Vec::new(),
        }
    }

    /// True for nil references.
    pub fn is_nil(&self) -> bool {
        self.profiles.is_empty()
    }

    /// The first IIOP profile, decoded, if any.
    pub fn iiop_profile(&self) -> Option<IiopProfile> {
        self.profiles
            .iter()
            .filter(|p| p.tag == TAG_INTERNET_IOP)
            .find_map(|p| IiopProfile::from_tagged(p).ok())
    }

    /// Every decodable IIOP profile, in IOR order.
    ///
    /// A multi-profile IOR lists alternate endpoints for the same
    /// object; clients fall back to later profiles when earlier ones
    /// are unreachable.
    pub fn iiop_profiles(&self) -> Vec<IiopProfile> {
        self.profiles
            .iter()
            .filter(|p| p.tag == TAG_INTERNET_IOP)
            .filter_map(|p| IiopProfile::from_tagged(p).ok())
            .collect()
    }

    /// Append an additional IIOP profile (an alternate endpoint).
    pub fn push_iiop_profile(
        &mut self,
        host: impl Into<String>,
        port: u16,
        object_key: impl Into<Vec<u8>>,
    ) {
        let profile = IiopProfile {
            version_major: 1,
            version_minor: 2,
            host: host.into(),
            port,
            object_key: object_key.into(),
        };
        self.profiles.push(
            profile
                .to_tagged(ByteOrder::BigEndian)
                .expect("static profile encodes"),
        );
    }

    /// Encode into a CDR stream.
    pub fn encode(&self, w: &mut CdrWriter) -> WireResult<()> {
        w.write_string(&self.type_id)?;
        w.write_ulong(self.profiles.len() as u32);
        for p in &self.profiles {
            w.write_ulong(p.tag);
            w.write_octets(&p.data);
        }
        Ok(())
    }

    /// Decode from a CDR stream.
    pub fn decode(r: &mut CdrReader<'_>) -> WireResult<Ior> {
        let type_id = r.read_string()?;
        let n = r.read_ulong()? as usize;
        if n > r.remaining() {
            return Err(WireError::TooLarge {
                declared: n as u64,
                limit: r.remaining() as u64,
            });
        }
        let mut profiles = Vec::with_capacity(n);
        for _ in 0..n {
            let tag = r.read_ulong()?;
            let data = r.read_octets()?;
            profiles.push(TaggedProfile { tag, data });
        }
        Ok(Ior { type_id, profiles })
    }

    /// Render as the classic `IOR:<hex>` stringified form.
    ///
    /// The hex body is a big-endian encapsulation of the IOR, exactly as
    /// `object_to_string` produced in 1990s ORBs — which is how object
    /// references were pasted into configuration files and web pages.
    pub fn to_stringified(&self) -> String {
        let mut w = CdrWriter::new(ByteOrder::BigEndian);
        w.write_octet(ByteOrder::BigEndian.flag());
        self.encode(&mut w).expect("IOR encodes");
        let bytes = w.into_bytes();
        let mut s = String::with_capacity(4 + bytes.len() * 2);
        s.push_str("IOR:");
        for b in bytes {
            use std::fmt::Write;
            write!(s, "{b:02x}").expect("writing to String cannot fail");
        }
        s
    }

    /// Parse the `IOR:<hex>` stringified form.
    pub fn from_stringified(s: &str) -> WireResult<Ior> {
        let hex = s.strip_prefix("IOR:").ok_or(WireError::BadTag {
            context: "stringified IOR prefix",
            tag: 0,
        })?;
        if hex.len() % 2 != 0 {
            return Err(WireError::BadTag {
                context: "stringified IOR hex length",
                tag: hex.len() as u32,
            });
        }
        let mut bytes = Vec::with_capacity(hex.len() / 2);
        for chunk in hex.as_bytes().chunks(2) {
            let hi = (chunk[0] as char).to_digit(16);
            let lo = (chunk[1] as char).to_digit(16);
            match (hi, lo) {
                (Some(h), Some(l)) => bytes.push((h * 16 + l) as u8),
                _ => {
                    return Err(WireError::BadTag {
                        context: "stringified IOR hex digit",
                        tag: chunk[0] as u32,
                    })
                }
            }
        }
        let mut r = CdrReader::for_encapsulation(&bytes)?;
        Ior::decode(&mut r)
    }
}

impl fmt::Display for Ior {
    /// Shows the type id and the primary endpoint — the form used in log
    /// lines and trace output.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_nil() {
            return write!(f, "IOR(nil)");
        }
        match self.iiop_profile() {
            Some(p) => write!(
                f,
                "IOR({} @ {}:{} key={})",
                self.type_id,
                p.host,
                p.port,
                String::from_utf8_lossy(&p.object_key)
            ),
            None => write!(f, "IOR({}, {} profiles)", self.type_id, self.profiles.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iiop_profile_roundtrip() {
        let p = IiopProfile {
            version_major: 1,
            version_minor: 2,
            host: "dba.icis.qut.edu.au".into(),
            port: 9042,
            object_key: b"RBH/isi".to_vec(),
        };
        for order in [ByteOrder::BigEndian, ByteOrder::LittleEndian] {
            let tagged = p.to_tagged(order).unwrap();
            assert_eq!(IiopProfile::from_tagged(&tagged).unwrap(), p);
        }
    }

    #[test]
    fn ior_cdr_roundtrip() {
        let ior = Ior::new_iiop(
            "IDL:webfindit/CoDatabase:1.0",
            "orbix.qut.edu.au",
            8831,
            b"codb/RBH".to_vec(),
        );
        let mut w = CdrWriter::new(ByteOrder::LittleEndian);
        ior.encode(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut r = CdrReader::new(&bytes, ByteOrder::LittleEndian);
        assert_eq!(Ior::decode(&mut r).unwrap(), ior);
    }

    #[test]
    fn stringified_roundtrip() {
        let ior = Ior::new_iiop("IDL:X:1.0", "h", 1, b"k".to_vec());
        let s = ior.to_stringified();
        assert!(s.starts_with("IOR:"));
        assert_eq!(Ior::from_stringified(&s).unwrap(), ior);
    }

    #[test]
    fn stringified_rejects_garbage() {
        assert!(Ior::from_stringified("not-an-ior").is_err());
        assert!(Ior::from_stringified("IOR:zz").is_err());
        assert!(Ior::from_stringified("IOR:abc").is_err()); // odd length
    }

    #[test]
    fn nil_reference() {
        let nil = Ior::nil();
        assert!(nil.is_nil());
        assert!(nil.iiop_profile().is_none());
        assert_eq!(nil.to_string(), "IOR(nil)");
    }

    #[test]
    fn wrong_profile_tag_rejected() {
        let tp = TaggedProfile {
            tag: TAG_MULTIPLE_COMPONENTS,
            data: vec![0],
        };
        assert!(IiopProfile::from_tagged(&tp).is_err());
    }

    #[test]
    fn foreign_profiles_are_preserved_opaquely() {
        // An ORB must forward profiles it does not understand untouched.
        let mut ior = Ior::new_iiop("IDL:X:1.0", "h", 1, b"k".to_vec());
        ior.profiles.push(TaggedProfile {
            tag: 0xBEEF,
            data: vec![1, 2, 3],
        });
        let mut w = CdrWriter::new(ByteOrder::BigEndian);
        ior.encode(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut r = CdrReader::new(&bytes, ByteOrder::BigEndian);
        let back = Ior::decode(&mut r).unwrap();
        assert_eq!(back.profiles.len(), 2);
        assert_eq!(back.profiles[1].tag, 0xBEEF);
        assert_eq!(back.profiles[1].data, vec![1, 2, 3]);
        // The IIOP profile is still found despite the foreign one.
        assert!(back.iiop_profile().is_some());
    }
}
