//! Multi-statement isolation tests for the lock-table transaction
//! manager under concurrent connection load (the open ROADMAP item).
//!
//! Two contracts are pinned here:
//!
//! * **No-wait admission.** The engine admits one open transaction at
//!   a time; a second connection's `BEGIN` is rejected immediately
//!   (never blocked, never deadlocked), and the lock table's no-wait
//!   conflict rule behaves the same way for individual tables.
//! * **Atomic interleaving.** Connections that retry around the
//!   rejection commit exactly their own multi-statement work: after a
//!   concurrent run the table holds every committed row and nothing
//!   from rolled-back transactions.

use std::sync::{Arc, Mutex};
use webfindit_relstore::file_mgr::{SimVfs, Vfs};
use webfindit_relstore::tx::TxManager;
use webfindit_relstore::{Database, Datum, Dialect, RelError};

fn durable_db() -> Database {
    let vfs = SimVfs::new();
    let mut db = Database::new("iso", Dialect::Canonical);
    db.execute("CREATE TABLE accounts (id INT PRIMARY KEY, owner TEXT, balance INT)")
        .unwrap();
    db.execute("INSERT INTO accounts VALUES (1, 'alice', 100), (2, 'bob', 100)")
        .unwrap();
    db.make_durable(vfs as Arc<dyn Vfs>).unwrap();
    db
}

fn count(db: &mut Database) -> i64 {
    match &db
        .execute("SELECT COUNT(*) c FROM accounts")
        .unwrap()
        .rows()
        .unwrap()
        .rows[0][0]
    {
        Datum::Int(n) => *n,
        other => panic!("{other:?}"),
    }
}

#[test]
fn second_begin_is_rejected_no_wait() {
    let mut db = durable_db();
    db.execute("BEGIN").unwrap();
    db.execute("INSERT INTO accounts VALUES (3, 'carol', 50)")
        .unwrap();
    // A second connection's BEGIN arrives while the transaction is
    // open: immediate rejection, no blocking.
    let err = db.execute("BEGIN").unwrap_err();
    assert!(
        matches!(err, RelError::TransactionState(_)),
        "no-wait rejection, got {err:?}"
    );
    // The open transaction is unharmed by the rejected intruder.
    db.execute("UPDATE accounts SET balance = balance - 50 WHERE id = 1")
        .unwrap();
    db.execute("COMMIT").unwrap();
    assert_eq!(count(&mut db), 3);
}

#[test]
fn rollback_undoes_the_whole_multi_statement_transaction() {
    let mut db = durable_db();
    db.execute("BEGIN").unwrap();
    db.execute("INSERT INTO accounts VALUES (3, 'carol', 50)")
        .unwrap();
    db.execute("UPDATE accounts SET balance = 0 WHERE id = 2")
        .unwrap();
    db.execute("DELETE FROM accounts WHERE id = 1").unwrap();
    db.execute("ROLLBACK").unwrap();
    assert_eq!(count(&mut db), 2, "insert undone");
    let rs = db
        .execute("SELECT balance FROM accounts WHERE id = 2")
        .unwrap()
        .rows()
        .unwrap()
        .rows
        .clone();
    assert_eq!(rs, vec![vec![Datum::Int(100)]], "update undone");
}

#[test]
fn lock_table_no_wait_conflicts_across_logical_transactions() {
    // The lock table itself, driven as two interleaving multi-statement
    // transactions: exclusive table locks, immediate conflict for the
    // non-holder, full release at commit/rollback boundaries.
    let mut txm = TxManager::new(1);
    let a = txm.begin();
    let b = txm.begin();
    // A's statements touch two tables.
    txm.lock(a, "accounts").unwrap();
    txm.lock(a, "audit").unwrap();
    // B conflicts on both, no-wait, but proceeds elsewhere.
    assert!(matches!(
        txm.lock(b, "accounts"),
        Err(RelError::LockConflict(_))
    ));
    assert!(matches!(
        txm.lock(b, "audit"),
        Err(RelError::LockConflict(_))
    ));
    txm.lock(b, "sessions").unwrap();
    assert_eq!(txm.locked_tables(), 3);
    // A commits: everything it held frees in one step.
    txm.release(a);
    txm.lock(b, "accounts").unwrap();
    txm.lock(b, "audit").unwrap();
    txm.release(b);
    assert_eq!(txm.locked_tables(), 0, "no lock survives its transaction");
}

#[test]
fn lock_table_stays_consistent_under_concurrent_load() {
    let txm = Arc::new(Mutex::new(TxManager::new(1)));
    let tables = ["accounts", "audit", "sessions", "claims"];
    let mut handles = Vec::new();
    for t in 0..4usize {
        let txm = Arc::clone(&txm);
        handles.push(std::thread::spawn(move || {
            let mut conflicts = 0u32;
            for round in 0..50 {
                let mut guard = txm.lock().unwrap();
                let tx = guard.begin();
                // Each "statement" locks a couple of tables; conflicts
                // abort the transaction no-wait, like the engine does.
                let mut aborted = false;
                for k in 0..2 {
                    let table = tables[(t + round + k) % tables.len()];
                    if guard.lock(tx, table).is_err() {
                        conflicts += 1;
                        aborted = true;
                        break;
                    }
                }
                let _ = aborted;
                guard.release(tx);
            }
            conflicts
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let guard = txm.lock().unwrap();
    assert_eq!(guard.locked_tables(), 0, "load leaves no stray locks");
    assert_eq!(guard.next_tx(), 201, "every begin got a unique id");
}

#[test]
fn concurrent_connections_commit_exactly_their_own_work() {
    // Two connections share the engine the way the connect layer's
    // bridges do (a mutex per statement, not per transaction), each
    // running multi-statement transactions with retry on the no-wait
    // rejection. Every acknowledged commit must be in the final state;
    // every rolled-back transaction must not.
    let db = Arc::new(Mutex::new(durable_db()));
    let per_thread = 20;
    let mut handles = Vec::new();
    for t in 0..2i64 {
        let db = Arc::clone(&db);
        handles.push(std::thread::spawn(move || {
            let mut committed = 0i64;
            let mut rejected = 0u32;
            for i in 0..per_thread {
                let id = 100 + t * per_thread + i;
                loop {
                    let mut guard = db.lock().unwrap();
                    match guard.execute("BEGIN") {
                        Ok(_) => {}
                        Err(RelError::TransactionState(_)) => {
                            rejected += 1;
                            drop(guard);
                            std::thread::yield_now();
                            continue;
                        }
                        Err(e) => panic!("{e}"),
                    }
                    guard
                        .execute(&format!("INSERT INTO accounts VALUES ({id}, 't{t}', {i})"))
                        .unwrap();
                    if i % 5 == 4 {
                        // Every fifth transaction changes its mind.
                        guard.execute("ROLLBACK").unwrap();
                    } else {
                        guard
                            .execute(&format!(
                                "UPDATE accounts SET balance = balance + 1 WHERE id = {id}"
                            ))
                            .unwrap();
                        guard.execute("COMMIT").unwrap();
                        committed += 1;
                    }
                    break;
                }
            }
            (committed, rejected)
        }));
    }
    let mut committed = 0i64;
    for h in handles {
        committed += h.join().unwrap().0;
    }
    let mut guard = db.lock().unwrap();
    assert_eq!(committed, 2 * 16, "4 of every 20 roll back");
    assert_eq!(count(&mut guard), 2 + committed);
    // Committed work survives a crash; nothing else reappears.
    assert!(guard.simulate_crash());
    guard.reopen().unwrap();
    assert_eq!(count(&mut guard), 2 + committed, "recovery agrees");
}
