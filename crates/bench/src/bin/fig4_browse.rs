//! F4 — regenerate Figure 4: browsing the co-database. The screenshot
//! shows the browser after `Display Coalitions With Information Medical
//! Research`, with the Research coalition expanded to its instances and
//! the documentation format picker for Royal Brisbane Hospital. This
//! binary reproduces that state as text.

use webfindit::processor::{Processor, Response};
use webfindit::session::BrowserSession;
use webfindit_bench::header;
use webfindit_healthcare::build_healthcare;

fn main() {
    header("Figure 4", "Browsing the RBH co-database");
    let dep = build_healthcare(1999).expect("healthcare deployment");
    let processor = Processor::new(dep.fed.clone());
    let mut session = BrowserSession::new("QUT Research");

    // Left pane, top: the coalitions matching the query.
    println!("\n[left pane] Display Coalitions With Information Medical Research");
    let resp = processor
        .submit(
            &mut session,
            "Find Coalitions With Information Medical Research;",
            None,
        )
        .expect("find");
    for line in resp.render().lines() {
        println!("  {line}");
    }

    // Left pane, bottom: instances of the Research coalition.
    processor
        .submit(&mut session, "Connect To Coalition Research;", None)
        .expect("connect");
    println!("\n[left pane, lower half] Display Instances of Class Research");
    let resp = processor
        .submit(&mut session, "Display Instances of Class Research;", None)
        .expect("instances");
    for line in resp.render().lines() {
        println!("  {line}");
    }

    // Right pane: clicking Royal Brisbane Hospital shows the available
    // documentation formats.
    println!("\n[right pane] documentation formats for Royal Brisbane Hospital:");
    let resp = processor
        .submit(
            &mut session,
            "Display Document of Instance Royal Brisbane Hospital Of Class Research;",
            None,
        )
        .expect("document");
    if let Response::Document { formats, .. } = &resp {
        for f in formats {
            println!("  [ {f} ]");
        }
    }

    dep.fed.shutdown();
}
