//! Browser sessions — the user-facing navigation context.
//!
//! "The browser is the user's interface to WebFINDIT. It uses the
//! meta-data stored in the co-databases to educate users about the
//! available information space." A [`BrowserSession`] holds what the
//! Java-applet browser held: the user's home site (the paper assumes
//! every user is already a user of a participating database), the
//! coalition they are currently connected to, the leads of their last
//! discovery, and a transcript of the interaction.

use crate::discovery::Lead;
use crate::failure::SiteFailure;

/// One user's interaction state.
#[derive(Debug, Clone)]
pub struct BrowserSession {
    /// The participating database this user belongs to.
    pub site: String,
    /// The coalition currently connected to, with the site whose
    /// co-database serves it.
    pub coalition: Option<(String, String)>,
    /// Leads from the most recent `Find …` statement.
    pub last_leads: Vec<Lead>,
    /// Sites the most recent federated query could not consult; empty
    /// when the last answer was complete.
    pub last_degraded: Vec<SiteFailure>,
    /// `(statement, rendered response)` pairs, in order.
    pub transcript: Vec<(String, String)>,
}

impl BrowserSession {
    /// Start a session for a user of `site`.
    pub fn new(site: impl Into<String>) -> BrowserSession {
        BrowserSession {
            site: site.into(),
            coalition: None,
            last_leads: Vec::new(),
            last_degraded: Vec::new(),
            transcript: Vec::new(),
        }
    }

    /// Record an exchange in the transcript.
    pub fn record(&mut self, statement: impl Into<String>, response: impl Into<String>) {
        self.transcript.push((statement.into(), response.into()));
    }

    /// Render the transcript as the browser would show it.
    pub fn render_transcript(&self) -> String {
        let mut out = String::new();
        for (stmt, resp) in &self.transcript {
            out.push_str(&format!("WebTassili> {stmt}\n"));
            for line in resp.lines() {
                out.push_str(&format!("  {line}\n"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transcript_rendering() {
        let mut s = BrowserSession::new("QUT Research");
        assert_eq!(s.site, "QUT Research");
        assert!(s.coalition.is_none());
        s.record("Find Coalitions With Information X;", "coalition Research");
        let t = s.render_transcript();
        assert!(t.contains("WebTassili> Find Coalitions"));
        assert!(t.contains("  coalition Research"));
    }
}
