//! F2 — regenerate Figure 2: "WebFINDIT Implementation". Prints the
//! deployment map — which ORB hosts which database proxy, which DBMS
//! backs it, and which bridge (JDBC / JNI / C++ method invocation)
//! connects proxy to database — by interrogating the running system:
//! the ISI servants report their own bridge kind over IIOP.

use webfindit::wire::Value;
use webfindit_bench::header;
use webfindit_healthcare::build_healthcare;

fn main() {
    header("Figure 2", "WebFINDIT Implementation");
    let dep = build_healthcare(1999).expect("healthcare deployment");

    println!(
        "\n{:<28} {:<12} {:<12} {:<24} endpoint",
        "database", "DBMS", "ORB", "bridge"
    );
    println!("{}", "-".repeat(100));
    for site_name in dep.fed.site_names() {
        let site = dep.fed.site(&site_name).expect("site");
        // Ask the live ISI servant which bridge it uses (a real GIOP call).
        let bridge = dep
            .fed
            .client_orb()
            .invoke(&site.isi_ior, "bridge", &[])
            .ok()
            .and_then(|v| v.as_str().map(str::to_owned))
            .unwrap_or_else(|| "?".into());
        let product = dep
            .fed
            .client_orb()
            .invoke(&site.isi_ior, "interface_of", &[])
            .ok()
            .and_then(|v| {
                v.field("product")
                    .and_then(Value::as_str)
                    .map(str::to_owned)
            })
            .unwrap_or_else(|| site.product.clone());
        println!(
            "{:<28} {:<12} {:<12} {:<24} {}",
            site.name, product, site.orb_name, bridge, site.url
        );
    }

    println!("\nORB instances (interoperating via IIOP):");
    for orb_name in dep.fed.orb_names() {
        let orb = dep.fed.orb(&orb_name).expect("orb");
        let (host, port) = orb.advertised_endpoint();
        println!(
            "  {:<12} {:<28} byte order: {:?}, {} active servants",
            orb_name,
            format!("{host}:{port}"),
            orb.byte_order(),
            orb.adapter().len()
        );
    }

    println!("\nIIOP traffic so far (metadata wiring):");
    for orb_name in dep.fed.orb_names() {
        let orb = dep.fed.orb(&orb_name).expect("orb");
        let m = orb.metrics().snapshot();
        println!(
            "  {:<12} served {:>4} requests, {:>7} bytes in, {:>7} bytes out",
            orb_name, m.requests_served, m.bytes_received, m.bytes_sent
        );
    }
    dep.fed.shutdown();
}
