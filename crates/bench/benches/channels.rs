//! E7 (latency view) — invoke throughput of the multiplexed IIOP
//! channel layer: M concurrent client threads sharing one endpoint's
//! channel versus the same call volume issued serially from a single
//! thread. The multiplexed shape is what discovery fan-out produces;
//! the serial shape is the pre-channel baseline where every in-flight
//! request implied a full round-trip of exclusive connection use.

use std::sync::Arc;
use std::thread;
use std::time::Duration;
use webfindit_base::bench::{BenchmarkId, Criterion, Throughput};
use webfindit_base::{criterion_group, criterion_main};
use webfindit_orb::servant::{EchoServant, InvokeResult, Servant};
use webfindit_orb::{Orb, OrbConfig, OrbDomain};
use webfindit_wire::cdr::ByteOrder;
use webfindit_wire::Value;

const CALLS_PER_ITER: u64 = 64;

/// A servant standing in for a remote backend with real service time:
/// each call takes ~1ms, so throughput is bounded by how many requests
/// the channel keeps in flight at once.
struct SlowServant;

impl Servant for SlowServant {
    fn interface_id(&self) -> &str {
        "IDL:bench/Slow:1.0"
    }
    fn invoke(&self, _operation: &str, _args: &[Value]) -> InvokeResult {
        thread::sleep(Duration::from_millis(1));
        Ok(Value::string("done"))
    }
    fn operations(&self) -> Vec<String> {
        vec!["work".into()]
    }
}

fn bench_channels(c: &mut Criterion) {
    let domain = OrbDomain::new();
    let server = Orb::start(
        OrbConfig::new("S", "server.bench", 1, ByteOrder::BigEndian),
        Arc::clone(&domain),
    )
    .expect("server orb");
    let client = Orb::start(
        OrbConfig::new("C", "client.bench", 2, ByteOrder::LittleEndian),
        Arc::clone(&domain),
    )
    .expect("client orb");
    let ior = server.activate("bench/echo", Arc::new(EchoServant));

    let mut group = c.benchmark_group("iiop_channel_invokes");
    group.sample_size(20);
    group.throughput(Throughput::Elements(CALLS_PER_ITER));

    group.bench_function("serialized_1_thread", |b| {
        b.iter(|| {
            for i in 0..CALLS_PER_ITER {
                let v = client
                    .invoke(&ior, "echo", &[Value::string(format!("m{i}"))])
                    .unwrap();
                assert!(v.as_sequence().is_some());
            }
        });
    });

    for threads in [2u64, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("multiplexed", format!("{threads}_threads")),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let handles: Vec<_> = (0..threads)
                        .map(|t| {
                            let client = Arc::clone(&client);
                            let ior = ior.clone();
                            thread::spawn(move || {
                                for i in 0..CALLS_PER_ITER / threads {
                                    let v = client
                                        .invoke(&ior, "echo", &[Value::string(format!("m{t}-{i}"))])
                                        .unwrap();
                                    assert!(v.as_sequence().is_some());
                                }
                            })
                        })
                        .collect();
                    for h in handles {
                        h.join().unwrap();
                    }
                });
            },
        );
    }

    group.finish();

    // Same shapes against a ~1ms backend: here the win comes entirely
    // from keeping requests in flight over the shared channel.
    let slow_ior = server.activate("bench/slow", Arc::new(SlowServant));
    let mut slow = c.benchmark_group("iiop_channel_slow_backend");
    slow.sample_size(10);
    slow.throughput(Throughput::Elements(CALLS_PER_ITER));

    slow.bench_function("serialized_1_thread", |b| {
        b.iter(|| {
            for _ in 0..CALLS_PER_ITER {
                client.invoke(&slow_ior, "work", &[]).unwrap();
            }
        });
    });

    for threads in [2u64, 4, 8] {
        slow.bench_with_input(
            BenchmarkId::new("multiplexed", format!("{threads}_threads")),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let handles: Vec<_> = (0..threads)
                        .map(|_| {
                            let client = Arc::clone(&client);
                            let ior = slow_ior.clone();
                            thread::spawn(move || {
                                for _ in 0..CALLS_PER_ITER / threads {
                                    client.invoke(&ior, "work", &[]).unwrap();
                                }
                            })
                        })
                        .collect();
                    for h in handles {
                        h.join().unwrap();
                    }
                });
            },
        );
    }

    slow.finish();
    client.shutdown();
    server.shutdown();
}

criterion_group!(benches, bench_channels);
criterion_main!(benches);
