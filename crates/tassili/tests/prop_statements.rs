//! Property-based tests for WebTassili: display ∘ parse is the identity
//! on statement ASTs, and the SQL translation of random predicates is
//! always parseable by the relational engine's grammar shape (checked
//! structurally: balanced quoting via re-parse of the rendered
//! predicate inside a WebTassili statement).

use proptest::prelude::*;
use webfindit_tassili::ast::{render_pred, Arg, LinkTarget, Literal, PredOp, Predicate};
use webfindit_tassili::{parse, Statement};

fn arb_name() -> impl Strategy<Value = String> {
    // Multi-word names like the paper's ("Royal Brisbane Hospital"),
    // avoiding WebTassili keywords as words.
    proptest::collection::vec("[A-Z][a-z]{1,8}", 1..4).prop_map(|ws| ws.join(" "))
        .prop_filter("no keywords", |s| {
            !s.split(' ').any(|w| {
                matches!(
                    w.to_ascii_lowercase().as_str(),
                    "of" | "to" | "from" | "under" | "on" | "with" | "and" | "or" | "not"
                        | "class" | "instance" | "coalition" | "description" | "documentation"
                        | "find" | "display" | "connect" | "join" | "leave" | "link" | "invoke"
                        | "submit" | "native" | "create" | "dissolve" | "is" | "null" | "like"
                        | "information" | "true" | "false" | "access" | "interface" | "document"
                        | "instances" | "subclasses" | "coalitions" | "databases"
                )
            })
        })
}

fn arb_ident() -> impl Strategy<Value = String> {
    "[A-Z][A-Za-z0-9_]{0,10}".prop_filter("no keywords", |s| {
        !matches!(
            s.to_ascii_lowercase().as_str(),
            "on" | "and" | "or" | "not" | "is" | "null" | "like" | "true" | "false"
        )
    })
}

fn arb_literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        (0i64..1_000_000).prop_map(Literal::Int),
        "[a-zA-Z0-9 '%_.-]{0,16}".prop_map(Literal::Str),
        any::<bool>().prop_map(Literal::Bool),
    ]
}

fn arb_op() -> impl Strategy<Value = PredOp> {
    prop_oneof![
        Just(PredOp::Eq),
        Just(PredOp::Ne),
        Just(PredOp::Lt),
        Just(PredOp::Le),
        Just(PredOp::Gt),
        Just(PredOp::Ge),
    ]
}

fn arb_pred() -> impl Strategy<Value = Predicate> {
    let leaf = (arb_ident(), arb_ident(), arb_op(), arb_literal()).prop_map(
        |(t, a, op, value)| Predicate::Cmp {
            path: format!("{t}.{a}"),
            op,
            value,
        },
    );
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Predicate::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Predicate::Or(Box::new(a), Box::new(b))),
            inner.prop_map(|a| Predicate::Not(Box::new(a))),
        ]
    })
}

fn arb_statement() -> impl Strategy<Value = Statement> {
    prop_oneof![
        arb_name().prop_map(|topic| Statement::FindCoalitions { topic }),
        arb_name().prop_map(|topic| Statement::FindDatabases { topic }),
        arb_name().prop_map(|name| Statement::ConnectToCoalition { name }),
        arb_name().prop_map(|class| Statement::DisplaySubclasses { class }),
        arb_name().prop_map(|class| Statement::DisplayInstances { class }),
        (arb_name(), proptest::option::of(arb_name()))
            .prop_map(|(instance, class)| Statement::DisplayDocument { instance, class }),
        arb_name().prop_map(|instance| Statement::DisplayAccessInfo { instance }),
        arb_name().prop_map(|instance| Statement::DisplayInterface { instance }),
        (arb_name(), "[a-zA-Z0-9 =*<>_.,-]{1,40}")
            .prop_map(|(instance, query)| Statement::Native { instance, query }),
        (arb_name(), proptest::option::of(arb_name()), proptest::option::of("[a-z ]{1,20}".prop_map(String::from)))
            .prop_map(|(name, parent, documentation)| Statement::CreateCoalition {
                name,
                parent,
                documentation
            }),
        arb_name().prop_map(|name| Statement::DissolveCoalition { name }),
        (arb_name(), arb_name()).prop_map(|(instance, coalition)| Statement::Join {
            instance,
            coalition
        }),
        (arb_name(), arb_name()).prop_map(|(instance, coalition)| Statement::Leave {
            instance,
            coalition
        }),
        (arb_name(), arb_name(), any::<bool>(), any::<bool>())
            .prop_map(|(a, b, ca, cb)| Statement::AddLink {
                from: if ca {
                    LinkTarget::Coalition(a)
                } else {
                    LinkTarget::Instance(a)
                },
                to: if cb {
                    LinkTarget::Coalition(b)
                } else {
                    LinkTarget::Instance(b)
                },
                description: None,
            }),
        (arb_name(), arb_ident(), arb_ident(), proptest::collection::vec(
            prop_oneof![
                arb_pred().prop_map(Arg::Predicate),
                (arb_ident(), arb_ident()).prop_map(|(t, a)| Arg::AttrRef(format!("{t}.{a}"))),
            ],
            0..3
        ))
            .prop_map(|(instance, type_name, function, args)| Statement::Invoke {
                instance,
                type_name,
                function,
                args
            }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn display_parse_roundtrip(stmt in arb_statement()) {
        let text = stmt.to_string();
        let reparsed = parse(&text);
        prop_assert!(reparsed.is_ok(), "failed to reparse {text:?}: {reparsed:?}");
        prop_assert_eq!(reparsed.unwrap(), stmt, "roundtrip of {}", text);
    }

    #[test]
    fn rendered_predicates_reparse(p in arb_pred()) {
        let text = format!("Invoke T.F(({})) On Instance D;", render_pred(&p));
        let stmt = parse(&text);
        prop_assert!(stmt.is_ok(), "predicate rendering unparseable: {text}");
    }

    #[test]
    fn parser_never_panics_on_noise(s in "[ -~]{0,80}") {
        let _ = parse(&s);
    }
}
