//! Federated cross-site query execution — query shipping, streaming
//! merge, and graceful per-site degradation.
//!
//! Discovery (§2) finds *where* information lives; this module makes a
//! single WebTassili access-function call execute *across* that set.
//! A [`FedExecutor`] resolves the member set of an `At Coalition …` or
//! `At Sites With Information …` scope, decomposes the call into one
//! native subquery per member (SQL or OQL, decided by each site's
//! wrapper scheme, with predicates and the row limit pushed down),
//! ships the subqueries in parallel over the multiplexed IIOP channels
//! through each site's ISI, and pull-merges the partial results into
//! one deterministic answer.
//!
//! Two properties are load-bearing:
//!
//! * **Serial ≡ parallel.** Subqueries are shipped by a bounded wave
//!   pool (the [`crate::discovery`] idiom): results land in per-site
//!   slots and merge in member order, and unreachable-endpoint causes
//!   canonicalize through [`crate::failure::degrade_reason`], so a
//!   `max_workers = 1` reference run is byte-identical to the parallel
//!   one.
//! * **Graceful degradation.** A killed or circuit-open member never
//!   aborts the query: it becomes a [`SiteFailure`] in
//!   [`FedOutcome::degraded`] — the same shape discovery reports — and
//!   the merge keeps every row the surviving members shipped. The
//!   federation's [`webfindit_orb::CallOptions`] deadline bounds each
//!   shipped call, so the fan-out cannot hang on a silent member.
//!
//! The cross-site join strategy is a semi-join: the build side
//! (`Where probe In Build.Attr(…)`) runs first over the members
//! exporting the build type, its distinct keys are shipped to the
//! probe sites as an `IN`-list predicate, and only matching rows come
//! back — the paper's "ship the smaller side" discipline.

use crate::discovery::DiscoveryEngine;
use crate::failure::{degrade_reason, SiteFailure};
use crate::federation::Federation;
use crate::trace::{Layer, Trace};
use crate::value_map::value_to_strings;
use crate::{Lead, WebfinditError, WfResult};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use webfindit_tassili::ast::{Arg, FedScope, Literal, Predicate, SemiJoin, Statement};
use webfindit_tassili::translate::{access_call_to_oql, access_call_to_sql};
use webfindit_wire::Value;

/// A member excluded at plan time: `(site, reason)`. Skips are not
/// degradation — the site is healthy, it just does not export the
/// queried type (or is not deployed here).
pub type SkippedSite = (String, String);

/// One per-site subquery in a federated plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SitePlan {
    /// The member site.
    pub site: String,
    /// Native language shipped ("SQL" or "OQL").
    pub language: &'static str,
    /// The shipped query text (for the probe side of a semi-join, the
    /// key list is bound at execution time).
    pub native: String,
}

/// The federated execution plan `EXPLAIN` renders: member resolution,
/// per-site subqueries, skips, and the merge operators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FedPlan {
    /// Rendered scope ("Coalition Research", "Sites With Information …").
    pub scope: String,
    /// Resolved member set, in merge order.
    pub members: Vec<String>,
    /// Semi-join build side, when the statement has a `Where … In`
    /// clause (runs before the ship wave).
    pub build: Vec<SitePlan>,
    /// Probe attribute restricted by the shipped key set.
    pub probe_attr: Option<String>,
    /// Subqueries shipped to the answering members.
    pub ship: Vec<SitePlan>,
    /// Members excluded at plan time: `(site, why)`.
    pub skipped: Vec<SkippedSite>,
    /// Row limit applied by the merge (and pushed to members).
    pub limit: Option<u64>,
}

impl FedPlan {
    /// Render root-first, indented — the style of the relstore/oostore
    /// local plans, lifted to the federation.
    pub fn render(&self) -> Vec<String> {
        let mut out = Vec::new();
        out.push(format!(
            "FedQuery At {} ({} member(s))",
            self.scope,
            self.members.len()
        ));
        let mut merge = String::from("  Merge: Union in member order");
        if let Some(n) = self.limit {
            merge.push_str(&format!(" -> Limit {n}"));
        }
        out.push(merge);
        if !self.build.is_empty() {
            let probe = self.probe_attr.as_deref().unwrap_or("?");
            out.push(format!("  SemiJoin: {probe} In keys of"));
            for b in &self.build {
                out.push(format!(
                    "    Build @ {} [{}]: {}",
                    b.site, b.language, b.native
                ));
            }
        }
        for s in &self.ship {
            out.push(format!(
                "  Ship @ {} [{}]: {}",
                s.site, s.language, s.native
            ));
        }
        for (site, why) in &self.skipped {
            out.push(format!("  Skip @ {site}: {why}"));
        }
        out
    }
}

/// Cost accounting for one federated execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FedStats {
    /// Members the plan targeted (ship + build sides, deduplicated).
    pub sites_targeted: usize,
    /// Members that answered their subquery.
    pub sites_answered: usize,
    /// Subqueries actually shipped over the wire.
    pub subqueries_shipped: u64,
    /// Rows returned by answering members.
    pub rows_shipped: u64,
    /// Approximate bytes of those rows.
    pub bytes_shipped: u64,
    /// Rows surviving the merge (after the limit).
    pub rows_merged: u64,
    /// Semi-join keys shipped to probe sites.
    pub keys_shipped: u64,
}

/// The outcome of one federated query: the merged table, per-site
/// contributions, and — mirroring [`crate::DiscoveryOutcome`] — the
/// members that degraded instead of answering.
#[derive(Debug, Clone, PartialEq)]
pub struct FedOutcome {
    /// Output column names; the first is always `site`.
    pub columns: Vec<String>,
    /// Merged rows, member-ordered then site-row-ordered.
    pub rows: Vec<Vec<String>>,
    /// Rows contributed per answering member, in merge order.
    pub per_site: Vec<(String, usize)>,
    /// Members that could not answer; non-empty means `rows` covers
    /// only the surviving subtree of the federation.
    pub degraded: Vec<SiteFailure>,
    /// Cost accounting.
    pub stats: FedStats,
}

impl FedOutcome {
    /// True if every targeted member answered.
    pub fn complete(&self) -> bool {
        self.degraded.is_empty()
    }

    /// Names of the members that could not be consulted.
    pub fn degraded_sites(&self) -> Vec<&str> {
        self.degraded.iter().map(|f| f.site.as_str()).collect()
    }

    /// Render as a text table with a per-site footer.
    pub fn render(&self) -> String {
        let mut out = format!("{}\n", self.columns.join(" | "));
        for r in &self.rows {
            out.push_str(&r.join(" | "));
            out.push('\n');
        }
        let contrib: Vec<String> = self
            .per_site
            .iter()
            .map(|(s, n)| format!("{s}: {n}"))
            .collect();
        out.push_str(&format!(
            "({} row(s) from {} site(s){})",
            self.rows.len(),
            self.per_site.len(),
            if contrib.is_empty() {
                String::new()
            } else {
                format!(" — {}", contrib.join(", "))
            }
        ));
        for f in &self.degraded {
            out.push_str(&format!("\ndegraded: {} — {}", f.site, f.reason));
        }
        out
    }
}

/// The pieces of a `FedInvoke` statement the planner consumes.
struct FedCall<'a> {
    type_name: &'a str,
    function: &'a str,
    args: &'a [Arg],
    scope: &'a FedScope,
    semi: Option<&'a SemiJoin>,
    limit: Option<u64>,
}

fn fed_parts(stmt: &Statement) -> WfResult<FedCall<'_>> {
    match stmt {
        Statement::FedInvoke {
            type_name,
            function,
            args,
            scope,
            semi,
            limit,
        } => Ok(FedCall {
            type_name,
            function,
            args,
            scope,
            semi: semi.as_ref(),
            limit: *limit,
        }),
        other => Err(WebfinditError::Protocol(format!(
            "not a federated invocation: {other}"
        ))),
    }
}

/// Case- and plural-insensitive exported-type matching: the Research
/// coalition exports the same concept as a `ResearchProjects` table at
/// one member and a `ResearchProject` class at another.
fn type_key(name: &str) -> String {
    let lower = name.to_ascii_lowercase();
    lower.strip_suffix('s').map(str::to_owned).unwrap_or(lower)
}

/// A decoded subquery answer: projected cells as strings, plus the
/// approximate bytes they occupied on the wire.
struct Shipped {
    rows: Vec<Vec<String>>,
    bytes: u64,
}

/// The federated planner/executor (the coordinator role).
pub struct FedExecutor {
    fed: Arc<Federation>,
    /// Ship-wave concurrency. `1` is the sequential reference execution
    /// the parallel merge must be byte-identical to.
    pub max_workers: usize,
}

impl FedExecutor {
    /// Create an executor over a federation (parallel shipping).
    pub fn new(fed: Arc<Federation>) -> FedExecutor {
        FedExecutor {
            fed,
            max_workers: 8,
        }
    }

    /// Resolve the member set of a scope, in deterministic (sorted)
    /// order, along with any sites discovery had to skip on the way.
    fn resolve_members(
        &self,
        engine: &DiscoveryEngine,
        origin_site: &str,
        scope: &FedScope,
    ) -> WfResult<(Vec<String>, Vec<SiteFailure>)> {
        match scope {
            FedScope::Coalition(name) => {
                let members = self.fed.coalition_members(name)?;
                if members.is_empty() {
                    return Err(WebfinditError::NothingFound(name.clone()));
                }
                Ok((members, Vec::new()))
            }
            FedScope::Topic(topic) => {
                let outcome = engine.find(origin_site, topic)?;
                let mut members = Vec::new();
                for lead in &outcome.leads {
                    if let Lead::Coalition { name, via_site, .. } = lead {
                        let ior = self
                            .fed
                            .naming_client()
                            .resolve(&format!("codb/{via_site}"))?;
                        if let Ok(v) =
                            self.fed
                                .invoke(&ior, "members", &[Value::string(name.clone())])
                        {
                            members.extend(value_to_strings(&v)?);
                        }
                    }
                }
                members.sort();
                members.dedup();
                if members.is_empty() {
                    return Err(WebfinditError::NothingFound(topic.clone()));
                }
                Ok((members, outcome.degraded))
            }
        }
    }

    /// Per-site decomposition of one access call over `members`: a
    /// native subquery for every member exporting `type_name`, and a
    /// skip entry for every member that does not.
    fn decompose(
        &self,
        members: &[String],
        type_name: &str,
        function: &str,
        args: &[Arg],
        extra: Option<&Predicate>,
    ) -> WfResult<(Vec<SitePlan>, Vec<SkippedSite>)> {
        let want = type_key(type_name);
        let mut ship = Vec::new();
        let mut skipped = Vec::new();
        for member in members {
            let site = match self.fed.site(member) {
                Ok(s) => s,
                Err(_) => {
                    skipped.push((member.clone(), "not deployed in this federation".into()));
                    continue;
                }
            };
            let exported = site
                .descriptor
                .interface
                .iter()
                .find(|t| type_key(&t.name) == want);
            let Some(exported) = exported else {
                skipped.push((member.clone(), format!("does not export {type_name}")));
                continue;
            };
            // The wrapper address decides the native language, exactly
            // as the single-site Invoke path does.
            let (language, native) = if site.descriptor.wrapper.starts_with("jdbc:") {
                (
                    "SQL",
                    access_call_to_sql(&exported.name, function, args, extra)?,
                )
            } else {
                (
                    "OQL",
                    access_call_to_oql(&exported.name, function, args, extra)?,
                )
            };
            ship.push(SitePlan {
                site: member.clone(),
                language,
                native,
            });
        }
        Ok((ship, skipped))
    }

    /// Build the federated plan for a `FedInvoke` statement without
    /// executing anything (the `EXPLAIN` surface).
    pub fn plan(
        &self,
        engine: &DiscoveryEngine,
        origin_site: &str,
        stmt: &Statement,
    ) -> WfResult<FedPlan> {
        let call = fed_parts(stmt)?;
        let (members, _) = self.resolve_members(engine, origin_site, call.scope)?;
        let (build, probe_attr) = match call.semi {
            Some(semi) => {
                let (build, _) = self.decompose(
                    &members,
                    &semi.build_type,
                    &semi.build_attr,
                    &semi.build_args,
                    None,
                )?;
                (build, Some(semi.probe_attr.clone()))
            }
            None => (Vec::new(), None),
        };
        let (ship, skipped) =
            self.decompose(&members, call.type_name, call.function, call.args, None)?;
        Ok(FedPlan {
            scope: call.scope.to_string().trim_start_matches("At ").to_owned(),
            members,
            build,
            probe_attr,
            ship,
            skipped,
            limit: call.limit,
        })
    }

    /// Ship one subquery to one member's ISI and decode the answer.
    fn ship_one(&self, plan: &SitePlan, max_rows: Option<u64>) -> WfResult<Shipped> {
        let ior = self
            .fed
            .naming_client()
            .resolve(&format!("isi/{}", plan.site))?;
        let mut args = vec![Value::string(plan.native.clone())];
        if let Some(n) = max_rows {
            args.push(Value::ULong(n.min(u32::MAX as u64) as u32));
        }
        let v = self.fed.invoke(&ior, "execute", &args)?;
        decode_rows(&v)
    }

    /// Ship a wave of subqueries over a bounded worker pool, returning
    /// the results **in wave order** regardless of completion order —
    /// the discovery wave-pool idiom, so serial and parallel runs merge
    /// byte-identically.
    fn ship_wave(
        &self,
        wave: &[SitePlan],
        max_rows: Option<u64>,
    ) -> Vec<(String, WfResult<Shipped>)> {
        let workers = self.max_workers.max(1).min(wave.len());
        if workers <= 1 {
            return wave
                .iter()
                .map(|p| (p.site.clone(), self.ship_one(p, max_rows)))
                .collect();
        }
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<(String, WfResult<Shipped>)>> = Vec::new();
        slots.resize_with(wave.len(), || None);
        std::thread::scope(|scope| {
            let next = &next;
            let run = move || {
                let mut mine = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= wave.len() {
                        break;
                    }
                    mine.push((i, (wave[i].site.clone(), self.ship_one(&wave[i], max_rows))));
                }
                mine
            };
            // The dispatcher doubles as a worker (width N = N-1 spawns).
            let handles: Vec<_> = (1..workers).map(|_| scope.spawn(run)).collect();
            for (i, r) in run() {
                slots[i] = Some(r);
            }
            for handle in handles {
                for (i, r) in handle.join().expect("federated ship worker panicked") {
                    slots[i] = Some(r);
                }
            }
        });
        let mut results: Vec<(String, WfResult<Shipped>)> = slots
            .into_iter()
            .map(|s| s.expect("every ship slot filled"))
            .collect();
        // A half-open breaker admits exactly one call, so wave-mates
        // targeting the same recovering endpoint can lose the race the
        // sequential reference never runs. Re-probe breaker rejections
        // once, serially, after the wave settles (the discovery-wave
        // discipline) — a breaker the wave closed then answers.
        for (i, (_, r)) in results.iter_mut().enumerate() {
            if matches!(
                r,
                Err(WebfinditError::Orb(
                    webfindit_orb::OrbError::CircuitOpen { .. }
                ))
            ) {
                *r = self.ship_one(&wave[i], max_rows);
            }
        }
        results
    }

    /// Execute a `FedInvoke` statement: resolve members, run the
    /// semi-join build side (if any), ship the per-site subqueries in
    /// parallel, and pull-merge the partials deterministically.
    pub fn execute(
        &self,
        engine: &DiscoveryEngine,
        origin_site: &str,
        stmt: &Statement,
        mut trace: Option<&mut Trace>,
    ) -> WfResult<FedOutcome> {
        let call = fed_parts(stmt)?;
        let (members, mut degraded) = self.resolve_members(engine, origin_site, call.scope)?;
        let mut stats = FedStats::default();
        let metrics = self.fed.client_orb().metrics();

        // ---- semi-join build phase ---------------------------------
        let mut extra: Option<Predicate> = None;
        let mut probe_dead = false; // an empty key set proves no probe row matches
        if let Some(semi) = call.semi {
            let (build, _) = self.decompose(
                &members,
                &semi.build_type,
                &semi.build_attr,
                &semi.build_args,
                None,
            )?;
            stats.subqueries_shipped += build.len() as u64;
            let mut keys: Vec<Literal> = Vec::new();
            for (site, shipped) in self.ship_wave(&build, None) {
                match shipped {
                    Ok(s) => {
                        stats.sites_answered += 1;
                        stats.rows_shipped += s.rows.len() as u64;
                        stats.bytes_shipped += s.bytes;
                        metrics.record_fed_site(true, s.rows.len() as u64, s.bytes);
                        keys.extend(
                            s.rows
                                .iter()
                                .filter_map(|r| r.first())
                                .map(|c| cell_to_literal(c)),
                        );
                    }
                    Err(e) => {
                        metrics.record_fed_site(false, 0, 0);
                        degraded.push(SiteFailure {
                            site,
                            distance: 0,
                            reason: degrade_reason(&e),
                        });
                    }
                }
            }
            keys.sort_by_key(|l| l.to_string());
            keys.dedup_by_key(|l| l.to_string());
            stats.keys_shipped = keys.len() as u64;
            if let Some(t) = trace.as_deref_mut() {
                t.event(
                    Layer::Query,
                    format!(
                        "semi-join build {}.{} shipped {} distinct key(s)",
                        semi.build_type,
                        semi.build_attr,
                        keys.len()
                    ),
                );
            }
            if keys.is_empty() {
                probe_dead = true;
            } else {
                extra = Some(Predicate::InList {
                    path: semi.probe_attr.clone(),
                    values: keys,
                });
            }
        }

        // ---- ship phase --------------------------------------------
        let (ship, skipped) = self.decompose(
            &members,
            call.type_name,
            call.function,
            call.args,
            extra.as_ref(),
        )?;
        stats.sites_targeted = ship.len() + skipped.len();
        let mut per_site: Vec<(String, usize)> = Vec::new();
        let mut rows: Vec<Vec<String>> = Vec::new();
        if !probe_dead {
            stats.subqueries_shipped += ship.len() as u64;
            if let Some(t) = trace.as_deref_mut() {
                t.event(
                    Layer::Communication,
                    format!(
                        "shipping {} subquery(ies) over {} worker(s), {} member(s) skipped",
                        ship.len(),
                        self.max_workers.max(1).min(ship.len().max(1)),
                        skipped.len()
                    ),
                );
            }
            // ---- pull-merge, in member order ------------------------
            for (site, shipped) in self.ship_wave(&ship, call.limit) {
                match shipped {
                    Ok(s) => {
                        stats.sites_answered += 1;
                        stats.rows_shipped += s.rows.len() as u64;
                        stats.bytes_shipped += s.bytes;
                        metrics.record_fed_site(true, s.rows.len() as u64, s.bytes);
                        per_site.push((site.clone(), s.rows.len()));
                        for r in s.rows {
                            let mut row = Vec::with_capacity(r.len() + 1);
                            row.push(site.clone());
                            row.extend(r);
                            rows.push(row);
                        }
                    }
                    Err(e) => {
                        metrics.record_fed_site(false, 0, 0);
                        degraded.push(SiteFailure {
                            site,
                            distance: 0,
                            reason: degrade_reason(&e),
                        });
                    }
                }
            }
        }
        if let Some(n) = call.limit {
            rows.truncate(n as usize);
        }
        stats.rows_merged = rows.len() as u64;
        metrics.record_fed_query(stats.subqueries_shipped, stats.keys_shipped);
        metrics.record_fed_merge(stats.rows_merged);
        if let Some(t) = trace {
            t.fed_event(
                format!(
                    "merged {} row(s) from {}/{} member(s)",
                    rows.len(),
                    per_site.len(),
                    stats.sites_targeted
                ),
                metrics,
            );
        }
        Ok(FedOutcome {
            columns: vec!["site".into(), call.function.to_ascii_lowercase()],
            rows,
            per_site,
            degraded,
            stats,
        })
    }
}

/// Decode one ISI `execute` answer into projected string cells plus an
/// approximate wire size. Object answers drop the leading OID cell (an
/// object identity is site-local and meaningless in a federated merge).
fn decode_rows(v: &Value) -> WfResult<Shipped> {
    let object = v.field("object_rows").is_some();
    if v.field("columns").is_none() {
        return Err(WebfinditError::Protocol(
            "federated subquery did not return rows".into(),
        ));
    }
    let rows_v = v
        .field("rows")
        .and_then(Value::as_sequence)
        .ok_or_else(|| WebfinditError::Protocol("result set missing rows".into()))?;
    let mut rows = Vec::with_capacity(rows_v.len());
    let mut bytes = 0u64;
    for r in rows_v {
        let cells = r
            .as_sequence()
            .ok_or_else(|| WebfinditError::Protocol("row is not a sequence".into()))?;
        let skip = usize::from(object);
        let row: Vec<String> = cells.iter().skip(skip).map(|c| c.to_string()).collect();
        bytes += row.iter().map(|c| c.len() as u64).sum::<u64>();
        rows.push(row);
    }
    Ok(Shipped { rows, bytes })
}

/// Turn a shipped cell back into a WebTassili literal for the
/// semi-join `IN` list: integers and floats stay numeric so the probe
/// site compares them natively, everything else ships as a string.
fn cell_to_literal(cell: &str) -> Literal {
    if let Ok(i) = cell.parse::<i64>() {
        return Literal::Int(i);
    }
    if let Ok(d) = cell.parse::<f64>() {
        return Literal::Float(d);
    }
    match cell {
        "true" => Literal::Bool(true),
        "false" => Literal::Bool(false),
        _ => Literal::Str(cell.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_key_normalizes_case_and_plural() {
        assert_eq!(type_key("ResearchProjects"), "researchproject");
        assert_eq!(type_key("ResearchProject"), "researchproject");
        assert_eq!(type_key("Grant"), "grant");
        assert_ne!(type_key("Members"), type_key("Policies"));
    }

    #[test]
    fn cells_become_typed_literals() {
        assert_eq!(cell_to_literal("42"), Literal::Int(42));
        assert_eq!(cell_to_literal("2.5"), Literal::Float(2.5));
        assert_eq!(cell_to_literal("true"), Literal::Bool(true));
        assert_eq!(
            cell_to_literal("Alice Nguyen"),
            Literal::Str("Alice Nguyen".into())
        );
    }

    #[test]
    fn plan_renders_root_first() {
        let plan = FedPlan {
            scope: "Coalition Research".into(),
            members: vec!["A".into(), "B".into(), "C".into()],
            build: vec![SitePlan {
                site: "A".into(),
                language: "SQL",
                native: "SELECT a.name FROM members a".into(),
            }],
            probe_attr: Some("Policies.Holder".into()),
            ship: vec![
                SitePlan {
                    site: "B".into(),
                    language: "SQL",
                    native: "SELECT a.premium FROM policies a".into(),
                },
                SitePlan {
                    site: "C".into(),
                    language: "OQL",
                    native: "select premium from Policy".into(),
                },
            ],
            skipped: vec![("A".into(), "does not export Policies".into())],
            limit: Some(5),
        };
        let lines = plan.render();
        assert_eq!(lines[0], "FedQuery At Coalition Research (3 member(s))");
        assert_eq!(lines[1], "  Merge: Union in member order -> Limit 5");
        assert!(lines[2].starts_with("  SemiJoin: Policies.Holder In keys of"));
        assert!(lines.iter().any(|l| l.contains("Ship @ B [SQL]")));
        assert!(lines.iter().any(|l| l.contains("Skip @ A")));
    }

    #[test]
    fn outcome_renders_degradation() {
        let o = FedOutcome {
            columns: vec!["site".into(), "funding".into()],
            rows: vec![vec!["A".into(), "100".into()]],
            per_site: vec![("A".into(), 1)],
            degraded: vec![SiteFailure {
                site: "B".into(),
                distance: 0,
                reason: "endpoint h:1 unreachable".into(),
            }],
            stats: FedStats::default(),
        };
        assert!(!o.complete());
        assert_eq!(o.degraded_sites(), vec!["B"]);
        let text = o.render();
        assert!(text.contains("site | funding"));
        assert!(text.contains("degraded: B — endpoint h:1 unreachable"));
    }
}
