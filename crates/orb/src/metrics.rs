//! Per-ORB traffic counters.
//!
//! The scalability experiments (E1, E4, E6) quantify discovery cost in
//! *IIOP round-trips* and *bytes marshalled* — the same units the paper
//! argues about qualitatively. Counters are lock-free atomics so that
//! the measurement does not perturb the measured path.
//!
//! The multiplexed channel layer adds liveness metrics: an in-flight
//! gauge, deadline/retry/eviction counters, and per-endpoint latency
//! accumulators (updated under a mutex, off the reader thread's
//! demultiplexing path).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use webfindit_base::sync::Mutex;

/// Monotonic traffic counters for one ORB instance.
#[derive(Default, Debug)]
pub struct OrbMetrics {
    /// GIOP Requests sent by this ORB acting as a client.
    pub requests_sent: AtomicU64,
    /// GIOP Requests served by this ORB's adapter (arrived via IIOP).
    pub requests_served: AtomicU64,
    /// Invocations short-circuited because the target servant is local.
    pub local_dispatches: AtomicU64,
    /// Bytes of GIOP frames written to transports.
    pub bytes_sent: AtomicU64,
    /// Bytes of GIOP frames read from transports.
    pub bytes_received: AtomicU64,
    /// Replies carrying exceptions (user or system) sent by this ORB.
    pub exceptions_sent: AtomicU64,
    /// LocateRequest probes served.
    pub locates_served: AtomicU64,
    /// Gauge: remote requests currently awaiting a reply.
    pub in_flight: AtomicU64,
    /// Calls that hit their deadline before the reply arrived.
    pub timeouts: AtomicU64,
    /// Transparent retries of provably-unprocessed requests.
    pub retries: AtomicU64,
    /// Multiplexed connections evicted (desync, unexpected message
    /// kind, or pruned after death).
    pub evictions: AtomicU64,
    /// Replies that arrived after their caller had given up.
    pub late_replies: AtomicU64,
    /// Circuit breakers tripped open (too many consecutive failures).
    pub breaker_opened: AtomicU64,
    /// Half-open probe invocations admitted through an open breaker.
    pub breaker_probes: AtomicU64,
    /// Breakers re-closed after a successful half-open probe.
    pub breaker_closed: AtomicU64,
    /// Calls rejected immediately because the endpoint's breaker was open.
    pub breaker_rejections: AtomicU64,
    /// Naming resolutions answered from the client-side IOR cache
    /// without touching the wire.
    pub ior_cache_hits: AtomicU64,
    /// Naming resolutions that missed the IOR cache (expired, absent,
    /// or uncached) and went to the naming service.
    pub ior_cache_misses: AtomicU64,
    /// IOR cache entries dropped because an invocation on the cached
    /// reference failed (or its endpoint's breaker opened).
    pub ior_cache_invalidations: AtomicU64,
    /// Co-database answer-cache hits (answer reused under a matching
    /// metadata version stamp).
    pub codb_cache_hits: AtomicU64,
    /// Co-database answer-cache misses (no entry, or the remote
    /// version stamp moved).
    pub codb_cache_misses: AtomicU64,
    /// Discovery waves dispatched concurrently (one per remote BFS
    /// level actually fanned out).
    pub fanout_waves: AtomicU64,
    /// Sites dispatched across all fanned-out waves.
    pub fanout_sites: AtomicU64,
    /// Widest single wave observed (high-water mark, not a sum).
    pub fanout_peak_width: AtomicU64,
    /// Rows (or objects) read from data-layer storage by queries the
    /// wrappers executed through this ORB's servants.
    pub data_rows_scanned: AtomicU64,
    /// Approximate bytes of those rows.
    pub data_bytes_scanned: AtomicU64,
    /// Data-layer index entries hit (point lookups, range scans, index
    /// join probes).
    pub data_index_hits: AtomicU64,
    /// Data-layer rows materialized by blocking operators (sorts,
    /// aggregation).
    pub data_rows_spilled: AtomicU64,
    /// Write-ahead-log records appended by durable data-layer stores
    /// behind this ORB's servants.
    pub data_wal_appends: AtomicU64,
    /// Snapshot/checkpoint pages written back by durable stores.
    pub data_pages_flushed: AtomicU64,
    /// WAL records replayed (REDO) during crash recovery of durable
    /// stores.
    pub data_recovery_redo: AtomicU64,
    /// Loser-transaction records rolled back (UNDO) during crash
    /// recovery of durable stores.
    pub data_recovery_undo: AtomicU64,
    /// Federated queries planned and executed through this ORB (each
    /// fans out one subquery per member site).
    pub fed_queries: AtomicU64,
    /// Per-site subqueries shipped by federated queries.
    pub fed_subqueries: AtomicU64,
    /// Member sites that answered their shipped subquery.
    pub fed_sites_answered: AtomicU64,
    /// Member sites that degraded (timeout, kill, open breaker) instead
    /// of answering; their partial absence is reported, not fatal.
    pub fed_sites_degraded: AtomicU64,
    /// Rows returned over the wire by answering member sites.
    pub fed_rows_shipped: AtomicU64,
    /// Approximate bytes of those shipped rows.
    pub fed_bytes_shipped: AtomicU64,
    /// Rows surviving the coordinator's merge (dedup/limit applied).
    pub fed_rows_merged: AtomicU64,
    /// Semi-join build keys shipped to probe sites as IN-list values.
    pub fed_keys_shipped: AtomicU64,
    /// Replies whose encoded body exceeded the fragment threshold and
    /// were streamed as an initial frame plus `Fragment` continuations.
    pub fragmented_replies: AtomicU64,
    /// Continuation `Fragment` frames sent by the reactor core.
    pub fragments_sent: AtomicU64,
    /// Fragment trains reassembled into complete messages on the
    /// client's reader threads.
    pub fragments_reassembled: AtomicU64,
    /// Times the reactor paused reading a connection because its write
    /// queue crossed the backpressure high-water mark.
    pub backpressure_pauses: AtomicU64,
    /// Lock-order (ABBA) cycles reported by the `deadlock-detect`
    /// runtime detector. Process-global (the detector is a process
    /// singleton), mirrored here by [`OrbMetrics::sync_analysis`];
    /// always zero without the feature.
    pub analysis_lock_cycles: AtomicU64,
    /// Hold-across / acquire-in blocking-region violations reported by
    /// the detector; same provenance as
    /// [`OrbMetrics::analysis_lock_cycles`].
    pub analysis_blocking_violations: AtomicU64,
    /// Per-endpoint reply latency accumulators.
    latencies: Mutex<HashMap<(String, u16), EndpointLatency>>,
}

/// Accumulated reply-latency statistics for one remote endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EndpointLatency {
    /// Completed round-trips measured.
    pub calls: u64,
    /// Sum of round-trip times, in nanoseconds.
    pub total_nanos: u64,
    /// Slowest observed round-trip, in nanoseconds.
    pub max_nanos: u64,
}

impl EndpointLatency {
    /// Mean round-trip time, or zero when nothing was measured.
    pub fn mean(&self) -> Duration {
        self.total_nanos
            .checked_div(self.calls)
            .map_or(Duration::ZERO, Duration::from_nanos)
    }

    /// Slowest observed round-trip.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_nanos)
    }
}

/// A point-in-time copy of the counters, for before/after deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// See [`OrbMetrics::requests_sent`].
    pub requests_sent: u64,
    /// See [`OrbMetrics::requests_served`].
    pub requests_served: u64,
    /// See [`OrbMetrics::local_dispatches`].
    pub local_dispatches: u64,
    /// See [`OrbMetrics::bytes_sent`].
    pub bytes_sent: u64,
    /// See [`OrbMetrics::bytes_received`].
    pub bytes_received: u64,
    /// See [`OrbMetrics::exceptions_sent`].
    pub exceptions_sent: u64,
    /// See [`OrbMetrics::locates_served`].
    pub locates_served: u64,
    /// See [`OrbMetrics::in_flight`] (a gauge — `since` saturates).
    pub in_flight: u64,
    /// See [`OrbMetrics::timeouts`].
    pub timeouts: u64,
    /// See [`OrbMetrics::retries`].
    pub retries: u64,
    /// See [`OrbMetrics::evictions`].
    pub evictions: u64,
    /// See [`OrbMetrics::late_replies`].
    pub late_replies: u64,
    /// See [`OrbMetrics::breaker_opened`].
    pub breaker_opened: u64,
    /// See [`OrbMetrics::breaker_probes`].
    pub breaker_probes: u64,
    /// See [`OrbMetrics::breaker_closed`].
    pub breaker_closed: u64,
    /// See [`OrbMetrics::breaker_rejections`].
    pub breaker_rejections: u64,
    /// See [`OrbMetrics::ior_cache_hits`].
    pub ior_cache_hits: u64,
    /// See [`OrbMetrics::ior_cache_misses`].
    pub ior_cache_misses: u64,
    /// See [`OrbMetrics::ior_cache_invalidations`].
    pub ior_cache_invalidations: u64,
    /// See [`OrbMetrics::codb_cache_hits`].
    pub codb_cache_hits: u64,
    /// See [`OrbMetrics::codb_cache_misses`].
    pub codb_cache_misses: u64,
    /// See [`OrbMetrics::fanout_waves`].
    pub fanout_waves: u64,
    /// See [`OrbMetrics::fanout_sites`].
    pub fanout_sites: u64,
    /// See [`OrbMetrics::fanout_peak_width`] (a high-water mark —
    /// `since` saturates).
    pub fanout_peak_width: u64,
    /// See [`OrbMetrics::data_rows_scanned`].
    pub data_rows_scanned: u64,
    /// See [`OrbMetrics::data_bytes_scanned`].
    pub data_bytes_scanned: u64,
    /// See [`OrbMetrics::data_index_hits`].
    pub data_index_hits: u64,
    /// See [`OrbMetrics::data_rows_spilled`].
    pub data_rows_spilled: u64,
    /// See [`OrbMetrics::data_wal_appends`].
    pub data_wal_appends: u64,
    /// See [`OrbMetrics::data_pages_flushed`].
    pub data_pages_flushed: u64,
    /// See [`OrbMetrics::data_recovery_redo`].
    pub data_recovery_redo: u64,
    /// See [`OrbMetrics::data_recovery_undo`].
    pub data_recovery_undo: u64,
    /// See [`OrbMetrics::fed_queries`].
    pub fed_queries: u64,
    /// See [`OrbMetrics::fed_subqueries`].
    pub fed_subqueries: u64,
    /// See [`OrbMetrics::fed_sites_answered`].
    pub fed_sites_answered: u64,
    /// See [`OrbMetrics::fed_sites_degraded`].
    pub fed_sites_degraded: u64,
    /// See [`OrbMetrics::fed_rows_shipped`].
    pub fed_rows_shipped: u64,
    /// See [`OrbMetrics::fed_bytes_shipped`].
    pub fed_bytes_shipped: u64,
    /// See [`OrbMetrics::fed_rows_merged`].
    pub fed_rows_merged: u64,
    /// See [`OrbMetrics::fed_keys_shipped`].
    pub fed_keys_shipped: u64,
    /// See [`OrbMetrics::fragmented_replies`].
    pub fragmented_replies: u64,
    /// See [`OrbMetrics::fragments_sent`].
    pub fragments_sent: u64,
    /// See [`OrbMetrics::fragments_reassembled`].
    pub fragments_reassembled: u64,
    /// See [`OrbMetrics::backpressure_pauses`].
    pub backpressure_pauses: u64,
    /// See [`OrbMetrics::analysis_lock_cycles`] (process-global —
    /// `since` saturates).
    pub analysis_lock_cycles: u64,
    /// See [`OrbMetrics::analysis_blocking_violations`] (process-global
    /// — `since` saturates).
    pub analysis_blocking_violations: u64,
}

impl MetricsSnapshot {
    /// Component-wise difference `self - earlier`.
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            requests_sent: self.requests_sent - earlier.requests_sent,
            requests_served: self.requests_served - earlier.requests_served,
            local_dispatches: self.local_dispatches - earlier.local_dispatches,
            bytes_sent: self.bytes_sent - earlier.bytes_sent,
            bytes_received: self.bytes_received - earlier.bytes_received,
            exceptions_sent: self.exceptions_sent - earlier.exceptions_sent,
            locates_served: self.locates_served - earlier.locates_served,
            // The gauge moves both ways; a delta can be "negative".
            in_flight: self.in_flight.saturating_sub(earlier.in_flight),
            timeouts: self.timeouts - earlier.timeouts,
            retries: self.retries - earlier.retries,
            evictions: self.evictions - earlier.evictions,
            late_replies: self.late_replies - earlier.late_replies,
            breaker_opened: self.breaker_opened - earlier.breaker_opened,
            breaker_probes: self.breaker_probes - earlier.breaker_probes,
            breaker_closed: self.breaker_closed - earlier.breaker_closed,
            breaker_rejections: self.breaker_rejections - earlier.breaker_rejections,
            ior_cache_hits: self.ior_cache_hits - earlier.ior_cache_hits,
            ior_cache_misses: self.ior_cache_misses - earlier.ior_cache_misses,
            ior_cache_invalidations: self.ior_cache_invalidations - earlier.ior_cache_invalidations,
            codb_cache_hits: self.codb_cache_hits - earlier.codb_cache_hits,
            codb_cache_misses: self.codb_cache_misses - earlier.codb_cache_misses,
            fanout_waves: self.fanout_waves - earlier.fanout_waves,
            fanout_sites: self.fanout_sites - earlier.fanout_sites,
            // A high-water mark only rises; against a later snapshot it
            // saturates rather than underflowing.
            fanout_peak_width: self
                .fanout_peak_width
                .saturating_sub(earlier.fanout_peak_width),
            data_rows_scanned: self.data_rows_scanned - earlier.data_rows_scanned,
            data_bytes_scanned: self.data_bytes_scanned - earlier.data_bytes_scanned,
            data_index_hits: self.data_index_hits - earlier.data_index_hits,
            data_rows_spilled: self.data_rows_spilled - earlier.data_rows_spilled,
            data_wal_appends: self.data_wal_appends - earlier.data_wal_appends,
            data_pages_flushed: self.data_pages_flushed - earlier.data_pages_flushed,
            data_recovery_redo: self.data_recovery_redo - earlier.data_recovery_redo,
            data_recovery_undo: self.data_recovery_undo - earlier.data_recovery_undo,
            fed_queries: self.fed_queries - earlier.fed_queries,
            fed_subqueries: self.fed_subqueries - earlier.fed_subqueries,
            fed_sites_answered: self.fed_sites_answered - earlier.fed_sites_answered,
            fed_sites_degraded: self.fed_sites_degraded - earlier.fed_sites_degraded,
            fed_rows_shipped: self.fed_rows_shipped - earlier.fed_rows_shipped,
            fed_bytes_shipped: self.fed_bytes_shipped - earlier.fed_bytes_shipped,
            fed_rows_merged: self.fed_rows_merged - earlier.fed_rows_merged,
            fed_keys_shipped: self.fed_keys_shipped - earlier.fed_keys_shipped,
            fragmented_replies: self.fragmented_replies - earlier.fragmented_replies,
            fragments_sent: self.fragments_sent - earlier.fragments_sent,
            fragments_reassembled: self.fragments_reassembled - earlier.fragments_reassembled,
            backpressure_pauses: self.backpressure_pauses - earlier.backpressure_pauses,
            analysis_lock_cycles: self
                .analysis_lock_cycles
                .saturating_sub(earlier.analysis_lock_cycles),
            analysis_blocking_violations: self
                .analysis_blocking_violations
                .saturating_sub(earlier.analysis_blocking_violations),
        }
    }

    /// Total invocations regardless of locality.
    pub fn total_invocations(&self) -> u64 {
        self.requests_sent + self.local_dispatches
    }
}

impl OrbMetrics {
    /// Capture the current values.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            requests_sent: self.requests_sent.load(Ordering::Relaxed),
            requests_served: self.requests_served.load(Ordering::Relaxed),
            local_dispatches: self.local_dispatches.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            exceptions_sent: self.exceptions_sent.load(Ordering::Relaxed),
            locates_served: self.locates_served.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            late_replies: self.late_replies.load(Ordering::Relaxed),
            breaker_opened: self.breaker_opened.load(Ordering::Relaxed),
            breaker_probes: self.breaker_probes.load(Ordering::Relaxed),
            breaker_closed: self.breaker_closed.load(Ordering::Relaxed),
            breaker_rejections: self.breaker_rejections.load(Ordering::Relaxed),
            ior_cache_hits: self.ior_cache_hits.load(Ordering::Relaxed),
            ior_cache_misses: self.ior_cache_misses.load(Ordering::Relaxed),
            ior_cache_invalidations: self.ior_cache_invalidations.load(Ordering::Relaxed),
            codb_cache_hits: self.codb_cache_hits.load(Ordering::Relaxed),
            codb_cache_misses: self.codb_cache_misses.load(Ordering::Relaxed),
            fanout_waves: self.fanout_waves.load(Ordering::Relaxed),
            fanout_sites: self.fanout_sites.load(Ordering::Relaxed),
            fanout_peak_width: self.fanout_peak_width.load(Ordering::Relaxed),
            data_rows_scanned: self.data_rows_scanned.load(Ordering::Relaxed),
            data_bytes_scanned: self.data_bytes_scanned.load(Ordering::Relaxed),
            data_index_hits: self.data_index_hits.load(Ordering::Relaxed),
            data_rows_spilled: self.data_rows_spilled.load(Ordering::Relaxed),
            data_wal_appends: self.data_wal_appends.load(Ordering::Relaxed),
            data_pages_flushed: self.data_pages_flushed.load(Ordering::Relaxed),
            data_recovery_redo: self.data_recovery_redo.load(Ordering::Relaxed),
            data_recovery_undo: self.data_recovery_undo.load(Ordering::Relaxed),
            fed_queries: self.fed_queries.load(Ordering::Relaxed),
            fed_subqueries: self.fed_subqueries.load(Ordering::Relaxed),
            fed_sites_answered: self.fed_sites_answered.load(Ordering::Relaxed),
            fed_sites_degraded: self.fed_sites_degraded.load(Ordering::Relaxed),
            fed_rows_shipped: self.fed_rows_shipped.load(Ordering::Relaxed),
            fed_bytes_shipped: self.fed_bytes_shipped.load(Ordering::Relaxed),
            fed_rows_merged: self.fed_rows_merged.load(Ordering::Relaxed),
            fed_keys_shipped: self.fed_keys_shipped.load(Ordering::Relaxed),
            fragmented_replies: self.fragmented_replies.load(Ordering::Relaxed),
            fragments_sent: self.fragments_sent.load(Ordering::Relaxed),
            fragments_reassembled: self.fragments_reassembled.load(Ordering::Relaxed),
            backpressure_pauses: self.backpressure_pauses.load(Ordering::Relaxed),
            analysis_lock_cycles: self.analysis_lock_cycles.load(Ordering::Relaxed),
            analysis_blocking_violations: self.analysis_blocking_violations.load(Ordering::Relaxed),
        }
    }

    /// Mirror the `deadlock-detect` detector's process-global report
    /// totals into this instance's analysis counters, so snapshots and
    /// experiment reports carry them alongside the traffic counters.
    /// A no-op (counters stay zero) when the feature is off.
    pub fn sync_analysis(&self) {
        let c = webfindit_base::sync::detect::counters();
        self.analysis_lock_cycles
            .store(c.lock_order_cycles, Ordering::Relaxed);
        self.analysis_blocking_violations
            .store(c.blocking_violations, Ordering::Relaxed);
    }

    /// Reply-latency statistics per remote endpoint, sorted by endpoint.
    pub fn endpoint_latencies(&self) -> Vec<((String, u16), EndpointLatency)> {
        let mut stats: Vec<_> = self
            .latencies
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        stats.sort_by(|a, b| a.0.cmp(&b.0));
        stats
    }

    /// Latency statistics for one endpoint, if any call completed.
    pub fn endpoint_latency(&self, host: &str, port: u16) -> Option<EndpointLatency> {
        self.latencies
            .lock()
            .get(&(host.to_string(), port))
            .copied()
    }

    pub(crate) fn add(&self, counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one discovery wave fanned out over `width` sites.
    pub fn record_fanout_wave(&self, width: u64) {
        self.fanout_waves.fetch_add(1, Ordering::Relaxed);
        self.fanout_sites.fetch_add(width, Ordering::Relaxed);
        self.fanout_peak_width.fetch_max(width, Ordering::Relaxed);
    }

    /// Record one data-layer query execution, in the paradigm-neutral
    /// counter vocabulary the connect layer reports.
    pub fn record_query_exec(
        &self,
        rows_scanned: u64,
        bytes_scanned: u64,
        index_hits: u64,
        rows_spilled: u64,
    ) {
        self.data_rows_scanned
            .fetch_add(rows_scanned, Ordering::Relaxed);
        self.data_bytes_scanned
            .fetch_add(bytes_scanned, Ordering::Relaxed);
        self.data_index_hits
            .fetch_add(index_hits, Ordering::Relaxed);
        self.data_rows_spilled
            .fetch_add(rows_spilled, Ordering::Relaxed);
    }

    /// Record durable-storage activity (WAL appends, checkpoint page
    /// write-backs, recovery REDO/UNDO work) observed behind a servant.
    pub fn record_durability(
        &self,
        wal_appends: u64,
        pages_flushed: u64,
        recovery_redo: u64,
        recovery_undo: u64,
    ) {
        self.data_wal_appends
            .fetch_add(wal_appends, Ordering::Relaxed);
        self.data_pages_flushed
            .fetch_add(pages_flushed, Ordering::Relaxed);
        self.data_recovery_redo
            .fetch_add(recovery_redo, Ordering::Relaxed);
        self.data_recovery_undo
            .fetch_add(recovery_undo, Ordering::Relaxed);
    }

    /// Record one federated query fanning `subqueries` per-site
    /// subqueries out, carrying `keys_shipped` semi-join keys.
    pub fn record_fed_query(&self, subqueries: u64, keys_shipped: u64) {
        self.fed_queries.fetch_add(1, Ordering::Relaxed);
        self.fed_subqueries.fetch_add(subqueries, Ordering::Relaxed);
        self.fed_keys_shipped
            .fetch_add(keys_shipped, Ordering::Relaxed);
    }

    /// Record one member site's outcome within a federated fan-out: an
    /// answer shipping `rows`/`bytes`, or a degradation.
    pub fn record_fed_site(&self, answered: bool, rows: u64, bytes: u64) {
        if answered {
            self.fed_sites_answered.fetch_add(1, Ordering::Relaxed);
            self.fed_rows_shipped.fetch_add(rows, Ordering::Relaxed);
            self.fed_bytes_shipped.fetch_add(bytes, Ordering::Relaxed);
        } else {
            self.fed_sites_degraded.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record the coordinator's merge emitting `rows` final rows.
    pub fn record_fed_merge(&self, rows: u64) {
        self.fed_rows_merged.fetch_add(rows, Ordering::Relaxed);
    }

    /// Record a co-database answer-cache lookup.
    pub fn record_codb_cache(&self, hit: bool) {
        let counter = if hit {
            &self.codb_cache_hits
        } else {
            &self.codb_cache_misses
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn gauge_add(&self, gauge: &AtomicU64, n: u64) {
        gauge.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn gauge_sub(&self, gauge: &AtomicU64, n: u64) {
        gauge.fetch_sub(n, Ordering::Relaxed);
    }

    pub(crate) fn record_latency(&self, endpoint: &(String, u16), elapsed: Duration) {
        let nanos = elapsed.as_nanos().min(u64::MAX as u128) as u64;
        let mut map = self.latencies.lock();
        let entry = map.entry(endpoint.clone()).or_default();
        entry.calls += 1;
        entry.total_nanos = entry.total_nanos.saturating_add(nanos);
        entry.max_nanos = entry.max_nanos.max(nanos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_delta() {
        let m = OrbMetrics::default();
        m.add(&m.requests_sent, 3);
        m.add(&m.bytes_sent, 100);
        let s1 = m.snapshot();
        m.add(&m.requests_sent, 2);
        let s2 = m.snapshot();
        let d = s2.since(&s1);
        assert_eq!(d.requests_sent, 2);
        assert_eq!(d.bytes_sent, 0);
        assert_eq!(s2.total_invocations(), 5);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let m = OrbMetrics::default();
        m.gauge_add(&m.in_flight, 3);
        m.gauge_sub(&m.in_flight, 2);
        assert_eq!(m.snapshot().in_flight, 1);
        // A falling gauge saturates in `since` instead of underflowing.
        let high = m.snapshot();
        m.gauge_sub(&m.in_flight, 1);
        assert_eq!(m.snapshot().since(&high).in_flight, 0);
    }

    #[test]
    fn fanout_and_cache_counters() {
        let m = OrbMetrics::default();
        m.record_fanout_wave(3);
        m.record_fanout_wave(7);
        m.record_fanout_wave(2);
        m.record_codb_cache(true);
        m.record_codb_cache(false);
        m.record_codb_cache(true);
        let s = m.snapshot();
        assert_eq!(s.fanout_waves, 3);
        assert_eq!(s.fanout_sites, 12);
        assert_eq!(s.fanout_peak_width, 7, "peak is a max, not a sum");
        assert_eq!(s.codb_cache_hits, 2);
        assert_eq!(s.codb_cache_misses, 1);
    }

    #[test]
    fn query_exec_counters_accumulate() {
        let m = OrbMetrics::default();
        m.record_query_exec(100, 2048, 7, 10);
        m.record_query_exec(1, 16, 1, 0);
        let s = m.snapshot();
        assert_eq!(s.data_rows_scanned, 101);
        assert_eq!(s.data_bytes_scanned, 2064);
        assert_eq!(s.data_index_hits, 8);
        assert_eq!(s.data_rows_spilled, 10);
    }

    #[test]
    fn durability_counters_accumulate() {
        let m = OrbMetrics::default();
        m.record_durability(12, 3, 0, 0);
        m.record_durability(5, 0, 40, 2);
        let s = m.snapshot();
        assert_eq!(s.data_wal_appends, 17);
        assert_eq!(s.data_pages_flushed, 3);
        assert_eq!(s.data_recovery_redo, 40);
        assert_eq!(s.data_recovery_undo, 2);
        let later = {
            m.record_durability(1, 1, 1, 1);
            m.snapshot()
        };
        assert_eq!(later.since(&s).data_wal_appends, 1);
        assert_eq!(later.since(&s).data_recovery_undo, 1);
    }

    #[test]
    fn federated_counters_accumulate() {
        let m = OrbMetrics::default();
        m.record_fed_query(4, 12);
        m.record_fed_site(true, 30, 640);
        m.record_fed_site(true, 10, 200);
        m.record_fed_site(false, 0, 0);
        m.record_fed_merge(35);
        let s = m.snapshot();
        assert_eq!(s.fed_queries, 1);
        assert_eq!(s.fed_subqueries, 4);
        assert_eq!(s.fed_keys_shipped, 12);
        assert_eq!(s.fed_sites_answered, 2);
        assert_eq!(s.fed_sites_degraded, 1);
        assert_eq!(s.fed_rows_shipped, 40);
        assert_eq!(s.fed_bytes_shipped, 840);
        assert_eq!(s.fed_rows_merged, 35);
        m.record_fed_query(2, 0);
        assert_eq!(m.snapshot().since(&s).fed_subqueries, 2);
    }

    #[test]
    fn latency_accumulates_per_endpoint() {
        let m = OrbMetrics::default();
        let ep = ("db.example".to_string(), 9000);
        m.record_latency(&ep, Duration::from_millis(2));
        m.record_latency(&ep, Duration::from_millis(4));
        let stats = m.endpoint_latency("db.example", 9000).unwrap();
        assert_eq!(stats.calls, 2);
        assert_eq!(stats.mean(), Duration::from_millis(3));
        assert_eq!(stats.max(), Duration::from_millis(4));
        assert!(m.endpoint_latency("other", 1).is_none());
        assert_eq!(m.endpoint_latencies().len(), 1);
    }
}
