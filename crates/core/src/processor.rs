//! The WebTassili query processor — the query layer's engine.
//!
//! "The query processor receives queries from the browser, coordinates
//! their execution and returns their results to the browser." Each
//! statement kind maps to metadata-layer invocations (co-database
//! servants), data-layer invocations (ISI servants), or federation
//! management, all through the communication layer.

use crate::discovery::{DiscoveryEngine, Lead};
use crate::docs::{DocFormat, Document};
use crate::federation::Federation;
use crate::fedquery::{FedExecutor, FedOutcome};
use crate::session::BrowserSession;
use crate::trace::{Layer, Trace};
use crate::value_map::{value_to_descriptor, value_to_result_set, value_to_strings};
use crate::{WebfinditError, WfResult};
use std::sync::Arc;
use webfindit_codb::{InformationSource, LinkEnd, ServiceLink};
use webfindit_relstore::exec::ResultSet;
use webfindit_tassili::{parse, translate_invoke_to_sql, Statement};
use webfindit_wire::{Ior, Value};

/// What the processor hands back to the browser.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Discovery results: leads plus the cost of finding them.
    Leads {
        /// The leads.
        leads: Vec<Lead>,
        /// Remote round-trips spent.
        round_trips: u64,
    },
    /// Database names.
    Databases(Vec<String>),
    /// Connected to a coalition.
    Connected {
        /// The coalition.
        coalition: String,
        /// The site whose co-database serves it.
        via_site: String,
    },
    /// Subclass names.
    Subclasses(Vec<String>),
    /// Instance (member database) names.
    Instances(Vec<String>),
    /// A document with the formats available for it.
    Document {
        /// Formats the documentation URL offers.
        formats: Vec<DocFormat>,
        /// The fetched document (best format).
        document: Document,
    },
    /// Access information of a source.
    AccessInfo(Box<InformationSource>),
    /// Rendered exported interface types.
    Interface(Vec<String>),
    /// A relational result table.
    Table(ResultSet),
    /// Object-query rows (first column is the OID).
    Objects {
        /// Column names (after the implicit oid column).
        columns: Vec<String>,
        /// Stringified cells, one row per object.
        rows: Vec<Vec<String>>,
    },
    /// A scalar result.
    Scalar(String),
    /// A federated query answer: merged rows plus degradation report.
    Federated(Box<FedOutcome>),
    /// An execution plan (`Explain …`), rendered root-first.
    Plan(Vec<String>),
    /// Acknowledgement of a management action, with its ORB-call cost.
    Ack {
        /// Human-readable summary.
        message: String,
        /// ORB invocations spent propagating the change.
        calls: u64,
    },
}

impl Response {
    /// Render for the browser transcript.
    pub fn render(&self) -> String {
        match self {
            Response::Leads { leads, round_trips } => {
                if leads.is_empty() {
                    return format!("No leads found ({round_trips} round-trips).");
                }
                let mut out = String::new();
                for lead in leads {
                    match lead {
                        Lead::Coalition {
                            name,
                            via_site,
                            distance,
                        } => out.push_str(&format!(
                            "coalition {name} (via {via_site}, distance {distance})\n"
                        )),
                        Lead::Link {
                            link,
                            via_site,
                            distance,
                        } => out.push_str(&format!(
                            "service link {} — {} (via {via_site}, distance {distance})\n",
                            link.link_name(),
                            link.description
                        )),
                    }
                }
                out.push_str(&format!("({round_trips} round-trips)"));
                out
            }
            Response::Databases(names) => names.join("\n"),
            Response::Connected {
                coalition,
                via_site,
            } => format!("Connected to coalition {coalition} (via {via_site})."),
            Response::Subclasses(names) | Response::Instances(names) => names.join("\n"),
            Response::Document { formats, document } => {
                let fs: Vec<String> = formats.iter().map(|f| f.to_string()).collect();
                format!(
                    "formats: {}\n--- {} ---\n{}",
                    fs.join(", "),
                    document.format,
                    document.content
                )
            }
            Response::AccessInfo(d) => d.to_string(),
            Response::Interface(types) => types.join("\n\n"),
            Response::Table(rs) => rs.to_text_table(),
            Response::Objects { columns, rows } => {
                let mut out = format!("oid | {}\n", columns.join(" | "));
                for r in rows {
                    out.push_str(&r.join(" | "));
                    out.push('\n');
                }
                out
            }
            Response::Scalar(s) => s.clone(),
            Response::Federated(outcome) => outcome.render(),
            Response::Plan(lines) => lines.join("\n"),
            Response::Ack { message, calls } => format!("{message} ({calls} ORB calls)"),
        }
    }
}

/// The query processor.
pub struct Processor {
    fed: Arc<Federation>,
    engine: DiscoveryEngine,
    fedex: FedExecutor,
}

impl Processor {
    /// Create a processor over a federation.
    pub fn new(fed: Arc<Federation>) -> Processor {
        let engine = DiscoveryEngine::new(Arc::clone(&fed));
        let fedex = FedExecutor::new(Arc::clone(&fed));
        Processor { fed, engine, fedex }
    }

    /// The federation this processor operates on.
    pub fn federation(&self) -> &Arc<Federation> {
        &self.fed
    }

    /// Set the federated ship-wave concurrency (`1` = the sequential
    /// reference execution the parallel merge is byte-identical to).
    pub fn set_fed_workers(&mut self, workers: usize) {
        self.fedex.max_workers = workers;
    }

    /// Parse and execute WebTassili text in a session.
    pub fn submit(
        &self,
        session: &mut BrowserSession,
        text: &str,
        trace: Option<&mut Trace>,
    ) -> WfResult<Response> {
        let stmt = parse(text)?;
        self.execute(session, &stmt, trace)
    }

    /// Execute a parsed statement in a session.
    pub fn execute(
        &self,
        session: &mut BrowserSession,
        stmt: &Statement,
        mut trace: Option<&mut Trace>,
    ) -> WfResult<Response> {
        if let Some(t) = trace.as_deref_mut() {
            t.event(Layer::Query, format!("executing: {stmt}"));
        }
        let response = match stmt {
            Statement::FindCoalitions { topic } => {
                let outcome = self.engine.find(&session.site, topic)?;
                if let Some(t) = trace.as_deref_mut() {
                    t.discovery_event(
                        format!(
                            "discovery visited {} co-database(s), {} round-trips",
                            outcome.stats.sites_visited,
                            outcome.stats.total_round_trips()
                        ),
                        self.fed.client_orb().metrics(),
                    );
                }
                session.last_leads = outcome.leads.clone();
                Response::Leads {
                    leads: outcome.leads,
                    round_trips: outcome.stats.total_round_trips(),
                }
            }
            Statement::FindDatabases { topic } => {
                let outcome = self.engine.find(&session.site, topic)?;
                session.last_leads = outcome.leads.clone();
                let mut names = Vec::new();
                for lead in &outcome.leads {
                    if let Lead::Coalition { name, via_site, .. } = lead {
                        let ior = self.codb_ior_of(via_site)?;
                        if let Ok(v) =
                            self.fed
                                .invoke(&ior, "members", &[Value::string(name.clone())])
                        {
                            names.extend(value_to_strings(&v)?);
                        }
                    }
                }
                names.sort();
                names.dedup();
                Response::Databases(names)
            }
            Statement::ConnectToCoalition { name } => {
                let via_site = self.locate_coalition(session, name)?;
                if let Some(t) = trace.as_deref_mut() {
                    t.channel_event(
                        format!("bound to co-database of {via_site}"),
                        self.fed.client_orb().metrics(),
                    );
                }
                session.coalition = Some((name.clone(), via_site.clone()));
                Response::Connected {
                    coalition: name.clone(),
                    via_site,
                }
            }
            Statement::DisplaySubclasses { class } => {
                let ior = self.connected_codb(session)?;
                let v = self
                    .fed
                    .invoke(&ior, "subclasses", &[Value::string(class.clone())])?;
                Response::Subclasses(value_to_strings(&v)?)
            }
            Statement::DisplayInstances { class } => {
                let ior = self.connected_codb(session)?;
                if let Some(t) = trace.as_deref_mut() {
                    t.event(Layer::Metadata, format!("listing instances of {class}"));
                }
                let v = self
                    .fed
                    .invoke(&ior, "members", &[Value::string(class.clone())])?;
                Response::Instances(value_to_strings(&v)?)
            }
            Statement::DisplayDocument { instance, .. } => {
                let (descriptor, _) = self.find_descriptor(session, instance)?;
                let url = &descriptor.documentation_url;
                let formats = self.fed.docs().formats(url);
                let document = self.fed.docs().fetch_best(url)?;
                if let Some(t) = trace.as_deref_mut() {
                    t.event(Layer::Data, format!("fetched document {url}"));
                }
                Response::Document { formats, document }
            }
            Statement::DisplayAccessInfo { instance } => {
                let (descriptor, _) = self.find_descriptor(session, instance)?;
                Response::AccessInfo(Box::new(descriptor))
            }
            Statement::DisplayInterface { instance } => {
                let (descriptor, _) = self.find_descriptor(session, instance)?;
                Response::Interface(descriptor.interface.iter().map(|t| t.render()).collect())
            }
            Statement::Invoke { instance, .. } => {
                let (descriptor, _) = self.find_descriptor(session, instance)?;
                // The wrapper address decides the native language.
                let native = if descriptor.wrapper.starts_with("jdbc:") {
                    translate_invoke_to_sql(stmt)?
                } else {
                    webfindit_tassili::translate::translate_invoke_to_oql(stmt)?
                };
                if let Some(t) = trace.as_deref_mut() {
                    t.event(Layer::Data, format!("translated to native query: {native}"));
                }
                self.run_native(session, instance, &native, trace.as_deref_mut())?
            }
            Statement::Native { instance, query } => {
                self.run_native(session, instance, query, trace.as_deref_mut())?
            }
            Statement::FedInvoke { .. } => {
                let outcome =
                    self.fedex
                        .execute(&self.engine, &session.site, stmt, trace.as_deref_mut())?;
                session.last_degraded = outcome.degraded.clone();
                Response::Federated(Box::new(outcome))
            }
            Statement::Explain(inner) => {
                let lines = match inner.as_ref() {
                    Statement::FedInvoke { .. } => self
                        .fedex
                        .plan(&self.engine, &session.site, inner)?
                        .render(),
                    Statement::Invoke { instance, .. } => {
                        let (descriptor, _) = self.find_descriptor(session, instance)?;
                        let (language, native) = if descriptor.wrapper.starts_with("jdbc:") {
                            ("SQL", translate_invoke_to_sql(inner)?)
                        } else {
                            (
                                "OQL",
                                webfindit_tassili::translate::translate_invoke_to_oql(inner)?,
                            )
                        };
                        vec![format!("Invoke @ {instance} [{language}]: {native}")]
                    }
                    other => vec![format!("No plan surface for: {other}")],
                };
                Response::Plan(lines)
            }
            // ---- management -------------------------------------------
            Statement::CreateCoalition {
                name,
                parent,
                documentation,
            } => {
                let site = self.fed.site(&session.site)?;
                let mut args = vec![Value::string(name.clone())];
                args.push(match parent {
                    Some(p) => Value::string(p.clone()),
                    None => Value::Null,
                });
                args.push(Value::string(documentation.clone().unwrap_or_default()));
                self.fed.invoke(&site.codb_ior, "create_coalition", &args)?;
                Response::Ack {
                    message: format!("coalition {name} created at {}", site.name),
                    calls: 1,
                }
            }
            Statement::DissolveCoalition { name } => {
                let mut calls = 0;
                for site_name in self.fed.site_names() {
                    let site = self.fed.site(&site_name)?;
                    calls += 1;
                    match self.fed.invoke(
                        &site.codb_ior,
                        "dissolve_coalition",
                        &[Value::string(name.clone())],
                    ) {
                        Ok(_) => {}
                        Err(WebfinditError::Orb(webfindit_orb::OrbError::RemoteException {
                            system: false,
                            ..
                        })) => {}
                        Err(e) => return Err(e),
                    }
                }
                Response::Ack {
                    message: format!("coalition {name} dissolved"),
                    calls,
                }
            }
            Statement::Join {
                instance,
                coalition,
            } => {
                let calls = self.fed.join_coalition(instance, coalition, "")?;
                Response::Ack {
                    message: format!("{instance} joined {coalition}"),
                    calls,
                }
            }
            Statement::Leave {
                instance,
                coalition,
            } => {
                let calls = self.fed.leave_coalition(instance, coalition)?;
                Response::Ack {
                    message: format!("{instance} left {coalition}"),
                    calls,
                }
            }
            Statement::AddLink {
                from,
                to,
                description,
            } => {
                let to_end = |t: &webfindit_tassili::LinkTarget| match t {
                    webfindit_tassili::LinkTarget::Coalition(n) => LinkEnd::Coalition(n.clone()),
                    webfindit_tassili::LinkTarget::Instance(n) => LinkEnd::Database(n.clone()),
                };
                let link = ServiceLink {
                    from: to_end(from),
                    to: to_end(to),
                    description: description.clone().unwrap_or_default(),
                };
                let calls = self.fed.add_service_link(&link)?;
                Response::Ack {
                    message: format!("service link {} recorded", link.link_name()),
                    calls,
                }
            }
        };
        if let Some(t) = trace {
            t.event(Layer::Query, "response ready");
        }
        Ok(response)
    }

    fn codb_ior_of(&self, site: &str) -> WfResult<Ior> {
        Ok(self.fed.naming_client().resolve(&format!("codb/{site}"))?)
    }

    fn isi_ior_of(&self, site: &str) -> WfResult<Ior> {
        Ok(self.fed.naming_client().resolve(&format!("isi/{site}"))?)
    }

    /// The co-database the session browses: the connected coalition's
    /// reporting site, or the session's local site.
    fn connected_codb(&self, session: &BrowserSession) -> WfResult<Ior> {
        match &session.coalition {
            Some((_, via_site)) => self.codb_ior_of(via_site),
            None => Ok(self.fed.site(&session.site)?.codb_ior),
        }
    }

    /// Find which site's co-database can serve `coalition`.
    fn locate_coalition(&self, session: &BrowserSession, coalition: &str) -> WfResult<String> {
        // Local first.
        let local = self.fed.site(&session.site)?;
        if local.codb.read().subclasses(coalition).is_ok() {
            return Ok(local.name);
        }
        // Then the most recent discovery leads.
        for lead in &session.last_leads {
            if let Lead::Coalition { name, via_site, .. } = lead {
                if name.eq_ignore_ascii_case(coalition) {
                    return Ok(via_site.clone());
                }
            }
        }
        // Last resort: any site that knows it.
        for name in self.fed.site_names() {
            let site = self.fed.site(&name)?;
            if site.codb.read().subclasses(coalition).is_ok() {
                return Ok(site.name);
            }
        }
        Err(WebfinditError::NothingFound(coalition.to_owned()))
    }

    /// Find the descriptor of `instance`: connected co-database first,
    /// then the local one, then any.
    pub fn find_descriptor(
        &self,
        session: &BrowserSession,
        instance: &str,
    ) -> WfResult<(InformationSource, String)> {
        let mut candidates: Vec<String> = Vec::new();
        if let Some((_, via)) = &session.coalition {
            candidates.push(via.clone());
        }
        candidates.push(session.site.clone());
        candidates.extend(self.fed.site_names());
        let mut seen = std::collections::BTreeSet::new();
        for site in candidates {
            if !seen.insert(site.to_ascii_lowercase()) {
                continue;
            }
            let Ok(ior) = self.codb_ior_of(&site) else {
                continue;
            };
            if let Ok(v) = self
                .fed
                .invoke(&ior, "descriptor", &[Value::string(instance)])
            {
                return Ok((value_to_descriptor(&v)?, site));
            }
        }
        Err(WebfinditError::UnknownSite(instance.to_owned()))
    }

    /// Execute a native query through a source's ISI.
    fn run_native(
        &self,
        _session: &BrowserSession,
        instance: &str,
        query: &str,
        mut trace: Option<&mut Trace>,
    ) -> WfResult<Response> {
        let ior = self.isi_ior_of(instance)?;
        if let Some(t) = trace.as_deref_mut() {
            t.channel_event(
                format!("GIOP request execute → isi/{instance}"),
                self.fed.client_orb().metrics(),
            );
        }
        let v = self.fed.invoke(&ior, "execute", &[Value::string(query)])?;
        if let Some(t) = trace {
            // The ISI reports its execution counters into the hosting
            // ORB's metrics; annotate the Data-layer event with them.
            let hosting_orb = self
                .fed
                .site(instance)
                .and_then(|s| self.fed.orb(&s.orb_name));
            match hosting_orb {
                Ok(orb) => t.data_event("native query executed by the wrapper", orb.metrics()),
                Err(_) => t.event(Layer::Data, "native query executed by the wrapper"),
            }
        }
        self.decode_isi_output(&v)
    }

    fn decode_isi_output(&self, v: &Value) -> WfResult<Response> {
        if v.field("object_rows").is_some() {
            let columns = value_to_strings(
                v.field("columns")
                    .ok_or_else(|| WebfinditError::Protocol("missing columns".into()))?,
            )?;
            let mut rows = Vec::new();
            if let Some(seq) = v.field("rows").and_then(Value::as_sequence) {
                for r in seq {
                    let cells = r
                        .as_sequence()
                        .ok_or_else(|| WebfinditError::Protocol("bad object row".into()))?;
                    rows.push(cells.iter().map(|c| c.to_string()).collect());
                }
            }
            return Ok(Response::Objects { columns, rows });
        }
        if v.field("columns").is_some() {
            return Ok(Response::Table(value_to_result_set(v)?));
        }
        if let Some(n) = v.field("count") {
            return Ok(Response::Scalar(format!("{n} row(s) affected")));
        }
        Ok(Response::Scalar(v.to_string()))
    }
}
