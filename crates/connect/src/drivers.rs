//! Concrete drivers: four relational vendors plus the two OO bridges.

use crate::api::{
    parse_url, BridgeKind, Connection, DataMetrics, Driver, QueryOutput, SourceMetadata,
};
use crate::registry::{DataSourceRegistry, OoInstance};
use crate::{ConnectError, ConnectResult};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use webfindit_base::sync::Mutex;
use webfindit_oostore::{OValue, OqlQuery};
use webfindit_relstore::engine::ExecOutcome;
use webfindit_relstore::{Database, Dialect};

/// Per-bridge traffic counters (read by experiment E3).
#[derive(Debug, Default)]
pub struct BridgeStats {
    /// Statements/invocations carried.
    pub calls: AtomicU64,
    /// Data rows returned.
    pub rows: AtomicU64,
}

impl BridgeStats {
    /// Snapshot `(calls, rows)`.
    pub fn snapshot(&self) -> (u64, u64) {
        (
            self.calls.load(Ordering::Relaxed),
            self.rows.load(Ordering::Relaxed),
        )
    }
}

// ---- relational (JDBC) --------------------------------------------------

/// A JDBC-style driver for one relational vendor.
pub struct RelationalDriver {
    vendor: &'static str,
    dialect: Dialect,
    registry: Arc<DataSourceRegistry>,
    stats: Arc<BridgeStats>,
}

impl RelationalDriver {
    /// Create a driver for `dialect`, resolving against `registry`.
    pub fn new(dialect: Dialect, registry: Arc<DataSourceRegistry>) -> RelationalDriver {
        let vendor = match dialect {
            Dialect::Oracle => "oracle",
            Dialect::MSql => "msql",
            Dialect::Db2 => "db2",
            Dialect::Sybase => "sybase",
            Dialect::Canonical => "canonical",
        };
        RelationalDriver {
            vendor,
            dialect,
            registry,
            stats: Arc::new(BridgeStats::default()),
        }
    }

    /// The driver's cumulative bridge statistics.
    pub fn stats(&self) -> Arc<BridgeStats> {
        Arc::clone(&self.stats)
    }
}

impl Driver for RelationalDriver {
    fn name(&self) -> &str {
        self.vendor
    }

    fn accepts(&self, url: &str) -> bool {
        parse_url(url)
            .map(|p| p.scheme == "jdbc" && p.vendor == self.vendor)
            .unwrap_or(false)
    }

    fn connect(&self, url: &str) -> ConnectResult<Box<dyn Connection>> {
        let parts = parse_url(url).ok_or_else(|| ConnectError::BadUrl(url.to_owned()))?;
        let db = self.registry.relational(parts.vendor, parts.instance)?;
        // The registered instance must actually speak this dialect —
        // catching mis-deployments early.
        {
            let guard = db.lock();
            if guard.dialect() != self.dialect {
                return Err(ConnectError::WrongParadigm(format!(
                    "instance {} speaks {}, driver is {}",
                    guard.name(),
                    guard.dialect(),
                    self.dialect
                )));
            }
        }
        Ok(Box::new(RelationalConnection {
            db: Some(db),
            stats: Arc::clone(&self.stats),
            last_metrics: None,
        }))
    }
}

/// A live JDBC-style connection.
pub struct RelationalConnection {
    db: Option<Arc<Mutex<Database>>>,
    stats: Arc<BridgeStats>,
    last_metrics: Option<DataMetrics>,
}

impl RelationalConnection {
    fn live(&self) -> ConnectResult<&Arc<Mutex<Database>>> {
        self.db.as_ref().ok_or(ConnectError::Closed)
    }
}

impl Connection for RelationalConnection {
    fn execute(&mut self, text: &str) -> ConnectResult<QueryOutput> {
        let db = self.live()?;
        self.stats.calls.fetch_add(1, Ordering::Relaxed);
        let (outcome, metrics) = {
            let mut guard = db.lock();
            // Durability work (WAL appends, checkpoint flushes,
            // recovery replay) is cumulative per database, so this
            // statement's share is the before/after delta — captured
            // under the same lock so a concurrent statement on a
            // sibling connection can't interleave.
            let before = guard.storage_stats();
            let outcome = guard.execute(text)?;
            // `last_exec_metrics` is only refreshed by SELECTs; for
            // DML/DDL outcomes it still describes an older query and
            // must not be attributed to this statement.
            let mut metrics = match &outcome {
                ExecOutcome::Rows(_) => guard
                    .last_exec_metrics()
                    .map(|m| DataMetrics {
                        rows_scanned: m.rows_scanned,
                        bytes_scanned: m.bytes_scanned,
                        index_hits: m.index_hits,
                        rows_spilled: m.rows_spilled,
                        ..DataMetrics::default()
                    })
                    .unwrap_or_default(),
                _ => DataMetrics::default(),
            };
            if let (Some(b), Some(a)) = (before, guard.storage_stats()) {
                metrics.wal_appends = a.wal_appends - b.wal_appends;
                metrics.pages_flushed = a.pages_flushed - b.pages_flushed;
                metrics.recovery_redo = a.recovery_redo - b.recovery_redo;
                metrics.recovery_undo = a.recovery_undo - b.recovery_undo;
            }
            (outcome, metrics)
        };
        self.last_metrics = Some(metrics);
        Ok(match outcome {
            ExecOutcome::Rows(rs) => {
                self.stats
                    .rows
                    .fetch_add(rs.rows.len() as u64, Ordering::Relaxed);
                QueryOutput::Rows(rs)
            }
            ExecOutcome::Count(n) => QueryOutput::Count(n),
            ExecOutcome::Done => QueryOutput::Done,
        })
    }

    fn begin(&mut self) -> ConnectResult<QueryOutput> {
        self.execute("BEGIN")
    }

    fn commit(&mut self) -> ConnectResult<QueryOutput> {
        self.execute("COMMIT")
    }

    fn rollback(&mut self) -> ConnectResult<QueryOutput> {
        self.execute("ROLLBACK")
    }

    fn last_data_metrics(&self) -> Option<DataMetrics> {
        self.last_metrics
    }

    fn metadata(&self) -> ConnectResult<SourceMetadata> {
        let db = self.live()?;
        let guard = db.lock();
        let tables = guard
            .table_names()
            .into_iter()
            .filter_map(|t| guard.table(&t).map(|tab| tab.schema.clone()))
            .collect();
        Ok(SourceMetadata {
            product: guard.dialect().name().to_owned(),
            instance: guard.name().to_owned(),
            tables,
            classes: Vec::new(),
        })
    }

    fn bridge(&self) -> BridgeKind {
        BridgeKind::Jdbc
    }

    fn close(&mut self) {
        self.db = None;
    }
}

// ---- object-oriented bridges (JNI / native C++) -------------------------

/// A bridge driver for one object-database vendor.
///
/// `ontos` connects via the `jni:` scheme (the paper reaches Ontos from
/// OrbixWeb Java servers over JNI); `objectstore` connects via
/// `native:` (C++ method invocation from Orbix C++ servers).
pub struct ObjectDriver {
    vendor: &'static str,
    scheme: &'static str,
    bridge: BridgeKind,
    registry: Arc<DataSourceRegistry>,
    stats: Arc<BridgeStats>,
}

impl ObjectDriver {
    /// The Ontos-over-JNI driver.
    pub fn ontos(registry: Arc<DataSourceRegistry>) -> ObjectDriver {
        ObjectDriver {
            vendor: "ontos",
            scheme: "jni",
            bridge: BridgeKind::Jni,
            registry,
            stats: Arc::new(BridgeStats::default()),
        }
    }

    /// The ObjectStore-over-C++ driver.
    pub fn objectstore(registry: Arc<DataSourceRegistry>) -> ObjectDriver {
        ObjectDriver {
            vendor: "objectstore",
            scheme: "native",
            bridge: BridgeKind::NativeCpp,
            registry,
            stats: Arc::new(BridgeStats::default()),
        }
    }

    /// The driver's cumulative bridge statistics.
    pub fn stats(&self) -> Arc<BridgeStats> {
        Arc::clone(&self.stats)
    }
}

impl Driver for ObjectDriver {
    fn name(&self) -> &str {
        self.vendor
    }

    fn accepts(&self, url: &str) -> bool {
        parse_url(url)
            .map(|p| p.scheme == self.scheme && p.vendor == self.vendor)
            .unwrap_or(false)
    }

    fn connect(&self, url: &str) -> ConnectResult<Box<dyn Connection>> {
        let parts = parse_url(url).ok_or_else(|| ConnectError::BadUrl(url.to_owned()))?;
        let inst = self.registry.object(parts.vendor, parts.instance)?;
        Ok(Box::new(ObjectConnection {
            inst: Some(inst),
            bridge: self.bridge,
            vendor: self.vendor,
            stats: Arc::clone(&self.stats),
            last_metrics: None,
        }))
    }
}

/// A live object-database connection.
pub struct ObjectConnection {
    inst: Option<Arc<Mutex<OoInstance>>>,
    bridge: BridgeKind,
    vendor: &'static str,
    stats: Arc<BridgeStats>,
    last_metrics: Option<DataMetrics>,
}

impl ObjectConnection {
    fn live(&self) -> ConnectResult<&Arc<Mutex<OoInstance>>> {
        self.inst.as_ref().ok_or(ConnectError::Closed)
    }
}

impl Connection for ObjectConnection {
    fn execute(&mut self, text: &str) -> ConnectResult<QueryOutput> {
        let inst = self.live()?;
        self.stats.calls.fetch_add(1, Ordering::Relaxed);
        let query = OqlQuery::parse(text)?;
        let inst = Arc::clone(inst);
        let guard = inst.lock();
        let (result, m) = query.execute_with_metrics(&guard.store)?;
        self.last_metrics = Some(DataMetrics {
            rows_scanned: m.objects_scanned,
            rows_spilled: m.rows_spilled,
            ..DataMetrics::default()
        });
        self.stats
            .rows
            .fetch_add(result.rows.len() as u64, Ordering::Relaxed);
        Ok(QueryOutput::Objects {
            columns: result.columns,
            rows: result.rows,
        })
    }

    fn last_data_metrics(&self) -> Option<DataMetrics> {
        self.last_metrics
    }

    fn invoke(&mut self, method: &str, args: &[OValue]) -> ConnectResult<QueryOutput> {
        let inst = self.live()?;
        self.stats.calls.fetch_add(1, Ordering::Relaxed);
        // Method invocations are addressed `Class.method` or
        // `Class.method@oid`.
        let (class, rest) = method.split_once('.').ok_or_else(|| {
            ConnectError::WrongParadigm(format!("method {method} needs Class.name form"))
        })?;
        let (name, receiver) = match rest.split_once('@') {
            Some((n, oid)) => {
                let id: u64 = oid.parse().map_err(|_| {
                    ConnectError::WrongParadigm(format!("bad receiver oid in {method}"))
                })?;
                (n, Some(webfindit_oostore::Oid(id)))
            }
            None => (rest, None),
        };
        let guard = inst.lock();
        let out = guard
            .methods
            .invoke_on_class(&guard.store, class, receiver, name, args)?;
        Ok(QueryOutput::Value(out))
    }

    fn metadata(&self) -> ConnectResult<SourceMetadata> {
        let inst = self.live()?;
        let guard = inst.lock();
        Ok(SourceMetadata {
            product: match self.vendor {
                "ontos" => "Ontos".to_owned(),
                _ => "ObjectStore".to_owned(),
            },
            instance: guard.store.name().to_owned(),
            tables: Vec::new(),
            classes: guard.store.class_names(),
        })
    }

    fn bridge(&self) -> BridgeKind {
        self.bridge
    }

    fn close(&mut self) {
        self.inst = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webfindit_oostore::method::MethodTable;
    use webfindit_oostore::model::{ClassDef, OType};
    use webfindit_oostore::ObjectStore;

    fn registry() -> Arc<DataSourceRegistry> {
        let reg = DataSourceRegistry::new();
        let mut db = Database::new("RBH", Dialect::Oracle);
        db.execute("CREATE TABLE beds (bed_id INT PRIMARY KEY, location TEXT)")
            .unwrap();
        db.execute("INSERT INTO beds VALUES (1, 'ward A'), (2, 'ward B')")
            .unwrap();
        reg.register_relational("oracle", "RBH", db);

        let mut store = ObjectStore::new("PrinceCharles");
        store
            .define_class(ClassDef::root("Treatment").attr("name", OType::Text))
            .unwrap();
        store
            .create(
                "Treatment",
                [("name".to_string(), OValue::from("dialysis"))],
            )
            .unwrap();
        let mut mt = MethodTable::new();
        mt.register("Treatment", "count_all", |s, _r, _a| {
            Ok(OValue::Int(
                s.instances_of("Treatment", true).unwrap().len() as i64,
            ))
        });
        reg.register_object("ontos", "PrinceCharles", store, mt);
        reg
    }

    #[test]
    fn jdbc_query_roundtrip() {
        let reg = registry();
        let driver = RelationalDriver::new(Dialect::Oracle, Arc::clone(&reg));
        assert!(driver.accepts("jdbc:oracle://h/RBH"));
        assert!(!driver.accepts("jdbc:msql://h/RBH"));
        assert!(!driver.accepts("jni:oracle://h/RBH"));
        let mut conn = driver.connect("jdbc:oracle://h/RBH").unwrap();
        let out = conn
            .execute("SELECT location FROM beds ORDER BY bed_id")
            .unwrap();
        assert_eq!(out.row_count(), 2);
        assert_eq!(conn.bridge(), BridgeKind::Jdbc);
        assert_eq!(driver.stats().snapshot(), (1, 2));

        let md = conn.metadata().unwrap();
        assert_eq!(md.product, "Oracle");
        assert_eq!(md.tables.len(), 1);

        conn.close();
        assert!(matches!(
            conn.execute("SELECT * FROM beds"),
            Err(ConnectError::Closed)
        ));
    }

    #[test]
    fn dialect_mismatch_rejected() {
        let reg = registry();
        // Register the same instance name under msql to create a clash.
        let db = Database::new("RBH", Dialect::Oracle);
        reg.register_relational("msql", "RBH", db);
        let driver = RelationalDriver::new(Dialect::MSql, Arc::clone(&reg));
        assert!(matches!(
            driver.connect("jdbc:msql://h/RBH"),
            Err(ConnectError::WrongParadigm(_))
        ));
    }

    #[test]
    fn jni_bridge_oql_and_methods() {
        let reg = registry();
        let driver = ObjectDriver::ontos(Arc::clone(&reg));
        assert!(driver.accepts("jni:ontos://h/PrinceCharles"));
        assert!(!driver.accepts("native:ontos://h/PrinceCharles"));
        let mut conn = driver.connect("jni:ontos://h/PrinceCharles").unwrap();
        assert_eq!(conn.bridge(), BridgeKind::Jni);

        let out = conn.execute("select name from Treatment").unwrap();
        assert_eq!(out.row_count(), 1);

        let v = conn.invoke("Treatment.count_all", &[]).unwrap();
        assert_eq!(v, QueryOutput::Value(OValue::Int(1)));

        assert!(conn.invoke("count_all", &[]).is_err()); // missing class
        assert_eq!(driver.stats().snapshot().0, 3);
    }

    #[test]
    fn relational_connection_rejects_invoke() {
        let reg = registry();
        let driver = RelationalDriver::new(Dialect::Oracle, Arc::clone(&reg));
        let mut conn = driver.connect("jdbc:oracle://h/RBH").unwrap();
        assert!(matches!(
            conn.invoke("X.y", &[]),
            Err(ConnectError::WrongParadigm(_))
        ));
    }

    #[test]
    fn durable_transactions_and_crash_restart() {
        use std::sync::Arc as StdArc;
        use webfindit_relstore::file_mgr::{SimVfs, Vfs};

        let reg = DataSourceRegistry::new();
        let vfs = SimVfs::new();
        let db = Database::open_vfs(
            StdArc::clone(&vfs) as StdArc<dyn Vfs>,
            "RBH",
            Dialect::Oracle,
        )
        .unwrap();
        reg.register_relational("oracle", "RBH", db);
        let driver = RelationalDriver::new(Dialect::Oracle, StdArc::clone(&reg));
        let mut conn = driver.connect("jdbc:oracle://h/RBH").unwrap();

        conn.execute("CREATE TABLE beds (bed_id INT PRIMARY KEY, location TEXT)")
            .unwrap();
        conn.begin().unwrap();
        conn.execute("INSERT INTO beds VALUES (1, 'ward A')")
            .unwrap();
        conn.commit().unwrap();
        let m = conn.last_data_metrics().unwrap();
        assert!(m.wal_appends > 0, "commit must report WAL traffic");

        // In-flight work at the moment of the crash must not survive.
        conn.begin().unwrap();
        conn.execute("INSERT INTO beds VALUES (2, 'ward B')")
            .unwrap();
        assert!(reg.crash_relational("oracle", "RBH"));
        vfs.power_loss(7);
        assert!(matches!(
            conn.execute("SELECT * FROM beds"),
            Err(ConnectError::Rel(
                webfindit_relstore::RelError::Unavailable(_)
            ))
        ));

        reg.restart_relational("oracle", "RBH").unwrap();
        let out = conn
            .execute("SELECT bed_id FROM beds ORDER BY bed_id")
            .unwrap();
        let m = conn.last_data_metrics().unwrap();
        assert_eq!(out.row_count(), 1, "committed row survives, loser is gone");
        assert_eq!(
            m.recovery_redo + m.recovery_undo,
            0,
            "recovery already done"
        );

        // Crashing an in-memory instance is meaningless and says so.
        reg.register_relational("msql", "Mem", Database::new("Mem", Dialect::MSql));
        assert!(!reg.crash_relational("msql", "Mem"));
        assert!(!reg.crash_relational("msql", "Ghost"));
    }

    #[test]
    fn unknown_instance() {
        let reg = registry();
        let driver = RelationalDriver::new(Dialect::Oracle, reg);
        assert!(matches!(
            driver.connect("jdbc:oracle://h/Ghost"),
            Err(ConnectError::UnknownDataSource(_))
        ));
    }
}
