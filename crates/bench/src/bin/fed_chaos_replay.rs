//! Seeded chaos replay for federated query execution.
//!
//! Builds the 14-site healthcare deployment, generates a `ChaosPlan`
//! from the seed on the command line (default 1999), and after every
//! applied fault step runs the federated acceptance queries — a union
//! across the Research coalition and the insurers' semi-join — printing
//! a fully deterministic transcript: merged row count, answering
//! members, and the degraded set of each execution. A member killed by
//! the plan must show up in `degraded` with the surviving members'
//! rows intact, never as a query error. The CI `chaos` job runs this
//! twice per seed and diffs the transcripts; any divergence (schedule,
//! degradation, merge order, or row content) fails the job.

use std::thread;
use std::time::Duration;
use webfindit::discovery::DiscoveryEngine;
use webfindit::orb::CallOptions;
use webfindit::FedExecutor;
use webfindit_bench::header;
use webfindit_healthcare::build_healthcare;
use webfindit_tassili::parse;

const QUERIES: &[(&str, &str)] = &[
    (
        "research union",
        "Invoke ResearchProjects.Funding() At Coalition Research;",
    ),
    (
        "insurance semi-join",
        "Invoke Policies.Premium() At Coalition Medical Insurance \
         Where Policies.Holder In Members.Name();",
    ),
];

fn main() {
    let plan_seed: u64 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("seed must be a u64"))
        .unwrap_or(1999);

    header(
        "Federated chaos replay",
        "seeded fault schedule against federated query execution",
    );
    let dep = build_healthcare(1999).expect("healthcare deployment");
    dep.fed
        .set_call_options(CallOptions::with_deadline(Duration::from_millis(80)));
    let engine = DiscoveryEngine::new(dep.fed.clone());
    let executor = FedExecutor::new(dep.fed.clone());
    let stmts: Vec<_> = QUERIES
        .iter()
        .map(|(name, text)| (*name, parse(text).expect("query parses")))
        .collect();

    let plan = dep.chaos_plan(plan_seed, 16);
    println!("plan seed: {plan_seed}");
    println!("plan digest: {:#018x}", plan.digest());
    println!("events: {}", plan.events().len());

    for step in 1..=plan.last_step() {
        for line in plan.apply_step(step, &*dep.fed) {
            println!("{line}");
        }
        // Let breakers opened by the previous step finish their
        // cooldown so admission depends on endpoint health, not timing.
        thread::sleep(Duration::from_millis(60));
        for (name, stmt) in &stmts {
            let out = executor
                .execute(&engine, "QUT Research", stmt, None)
                .expect("a federated query degrades, it does not error");
            let mut lost = out.degraded_sites();
            lost.sort_unstable();
            lost.dedup();
            println!(
                "  {name}: rows={} sites={:?} complete={} degraded={lost:?}",
                out.rows.len(),
                out.per_site
                    .iter()
                    .map(|(s, n)| format!("{s}:{n}"))
                    .collect::<Vec<_>>(),
                out.complete(),
            );
        }
    }

    // The schedule heals everything it inflicts: the closing merges
    // must be complete and identical to a fresh deployment's.
    thread::sleep(Duration::from_millis(60));
    for (name, stmt) in &stmts {
        let out = executor
            .execute(&engine, "QUT Research", stmt, None)
            .expect("final federated query");
        println!(
            "final {name}: rows={} complete={}",
            out.rows.len(),
            out.complete(),
        );
        assert!(out.complete(), "healed federation must answer completely");
    }
    println!("replay of seed {plan_seed} complete");
    dep.fed.shutdown();
}
