//! A self-describing value model — the analog of CORBA's `any`/TypeCode.
//!
//! WebFINDIT's query processor builds requests dynamically (it cannot know
//! at compile time which operations a remote information source exports),
//! which in CORBA terms is the Dynamic Invocation Interface. DII requires
//! values that carry their own type description on the wire. [`Value`] is
//! that model: each value is encoded as a one-octet type tag followed by
//! its CDR representation, so any receiver can decode it without IDL.

use crate::cdr::{CdrReader, CdrWriter};
use crate::ior::Ior;
use crate::{WireError, WireResult};
use std::fmt;

/// Type tags used on the wire. One octet each.
mod tag {
    pub const VOID: u8 = 0;
    pub const BOOL: u8 = 1;
    pub const OCTET: u8 = 2;
    pub const SHORT: u8 = 3;
    pub const LONG: u8 = 4;
    pub const LONGLONG: u8 = 5;
    pub const ULONG: u8 = 6;
    pub const FLOAT: u8 = 7;
    pub const DOUBLE: u8 = 8;
    pub const STRING: u8 = 9;
    pub const SEQUENCE: u8 = 10;
    pub const STRUCT: u8 = 11;
    pub const OBJECT_REF: u8 = 12;
    pub const NULL: u8 = 13;
}

/// A dynamically-typed, self-describing value.
///
/// This is the currency of every WebFINDIT remote invocation: operation
/// arguments, result rows, metadata descriptors, and exceptions all travel
/// as `Value`s inside GIOP Request/Reply bodies.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// No value (an operation with no result).
    Void,
    /// Explicit null / absent value (SQL NULL travels as this).
    Null,
    /// Boolean.
    Bool(bool),
    /// Single octet.
    Octet(u8),
    /// 16-bit signed integer.
    Short(i16),
    /// 32-bit signed integer.
    Long(i32),
    /// 64-bit signed integer.
    LongLong(i64),
    /// 32-bit unsigned integer.
    ULong(u32),
    /// Single-precision float.
    Float(f32),
    /// Double-precision float.
    Double(f64),
    /// UTF-8 string.
    Str(String),
    /// Homogeneous-or-not ordered collection.
    Sequence(Vec<Value>),
    /// Named-field record. Field order is significant on the wire.
    Struct(Vec<(String, Value)>),
    /// A reference to a remote CORBA object.
    ObjectRef(Ior),
}

impl Value {
    /// Build a struct value from `(name, value)` pairs.
    pub fn record<I, S>(fields: I) -> Value
    where
        I: IntoIterator<Item = (S, Value)>,
        S: Into<String>,
    {
        Value::Struct(fields.into_iter().map(|(n, v)| (n.into(), v)).collect())
    }

    /// Shorthand for a string value.
    pub fn string(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Look up a field of a struct value by name.
    pub fn field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Struct(fields) => fields.iter().find(|(n, _)| n == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// View as a string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// View as an i64, widening any integer variant.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Short(v) => Some(*v as i64),
            Value::Long(v) => Some(*v as i64),
            Value::LongLong(v) => Some(*v),
            Value::ULong(v) => Some(*v as i64),
            Value::Octet(v) => Some(*v as i64),
            _ => None,
        }
    }

    /// View as an f64, widening floats and integers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v as f64),
            Value::Double(v) => Some(*v),
            other => other.as_i64().map(|i| i as f64),
        }
    }

    /// View as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// View as a sequence slice.
    pub fn as_sequence(&self) -> Option<&[Value]> {
        match self {
            Value::Sequence(v) => Some(v),
            _ => None,
        }
    }

    /// True for `Null` and `Void`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null | Value::Void)
    }

    /// Encode this value (tag + body) into a CDR writer.
    pub fn encode(&self, w: &mut CdrWriter) -> WireResult<()> {
        match self {
            Value::Void => w.write_octet(tag::VOID),
            Value::Null => w.write_octet(tag::NULL),
            Value::Bool(b) => {
                w.write_octet(tag::BOOL);
                w.write_bool(*b);
            }
            Value::Octet(v) => {
                w.write_octet(tag::OCTET);
                w.write_octet(*v);
            }
            Value::Short(v) => {
                w.write_octet(tag::SHORT);
                w.write_short(*v);
            }
            Value::Long(v) => {
                w.write_octet(tag::LONG);
                w.write_long(*v);
            }
            Value::LongLong(v) => {
                w.write_octet(tag::LONGLONG);
                w.write_longlong(*v);
            }
            Value::ULong(v) => {
                w.write_octet(tag::ULONG);
                w.write_ulong(*v);
            }
            Value::Float(v) => {
                w.write_octet(tag::FLOAT);
                w.write_float(*v);
            }
            Value::Double(v) => {
                w.write_octet(tag::DOUBLE);
                w.write_double(*v);
            }
            Value::Str(s) => {
                w.write_octet(tag::STRING);
                w.write_string(s)?;
            }
            Value::Sequence(items) => {
                w.write_octet(tag::SEQUENCE);
                w.write_ulong(items.len() as u32);
                for item in items {
                    item.encode(w)?;
                }
            }
            Value::Struct(fields) => {
                w.write_octet(tag::STRUCT);
                w.write_ulong(fields.len() as u32);
                for (name, value) in fields {
                    w.write_string(name)?;
                    value.encode(w)?;
                }
            }
            Value::ObjectRef(ior) => {
                w.write_octet(tag::OBJECT_REF);
                ior.encode(w)?;
            }
        }
        Ok(())
    }

    /// Decode a value (tag + body) from a CDR reader.
    pub fn decode(r: &mut CdrReader<'_>) -> WireResult<Value> {
        let t = r.read_octet()?;
        Ok(match t {
            tag::VOID => Value::Void,
            tag::NULL => Value::Null,
            tag::BOOL => Value::Bool(r.read_bool()?),
            tag::OCTET => Value::Octet(r.read_octet()?),
            tag::SHORT => Value::Short(r.read_short()?),
            tag::LONG => Value::Long(r.read_long()?),
            tag::LONGLONG => Value::LongLong(r.read_longlong()?),
            tag::ULONG => Value::ULong(r.read_ulong()?),
            tag::FLOAT => Value::Float(r.read_float()?),
            tag::DOUBLE => Value::Double(r.read_double()?),
            tag::STRING => Value::Str(r.read_string()?),
            tag::SEQUENCE => {
                let n = r.read_ulong()? as usize;
                // Each element is at least one tag octet; reject lengths
                // that could not possibly fit in the remaining buffer.
                if n > r.remaining() {
                    return Err(WireError::TooLarge {
                        declared: n as u64,
                        limit: r.remaining() as u64,
                    });
                }
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    items.push(Value::decode(r)?);
                }
                Value::Sequence(items)
            }
            tag::STRUCT => {
                let n = r.read_ulong()? as usize;
                if n > r.remaining() {
                    return Err(WireError::TooLarge {
                        declared: n as u64,
                        limit: r.remaining() as u64,
                    });
                }
                let mut fields = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = r.read_string()?;
                    let value = Value::decode(r)?;
                    fields.push((name, value));
                }
                Value::Struct(fields)
            }
            tag::OBJECT_REF => Value::ObjectRef(Ior::decode(r)?),
            other => {
                return Err(WireError::BadTag {
                    context: "value type tag",
                    tag: other as u32,
                })
            }
        })
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Void => write!(f, "void"),
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Octet(v) => write!(f, "{v}"),
            Value::Short(v) => write!(f, "{v}"),
            Value::Long(v) => write!(f, "{v}"),
            Value::LongLong(v) => write!(f, "{v}"),
            Value::ULong(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Sequence(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Value::Struct(fields) => {
                write!(f, "{{")?;
                for (i, (name, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{name}: {value}")?;
                }
                write!(f, "}}")
            }
            Value::ObjectRef(ior) => write!(f, "<objref {}>", ior.type_id),
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<i16> for Value {
    fn from(v: i16) -> Self {
        Value::Short(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Long(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::LongLong(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::ULong(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Sequence(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdr::ByteOrder;

    fn roundtrip(v: &Value, order: ByteOrder) -> Value {
        let mut w = CdrWriter::new(order);
        v.encode(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut r = CdrReader::new(&bytes, order);
        let back = Value::decode(&mut r).unwrap();
        assert!(r.is_exhausted(), "value decode left trailing bytes");
        back
    }

    #[test]
    fn primitive_roundtrips() {
        for order in [ByteOrder::BigEndian, ByteOrder::LittleEndian] {
            for v in [
                Value::Void,
                Value::Null,
                Value::Bool(true),
                Value::Octet(200),
                Value::Short(-7),
                Value::Long(123_456),
                Value::LongLong(-9_876_543_210),
                Value::ULong(4_000_000_000),
                Value::Float(0.5),
                Value::Double(std::f64::consts::PI),
                Value::string("Royal Brisbane Hospital"),
            ] {
                assert_eq!(roundtrip(&v, order), v);
            }
        }
    }

    #[test]
    fn nested_struct_roundtrip() {
        let v = Value::record([
            ("name", Value::string("AIDS and drugs")),
            ("funding", Value::Double(250_000.0)),
            (
                "keywords",
                Value::Sequence(vec![Value::string("aids"), Value::string("drugs")]),
            ),
            (
                "pi",
                Value::record([("id", Value::Long(42)), ("active", Value::Bool(true))]),
            ),
        ]);
        assert_eq!(roundtrip(&v, ByteOrder::LittleEndian), v);
    }

    #[test]
    fn field_lookup() {
        let v = Value::record([("a", Value::Long(1)), ("b", Value::string("x"))]);
        assert_eq!(v.field("b").and_then(Value::as_str), Some("x"));
        assert!(v.field("missing").is_none());
        assert!(Value::Long(3).field("a").is_none());
    }

    #[test]
    fn numeric_widening() {
        assert_eq!(Value::Short(-2).as_i64(), Some(-2));
        assert_eq!(Value::ULong(7).as_f64(), Some(7.0));
        assert_eq!(Value::string("x").as_i64(), None);
    }

    #[test]
    fn bad_tag_is_rejected() {
        let bytes = [99u8];
        let mut r = CdrReader::new(&bytes, ByteOrder::BigEndian);
        assert!(matches!(
            Value::decode(&mut r),
            Err(WireError::BadTag { .. })
        ));
    }

    #[test]
    fn hostile_sequence_length_is_rejected() {
        // tag SEQUENCE + length u32::MAX, then nothing.
        let mut w = CdrWriter::new(ByteOrder::BigEndian);
        w.write_octet(10);
        w.write_ulong(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = CdrReader::new(&bytes, ByteOrder::BigEndian);
        assert!(matches!(
            Value::decode(&mut r),
            Err(WireError::TooLarge { .. })
        ));
    }

    #[test]
    fn display_is_readable() {
        let v = Value::record([("title", Value::string("t")), ("n", Value::Long(3))]);
        assert_eq!(v.to_string(), "{title: t, n: 3}");
    }
}
