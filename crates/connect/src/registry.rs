//! The data-source registry: the simulated network of database servers.
//!
//! In the paper, URLs inside co-database descriptors name real hosts.
//! Here, a [`DataSourceRegistry`] plays the network: deployments register
//! running engine instances under `(vendor, instance)` keys, and drivers
//! resolve connection URLs against it.

use crate::{ConnectError, ConnectResult};
use std::collections::BTreeMap;
use std::sync::Arc;
use webfindit_base::sync::{Mutex, RwLock};
use webfindit_oostore::method::MethodTable;
use webfindit_oostore::ObjectStore;
use webfindit_relstore::Database;

/// A registered object database: the store plus its access routines.
pub struct OoInstance {
    /// The object store.
    pub store: ObjectStore,
    /// Registered access routines.
    pub methods: MethodTable,
}

/// `(vendor, instance)` → shared engine handle.
type InstanceMap<T> = RwLock<BTreeMap<(String, String), Arc<Mutex<T>>>>;

/// Shared registry of running database instances.
#[derive(Default)]
pub struct DataSourceRegistry {
    relational: InstanceMap<Database>,
    object: InstanceMap<OoInstance>,
}

impl DataSourceRegistry {
    /// Create an empty registry.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Register a relational instance under `(vendor, name)`.
    pub fn register_relational(
        &self,
        vendor: &str,
        name: &str,
        db: Database,
    ) -> Arc<Mutex<Database>> {
        // Durable instances fsync their WAL inside COMMIT while this
        // lock is held; that hold-across-blocking is deliberate (the
        // database is single-writer by design) and exempted from the
        // runtime detector.
        let handle = Arc::new(
            Mutex::new_labeled(db, "connect.registry.relational-db").allow_hold_across_blocking(
                "commit-path fsync runs under the per-instance database lock",
            ),
        );
        self.relational.write().insert(
            (vendor.to_ascii_lowercase(), name.to_ascii_lowercase()),
            Arc::clone(&handle),
        );
        handle
    }

    /// Register an object instance under `(vendor, name)`.
    pub fn register_object(
        &self,
        vendor: &str,
        name: &str,
        store: ObjectStore,
        methods: MethodTable,
    ) -> Arc<Mutex<OoInstance>> {
        let handle = Arc::new(Mutex::new(OoInstance { store, methods }));
        self.object.write().insert(
            (vendor.to_ascii_lowercase(), name.to_ascii_lowercase()),
            Arc::clone(&handle),
        );
        handle
    }

    /// Resolve a relational instance.
    pub fn relational(&self, vendor: &str, name: &str) -> ConnectResult<Arc<Mutex<Database>>> {
        self.relational
            .read()
            .get(&(vendor.to_ascii_lowercase(), name.to_ascii_lowercase()))
            .cloned()
            .ok_or_else(|| ConnectError::UnknownDataSource(format!("{vendor}/{name}")))
    }

    /// Resolve an object instance.
    pub fn object(&self, vendor: &str, name: &str) -> ConnectResult<Arc<Mutex<OoInstance>>> {
        self.object
            .read()
            .get(&(vendor.to_ascii_lowercase(), name.to_ascii_lowercase()))
            .cloned()
            .ok_or_else(|| ConnectError::UnknownDataSource(format!("{vendor}/{name}")))
    }

    /// Simulate a crash of a relational instance (the site loses
    /// power mid-flight). The handle stays registered — connections
    /// fail with the engine's `Unavailable` error until
    /// [`DataSourceRegistry::restart_relational`] runs recovery.
    /// Returns false for unknown or in-memory (non-durable) instances,
    /// whose state cannot survive a crash in any meaningful sense.
    pub fn crash_relational(&self, vendor: &str, name: &str) -> bool {
        match self.relational(vendor, name) {
            Ok(db) => db.lock().simulate_crash(),
            Err(_) => false,
        }
    }

    /// Restart a crashed relational instance: replay the WAL, roll
    /// back in-flight transactions, and bring the handle back online.
    /// A no-op for instances that are not crashed.
    pub fn restart_relational(&self, vendor: &str, name: &str) -> ConnectResult<()> {
        let db = self.relational(vendor, name)?;
        let mut guard = db.lock();
        if guard.is_crashed() {
            guard.reopen()?;
        }
        Ok(())
    }

    /// Remove an instance (database taken offline). Returns true if it
    /// existed. Used by the failure-injection tests.
    pub fn unregister(&self, vendor: &str, name: &str) -> bool {
        let key = (vendor.to_ascii_lowercase(), name.to_ascii_lowercase());
        let a = self.relational.write().remove(&key).is_some();
        let b = self.object.write().remove(&key).is_some();
        a || b
    }

    /// All registered `(vendor, instance)` pairs, for deployment listings.
    pub fn list(&self) -> Vec<(String, String)> {
        let mut out: Vec<(String, String)> = self
            .relational
            .read()
            .keys()
            .chain(self.object.read().keys())
            .cloned()
            .collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webfindit_relstore::Dialect;

    #[test]
    fn register_resolve_unregister() {
        let reg = DataSourceRegistry::new();
        reg.register_relational("Oracle", "RBH", Database::new("RBH", Dialect::Oracle));
        assert!(reg.relational("oracle", "rbh").is_ok());
        assert!(reg.relational("oracle", "ghost").is_err());
        assert!(reg.unregister("ORACLE", "RBH"));
        assert!(!reg.unregister("oracle", "rbh"));
        assert!(reg.relational("oracle", "rbh").is_err());
    }

    #[test]
    fn listing_is_sorted_and_merged() {
        let reg = DataSourceRegistry::new();
        reg.register_relational("oracle", "b", Database::new("b", Dialect::Oracle));
        reg.register_object("ontos", "a", ObjectStore::new("a"), MethodTable::new());
        assert_eq!(
            reg.list(),
            vec![
                ("ontos".to_string(), "a".to_string()),
                ("oracle".to_string(), "b".to_string())
            ]
        );
    }
}
