//! Per-file fact extraction: a lightweight item/statement parser over
//! scrubbed source that records, for every function, the calls it
//! makes (with the lock guards live at each call site), the locks it
//! acquires, the blocking tokens it contains, plus file-level facts the
//! interprocedural rules need — servant dispatch arms keyed by
//! interface id, `invoke("op")` string literals, `*Metrics` counter
//! declarations, and `impl Trace` counter mentions.
//!
//! The same statement machine also emits the five original token-level
//! findings (guard-across-blocking in its same-statement form,
//! std-sync-direct, lock-order-cycle edges, lock-unwrap,
//! thread-spawn-dispatch) so those rules keep their exact anchor lines
//! and the existing allowlist entries stay valid.

use crate::report::Finding;
use crate::scrub::{ident_before, in_ranges, is_ident_byte, scrub, test_line_ranges, StrLit};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Method calls after which the receiver's guard (or a temporary guard)
/// is considered "acquired".
pub const ACQUIRE_CALLS: [&str; 3] = ["lock", "read", "write"];

/// Tokens that mark a potentially long blocking operation: IIOP
/// invocations, frame I/O, connection establishment. A live guard at
/// one of these is a `guard-across-blocking` finding; reachability of
/// one from the reactor thread is a `reactor-blocking` finding.
pub const BLOCKING_TOKENS: [&str; 14] = [
    ".invoke(",
    ".invoke_with(",
    "invoke_codb(",
    "send_request(",
    "recv_reply(",
    ".send_frame(",
    ".recv_frame(",
    ".send_message(",
    ".recv_message(",
    "TcpStream::connect",
    ".locate(",
    ".call(",
    ".sync_all(",
    ".sync_data(",
];

/// Method names whose callee is a blocking token in its own right; call
/// sites with these names are covered by the direct
/// guard-across-blocking rule, so the transitive rule skips them.
pub const BLOCKING_CALL_NAMES: [&str; 14] = [
    "invoke",
    "invoke_with",
    "invoke_codb",
    "send_request",
    "recv_reply",
    "send_frame",
    "recv_frame",
    "send_message",
    "recv_message",
    "connect",
    "locate",
    "call",
    "sync_all",
    "sync_data",
];

/// Files the `thread-spawn-dispatch` rule applies to: the ORB crate's
/// request/connection handling. The reactor module is excluded by
/// construction — it IS the sanctioned worker pool, so its spawns
/// (the reactor thread and the pool workers) are the rule's fixed
/// point, not violations of it.
pub fn dispatch_path(file: &Path) -> bool {
    let rel = file.to_string_lossy().replace('\\', "/");
    rel.starts_with("crates/orb/src/") && !rel.ends_with("/reactor.rs")
}

/// Rust keywords and ubiquitous constructors that must never be read as
/// a call-graph edge target.
fn is_call_keyword(name: &str) -> bool {
    matches!(
        name,
        "if" | "match"
            | "while"
            | "for"
            | "loop"
            | "return"
            | "fn"
            | "in"
            | "as"
            | "let"
            | "move"
            | "unsafe"
            | "mut"
            | "ref"
            | "else"
            | "impl"
            | "where"
            | "use"
            | "pub"
            | "struct"
            | "enum"
            | "trait"
            | "type"
            | "mod"
            | "break"
            | "continue"
            | "await"
            | "dyn"
            | "Some"
            | "None"
            | "Ok"
            | "Err"
            | "Box"
            | "drop"
    )
}

/// A lock guard live inside the scope stack.
#[derive(Debug, Clone)]
pub struct Guard {
    /// Binding name, or `<temporary>` for construct-header guards.
    pub name: String,
    /// Lock-site label (final field/variable before the acquire call).
    pub site: String,
    /// Brace depth at which the guard dies.
    pub depth: usize,
    /// Line it was acquired on.
    pub line: usize,
}

/// How a call names its receiver, which decides how it resolves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Recv {
    /// `self.foo(…)` — resolves against the enclosing impl type.
    SelfDot,
    /// `Type::foo(…)` / `module::foo(…)` — the segment before `::`.
    Path(String),
    /// `expr.foo(…)` — resolves by method name across the workspace.
    Method,
    /// `foo(…)` — resolves to free functions by name.
    Bare,
}

#[derive(Debug, Clone)]
pub struct CallSite {
    pub name: String,
    pub recv: Recv,
    pub line: usize,
    /// Guards live when the call is made (for the transitive
    /// guard-across-blocking rule).
    pub guards: Vec<Guard>,
}

#[derive(Debug, Clone)]
pub struct AcquireSite {
    pub call: &'static str,
    pub site: String,
    pub line: usize,
}

#[derive(Debug, Clone)]
pub struct BlockingSite {
    pub token: &'static str,
    pub line: usize,
}

/// One function's extracted facts.
#[derive(Debug)]
pub struct FnFact {
    pub name: String,
    pub impl_type: Option<String>,
    /// `Type::name` when inside an impl/trait block, else `name`.
    pub qualified: String,
    pub file: usize,
    pub start_line: usize,
    pub end_line: usize,
    pub body_start: usize,
    pub body_end: usize,
    pub in_test: bool,
    /// Parameter names with a `&str`/`String`-like type (forwarder
    /// detection for `invoke(ior, op, args)`-shaped helpers).
    pub str_params: Vec<String>,
    pub calls: Vec<CallSite>,
    pub acquires: Vec<AcquireSite>,
    pub blocking: Vec<BlockingSite>,
}

/// A call with its literal and bare-identifier arguments recovered from
/// the original source (the statement machine only sees blanked text).
#[derive(Debug)]
pub struct ArgCall {
    pub name: String,
    pub line: usize,
    pub offset: usize,
    /// Top-level string-literal arguments, in order.
    pub str_args: Vec<String>,
    /// Top-level bare-identifier arguments (possibly `&`-prefixed).
    pub ident_args: Vec<String>,
}

/// One `impl Servant for Type` block's dispatch contract.
#[derive(Debug)]
pub struct ServantFact {
    pub type_name: String,
    pub file: usize,
    pub line: usize,
    pub in_test: bool,
    pub interface_id: Option<String>,
    /// Dispatch arm literals from `fn invoke`'s `match operation`,
    /// with the line each arm pattern appears on.
    pub arms: Vec<(String, usize)>,
    /// Literals returned from `fn operations` (empty when the servant
    /// relies on the trait default).
    pub operations: Vec<String>,
}

/// An `AtomicU64` counter field of a `*Metrics` struct.
#[derive(Debug)]
pub struct CounterDecl {
    pub struct_name: String,
    pub field: String,
    pub file: usize,
    pub line: usize,
}

/// Everything extracted from one file.
pub struct FileFacts {
    pub path: PathBuf,
    pub crate_name: String,
    pub fns: Vec<FnFact>,
    pub arg_calls: Vec<ArgCall>,
    pub servants: Vec<ServantFact>,
    pub counters: Vec<CounterDecl>,
    /// `.ident` mentions inside `impl Trace` function bodies.
    pub trace_mentions: Vec<String>,
    /// `const NAME: &str = "…";` bindings (interface-id resolution).
    pub consts: BTreeMap<String, String>,
    pub test_ranges: Vec<(usize, usize)>,
    /// Token-level findings (same-statement rules), pre test-filtering.
    pub token_findings: Vec<Finding>,
    /// Intra-file acquired-before edges: (held, then) → first line.
    pub order_edges: BTreeMap<(String, String), usize>,
    pub source_lines: Vec<String>,
    /// Scrubbed text, kept for the metrics record-site scan.
    pub scrubbed: String,
}

/// What a brace scope was opened by.
#[derive(Debug, Clone)]
enum CtxKind {
    /// `impl Type` / `impl Trait for Type` / `trait Name` — the string
    /// is the type (or trait) whose methods the block declares, the
    /// option is the implemented trait's name.
    ImplBlock,
    Fn(usize),
    Other,
}

#[derive(Debug, Clone)]
struct Ctx {
    kind: CtxKind,
    depth: usize,
}

struct ImplSpan {
    type_name: String,
    trait_name: Option<String>,
    line: usize,
    body_start: usize,
    body_end: usize,
}

/// Parse `impl …` header text into (type, trait) last segments.
fn parse_impl_header(header: &str) -> Option<(String, Option<String>)> {
    let t = header.trim_start();
    let rest = t.strip_prefix("impl")?;
    if !rest.starts_with(|c: char| c.is_whitespace() || c == '<') {
        return None;
    }
    // Skip generic params `<…>` (balanced).
    let bytes = rest.as_bytes();
    let mut i = 0;
    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
        i += 1;
    }
    if bytes.get(i) == Some(&b'<') {
        let mut depth = 0i32;
        while i < bytes.len() {
            match bytes[i] {
                b'<' => depth += 1,
                b'>' => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    let rest = &rest[i..];
    // Cut at `where`.
    let rest = rest.split(" where ").next().unwrap_or(rest).trim();
    let (trait_part, type_part) = match rest.split_once(" for ") {
        Some((tr, ty)) => (Some(tr.trim()), ty.trim()),
        None => (None, rest),
    };
    let last_segment = |s: &str| -> String {
        let s = s.split('<').next().unwrap_or(s).trim();
        s.rsplit("::").next().unwrap_or(s).trim().to_owned()
    };
    let ty = last_segment(type_part);
    if ty.is_empty() {
        return None;
    }
    Some((ty, trait_part.map(last_segment)))
}

/// Parse a `fn name(params)` header into (name, str_params), or None.
fn parse_fn_header(header: &str) -> Option<(String, Vec<String>)> {
    // Find the `fn` keyword as a standalone word.
    let bytes = header.as_bytes();
    let mut at = None;
    let mut i = 0;
    while i + 2 <= bytes.len() {
        if &bytes[i..i + 2] == b"fn"
            && (i == 0 || !is_ident_byte(bytes[i - 1]))
            && bytes.get(i + 2).is_some_and(|b| b.is_ascii_whitespace())
        {
            at = Some(i + 2);
            break;
        }
        i += 1;
    }
    let after = &header[at?..];
    let after = after.trim_start();
    let name_end = after.find(|c: char| !c.is_alphanumeric() && c != '_')?;
    let name = &after[..name_end];
    if name.is_empty() {
        return None;
    }
    // Parameter list: balanced parens after the name (and any generics).
    let open = after.find('(')?;
    let pbytes = after.as_bytes();
    let mut depth = 0i32;
    let mut close = None;
    for (j, b) in pbytes.iter().enumerate().skip(open) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    close = Some(j);
                    break;
                }
            }
            _ => {}
        }
    }
    let params = &after[open + 1..close?];
    let mut str_params = Vec::new();
    for p in split_top_level(params, ',') {
        let p = p.trim();
        let Some((pname, ty)) = p.split_once(':') else {
            continue;
        };
        let pname = pname.trim().trim_start_matches("mut ").trim();
        let ty = ty.trim();
        if !pname.is_empty()
            && pname.chars().all(|c| c.is_alphanumeric() || c == '_')
            && (ty.contains("str") || ty.contains("String"))
        {
            str_params.push(pname.to_owned());
        }
    }
    Some((name.to_owned(), str_params))
}

/// Split `s` on `sep` at zero paren/angle/bracket depth.
fn split_top_level(s: &str, sep: char) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0;
    for (i, c) in s.char_indices() {
        match c {
            '(' | '[' | '<' => depth += 1,
            ')' | ']' | '>' => depth -= 1,
            c if c == sep && depth == 0 => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&s[start..]);
    out
}

/// True when the statement is a `let` whose right-hand side *ends* with
/// an acquire call — i.e. the binding IS the guard. `let n = *m.lock();`
/// dereferences and copies, so the guard dies with the statement.
fn let_guard(stmt: &str) -> Option<(String, String)> {
    let trimmed = stmt.trim_start();
    let rest = trimmed.strip_prefix("let ")?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let name_end = rest.find(|c: char| !c.is_alphanumeric() && c != '_')?;
    let name = &rest[..name_end];
    if name.is_empty() {
        return None;
    }
    let eq = stmt.find('=')?;
    let rhs = stmt[eq + 1..]
        .trim_start()
        .trim_end()
        .trim_end_matches(';')
        .trim_end();
    if rhs.starts_with('*') || rhs.starts_with('&') && rhs.contains('*') {
        return None;
    }
    for call in ACQUIRE_CALLS {
        let suffix = format!(".{call}()");
        if rhs.ends_with(&suffix) {
            let site = ident_before(rhs, rhs.len() - suffix.len())?;
            return Some((name.to_owned(), site));
        }
    }
    None
}

/// Find `.lock()` / `.read()` / `.write()` call sites in `stmt`
/// (scrubbed text), returning `(offset, call, site)` triples. Only
/// zero-argument calls count — `file.read(&mut buf)` is I/O, not a lock.
fn acquire_sites(stmt: &str) -> Vec<(usize, &'static str, String)> {
    let mut out = Vec::new();
    for call in ACQUIRE_CALLS {
        let needle = format!(".{call}()");
        let mut from = 0;
        while let Some(pos) = stmt[from..].find(&needle) {
            let at = from + pos;
            if let Some(site) = ident_before(stmt, at) {
                out.push((at, call, site));
            }
            from = at + needle.len();
        }
    }
    out.sort_by_key(|(at, _, _)| *at);
    out
}

/// Extract call sites from one statement's scrubbed text.
fn call_sites(stmt: &str, stmt_line: usize, guards: &[Guard]) -> Vec<CallSite> {
    let bytes = stmt.as_bytes();
    let mut out = Vec::new();
    for p in 1..bytes.len() {
        if bytes[p] != b'(' || !is_ident_byte(bytes[p - 1]) {
            continue;
        }
        let Some(name) = ident_before(stmt, p) else {
            continue;
        };
        if is_call_keyword(&name) || ACQUIRE_CALLS.contains(&name.as_str()) {
            continue;
        }
        let start = p - name.len();
        // `fn name(` is a declaration, not a call.
        let before = stmt[..start].trim_end();
        if before.ends_with("fn") {
            continue;
        }
        let recv = if stmt[..start].ends_with('.') {
            let recv_end = start - 1;
            match ident_before(stmt, recv_end) {
                Some(r) if r == "self" && !stmt[..recv_end - r.len()].ends_with('.') => {
                    Recv::SelfDot
                }
                _ => Recv::Method,
            }
        } else if stmt[..start].ends_with("::") {
            match ident_before(stmt, start - 2) {
                Some(seg) => Recv::Path(seg),
                None => Recv::Bare,
            }
        } else {
            Recv::Bare
        };
        out.push(CallSite {
            name,
            recv,
            line: stmt_line,
            guards: guards.to_vec(),
        });
    }
    out
}

struct Machine<'a> {
    file_idx: usize,
    path: &'a Path,
    fns: Vec<FnFact>,
    impls: Vec<ImplSpan>,
    token_findings: Vec<Finding>,
    order_edges: BTreeMap<(String, String), usize>,
    guards: Vec<Guard>,
    ctx: Vec<Ctx>,
    fn_stack: Vec<usize>,
    impl_stack: Vec<usize>,
}

impl Machine<'_> {
    fn push_finding(&mut self, line: usize, rule: &'static str, message: String) {
        self.token_findings
            .push(Finding::new(self.path.to_path_buf(), line, rule, message));
    }

    fn current_impl(&self) -> Option<&ImplSpan> {
        self.impl_stack.last().map(|&i| &self.impls[i])
    }

    /// Process accumulated statement text. `opens_brace` is true when
    /// the statement ends because a `{` follows (item headers,
    /// construct headers).
    fn statement(&mut self, stmt: &str, stmt_line: usize, depth: usize, opens_brace: bool) {
        let construct_header = opens_brace && {
            let t = stmt.trim_start();
            t.starts_with("for ")
                || t.starts_with("if ")
                || t.starts_with("while ")
                || t.starts_with("match ")
                || t.starts_with("else if ")
        };
        if stmt.trim().is_empty() {
            return;
        }

        // R4: unwrap/expect directly on an acquire call.
        for call in ACQUIRE_CALLS {
            for bad in ["unwrap", "expect"] {
                let needle = format!(".{call}().{bad}(");
                let mut from = 0;
                while let Some(pos) = stmt[from..].find(&needle) {
                    let at = from + pos;
                    self.push_finding(
                        stmt_line,
                        "lock-unwrap",
                        format!(
                            "`.{call}().{bad}()` — workspace locks are poison-free \
                             `webfindit_base::sync` wrappers; a raw std lock has leaked in"
                        ),
                    );
                    from = at + needle.len();
                }
            }
        }

        // R2: direct std::sync lock types. A following identifier byte
        // means a different type (`std::sync::MutexGuard`), not the lock.
        for ty in ["Mutex", "RwLock"] {
            let qualified = format!("std::sync::{ty}");
            let mut from = 0;
            while let Some(pos) = stmt[from..].find(&qualified) {
                let at = from + pos;
                let end = at + qualified.len();
                if !stmt.as_bytes().get(end).copied().is_some_and(is_ident_byte) {
                    self.push_finding(
                        stmt_line,
                        "std-sync-direct",
                        format!(
                            "`{qualified}` used directly — use `webfindit_base::sync::{ty}` so \
                             the deadlock detector can see this lock"
                        ),
                    );
                }
                from = end;
            }
        }
        if let Some(rest) = stmt
            .trim_start()
            .strip_prefix("use std::sync::")
            .or_else(|| stmt.trim_start().strip_prefix("pub use std::sync::"))
        {
            for ty in ["Mutex", "RwLock"] {
                let listed = rest
                    .split(|c: char| !c.is_alphanumeric() && c != '_')
                    .any(|tok| tok == ty);
                if listed {
                    self.push_finding(
                        stmt_line,
                        "std-sync-direct",
                        format!(
                            "`std::sync::{ty}` imported — use `webfindit_base::sync::{ty}` so \
                             the deadlock detector can see this lock"
                        ),
                    );
                }
            }
        }

        // R5: raw thread spawns in the server dispatch path.
        if dispatch_path(self.path) {
            for needle in ["thread::spawn(", ".spawn("] {
                let mut from = 0;
                while let Some(pos) = stmt[from..].find(needle) {
                    let at = from + pos;
                    self.push_finding(
                        stmt_line,
                        "thread-spawn-dispatch",
                        format!(
                            "`{}` in the server dispatch path — servant work belongs on the \
                             reactor's bounded worker pool, not ad-hoc threads",
                            needle.trim_matches(['.', '('])
                        ),
                    );
                    from = at + needle.len();
                }
            }
        }

        // Explicit guard death.
        if let Some(rest) = stmt.trim_start().strip_prefix("drop(") {
            if let Some(name) = rest.split(')').next() {
                let name = name.trim();
                self.guards.retain(|g| g.name != name);
            }
        }

        let acquires = acquire_sites(stmt);

        // R3: ordering edges — every acquisition in this statement
        // happens while the currently-live guards are held.
        for (_, _, site) in &acquires {
            for held in self.guards.iter() {
                if &held.site != site {
                    self.order_edges
                        .entry((held.site.clone(), site.clone()))
                        .or_insert(stmt_line);
                }
            }
        }

        // Record facts into the enclosing function.
        let calls = call_sites(stmt, stmt_line, &self.guards);
        if let Some(&fi) = self.fn_stack.last() {
            let f = &mut self.fns[fi];
            for (_, call, site) in &acquires {
                f.acquires.push(AcquireSite {
                    call,
                    site: site.clone(),
                    line: stmt_line,
                });
            }
            f.calls.extend(calls);
        }

        // R1: blocking token with a guard live (including one acquired
        // earlier in this same statement via a construct header).
        for token in BLOCKING_TOKENS {
            let mut from = 0;
            while let Some(pos) = stmt[from..].find(token) {
                let at = from + pos;
                if let Some(&fi) = self.fn_stack.last() {
                    self.fns[fi].blocking.push(BlockingSite {
                        token,
                        line: stmt_line,
                    });
                }
                let held: Vec<(String, String, usize)> = self
                    .guards
                    .iter()
                    .map(|g| (g.name.clone(), g.site.clone(), g.line))
                    .collect();
                for (name, site, line) in held {
                    self.push_finding(
                        stmt_line,
                        "guard-across-blocking",
                        format!(
                            "blocking `{}` while guard `{}` (site `{}`, acquired line {}) is held",
                            token.trim_matches(['.', '(']),
                            name,
                            site,
                            line
                        ),
                    );
                }
                for (aq_at, call, site) in &acquires {
                    if *aq_at < at {
                        self.push_finding(
                            stmt_line,
                            "guard-across-blocking",
                            format!(
                                "blocking `{}` in the same expression as `.{}()` on `{}` — \
                                 the guard temporary is still live",
                                token.trim_matches(['.', '(']),
                                call,
                                site
                            ),
                        );
                    }
                }
                from = at + token.len();
            }
        }

        // New guards, live until their scope (or construct) closes.
        if let Some((name, site)) = let_guard(stmt) {
            self.guards.push(Guard {
                name,
                site,
                depth,
                line: stmt_line,
            });
        } else if construct_header {
            for (_, _, site) in &acquires {
                self.guards.push(Guard {
                    name: "<temporary>".into(),
                    site: site.clone(),
                    depth: depth + 1,
                    line: stmt_line,
                });
            }
        }
    }

    /// Classify a `{`-terminated header and push the new scope context.
    fn open_scope(&mut self, header: &str, line: usize, depth: usize, offset: usize) {
        let kind = if let Some((name, str_params)) = parse_fn_header(header) {
            let impl_type = self.current_impl().map(|i| i.type_name.clone());
            let qualified = match &impl_type {
                Some(t) => format!("{t}::{name}"),
                None => name.clone(),
            };
            self.fns.push(FnFact {
                name,
                impl_type,
                qualified,
                file: self.file_idx,
                start_line: line,
                end_line: line,
                body_start: offset,
                body_end: offset,
                in_test: false,
                str_params,
                calls: Vec::new(),
                acquires: Vec::new(),
                blocking: Vec::new(),
            });
            let fi = self.fns.len() - 1;
            self.fn_stack.push(fi);
            CtxKind::Fn(fi)
        } else if let Some((ty, tr)) = parse_impl_header(header) {
            self.impls.push(ImplSpan {
                type_name: ty.clone(),
                trait_name: tr.clone(),
                line,
                body_start: offset,
                body_end: offset,
            });
            self.impl_stack.push(self.impls.len() - 1);
            CtxKind::ImplBlock
        } else if let Some(rest) = header
            .trim_start()
            .strip_prefix("trait ")
            .or_else(|| header.trim_start().strip_prefix("pub trait "))
        {
            let name: String = rest
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            // Trait default bodies count as methods of the trait name.
            self.impls.push(ImplSpan {
                type_name: name.clone(),
                trait_name: None,
                line,
                body_start: offset,
                body_end: offset,
            });
            self.impl_stack.push(self.impls.len() - 1);
            CtxKind::ImplBlock
        } else {
            CtxKind::Other
        };
        self.ctx.push(Ctx { kind, depth });
    }

    fn close_scope(&mut self, depth: usize, line: usize, offset: usize) {
        while let Some(ctx) = self.ctx.last() {
            if ctx.depth < depth {
                break;
            }
            match &ctx.kind {
                CtxKind::Fn(fi) => {
                    self.fns[*fi].end_line = line;
                    self.fns[*fi].body_end = offset;
                    self.fn_stack.pop();
                }
                CtxKind::ImplBlock => {
                    if let Some(ii) = self.impl_stack.pop() {
                        self.impls[ii].body_end = offset;
                    }
                }
                CtxKind::Other => {}
            }
            self.ctx.pop();
        }
    }
}

/// Run the statement machine over scrubbed text.
fn run_machine<'a>(file_idx: usize, path: &'a Path, scrubbed: &str) -> Machine<'a> {
    let mut m = Machine {
        file_idx,
        path,
        fns: Vec::new(),
        impls: Vec::new(),
        token_findings: Vec::new(),
        order_edges: BTreeMap::new(),
        guards: Vec::new(),
        ctx: Vec::new(),
        fn_stack: Vec::new(),
        impl_stack: Vec::new(),
    };
    let mut depth: usize = 0;
    let mut stmt = String::new();
    let mut stmt_line = 1;
    let mut line = 1;
    let mut in_stmt = false;
    for (offset, c) in scrubbed.char_indices() {
        match c {
            '\n' => {
                line += 1;
                stmt.push(' ');
            }
            '{' => {
                m.statement(&stmt, stmt_line, depth, true);
                m.open_scope(&stmt, stmt_line, depth, offset);
                depth += 1;
                stmt.clear();
                in_stmt = false;
            }
            '}' => {
                m.statement(&stmt, stmt_line, depth, false);
                depth = depth.saturating_sub(1);
                m.guards.retain(|g| g.depth <= depth);
                m.close_scope(depth, line, offset);
                stmt.clear();
                in_stmt = false;
            }
            ';' => {
                stmt.push(';');
                m.statement(&stmt, stmt_line, depth, false);
                stmt.clear();
                in_stmt = false;
            }
            _ => {
                if !in_stmt && !c.is_whitespace() {
                    in_stmt = true;
                    stmt_line = line;
                }
                stmt.push(c);
            }
        }
    }
    m
}

/// Byte-offset → line-number table.
fn line_table(text: &str) -> Vec<usize> {
    let mut starts = vec![0usize];
    for (i, b) in text.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

fn line_of(table: &[usize], offset: usize) -> usize {
    match table.binary_search(&offset) {
        Ok(i) => i + 1,
        Err(i) => i,
    }
}

/// Extract calls with their top-level string-literal and bare-identifier
/// arguments. Works on scrubbed text for structure and the literal
/// index for contents.
fn extract_arg_calls(scrubbed: &str, strings: &[StrLit], table: &[usize]) -> Vec<ArgCall> {
    let bytes = scrubbed.as_bytes();
    let mut out = Vec::new();
    for p in 1..bytes.len() {
        if bytes[p] != b'(' || !is_ident_byte(bytes[p - 1]) {
            continue;
        }
        let Some(name) = ident_before(scrubbed, p) else {
            continue;
        };
        if is_call_keyword(&name) {
            continue;
        }
        let start = p - name.len();
        if scrubbed[..start].trim_end().ends_with("fn") {
            continue;
        }
        // Balanced argument region.
        let mut depth = 0i32;
        let mut close = None;
        for (j, b) in bytes.iter().enumerate().skip(p) {
            match b {
                b'(' => depth += 1,
                b')' => {
                    depth -= 1;
                    if depth == 0 {
                        close = Some(j);
                        break;
                    }
                }
                _ => {}
            }
        }
        let Some(close) = close else { continue };
        let args = &scrubbed[p + 1..close];
        let mut str_args = Vec::new();
        let mut ident_args = Vec::new();
        let mut arg_start = p + 1;
        let mut d = 0i32;
        let mut spans = Vec::new();
        for (j, b) in bytes.iter().enumerate().take(close).skip(p + 1) {
            match b {
                b'(' | b'[' => d += 1,
                b')' | b']' => d -= 1,
                b',' if d == 0 => {
                    spans.push((arg_start, j));
                    arg_start = j + 1;
                }
                _ => {}
            }
        }
        spans.push((arg_start, close));
        for (s, e) in spans {
            // Blanked literals are all spaces in scrubbed text, so stop
            // the whitespace skip at any recorded literal start.
            let mut s = s;
            while s < e && bytes[s].is_ascii_whitespace() && !strings.iter().any(|l| l.start == s) {
                s += 1;
            }
            if s >= e {
                continue;
            }
            if let Some(lit) = strings.iter().find(|l| l.start == s) {
                if lit.end <= e + 1 {
                    str_args.push(lit.value.clone());
                    continue;
                }
            }
            let text = scrubbed[s..e].trim();
            let bare = text.strip_prefix('&').unwrap_or(text);
            if !bare.is_empty() && bare.chars().all(|c| c.is_alphanumeric() || c == '_') {
                ident_args.push(bare.to_owned());
            }
        }
        if str_args.is_empty() && ident_args.is_empty() && args.trim().is_empty() {
            continue;
        }
        out.push(ArgCall {
            name,
            line: line_of(table, start),
            offset: start,
            str_args,
            ident_args,
        });
    }
    out
}

/// Brace depth at each string literal's start offset.
fn literal_depths(scrubbed: &str, strings: &[StrLit]) -> Vec<usize> {
    let bytes = scrubbed.as_bytes();
    let mut depths = Vec::with_capacity(strings.len());
    let mut depth = 0usize;
    let mut si = 0;
    for (i, b) in bytes.iter().enumerate() {
        while si < strings.len() && strings[si].start == i {
            depths.push(depth);
            si += 1;
        }
        match b {
            b'{' => depth += 1,
            b'}' => depth = depth.saturating_sub(1),
            _ => {}
        }
    }
    while si < strings.len() {
        depths.push(depth);
        si += 1;
    }
    depths
}

/// Extract `impl Servant for Type` contracts from the machine's impl
/// spans plus the literal index.
fn extract_servants(
    m: &Machine<'_>,
    scrubbed: &str,
    strings: &[StrLit],
    consts: &BTreeMap<String, String>,
    test_ranges: &[(usize, usize)],
    file_idx: usize,
) -> Vec<ServantFact> {
    let depths = literal_depths(scrubbed, strings);
    let mut out = Vec::new();
    for span in &m.impls {
        if span.trait_name.as_deref() != Some("Servant") {
            continue;
        }
        let in_test = in_ranges(test_ranges, span.line);
        let fn_in_span = |name: &str| {
            m.fns.iter().find(|f| {
                f.name == name && f.body_start >= span.body_start && f.body_end <= span.body_end
            })
        };
        // interface_id: first literal in the body, else a const lookup.
        let interface_id = fn_in_span("interface_id").and_then(|f| {
            strings
                .iter()
                .find(|l| l.start > f.body_start && l.end < f.body_end)
                .map(|l| l.value.clone())
                .or_else(|| {
                    let body = &scrubbed[f.body_start..f.body_end];
                    body.split(|c: char| !c.is_alphanumeric() && c != '_')
                        .rev()
                        .find_map(|tok| consts.get(tok).cloned())
                })
        });
        // Dispatch arms: literals in `fn invoke`'s body followed (after
        // whitespace) by `=>` or `|`, kept at the minimum such depth so
        // nested matches inside arm bodies don't masquerade as arms.
        let mut arms = Vec::new();
        if let Some(f) = fn_in_span("invoke") {
            let mut candidates: Vec<(usize, String, usize)> = Vec::new(); // (depth, value, line)
            for (li, lit) in strings.iter().enumerate() {
                if lit.start <= f.body_start || lit.end >= f.body_end {
                    continue;
                }
                let after = scrubbed[lit.end..f.body_end].trim_start();
                if after.starts_with("=>") || after.starts_with('|') {
                    candidates.push((depths[li], lit.value.clone(), lit.line));
                }
            }
            if let Some(min_depth) = candidates.iter().map(|(d, _, _)| *d).min() {
                for (d, v, l) in candidates {
                    if d == min_depth {
                        arms.push((v, l));
                    }
                }
            }
        }
        let operations = fn_in_span("operations")
            .map(|f| {
                strings
                    .iter()
                    .filter(|l| l.start > f.body_start && l.end < f.body_end)
                    .map(|l| l.value.clone())
                    .collect()
            })
            .unwrap_or_default();
        out.push(ServantFact {
            type_name: span.type_name.clone(),
            file: file_idx,
            line: span.line,
            in_test,
            interface_id,
            arms,
            operations,
        });
    }
    out
}

/// `const NAME: &str = "…";` bindings (scrubbed lines + literal index).
fn extract_consts(scrubbed: &str, strings: &[StrLit]) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for (lno, line) in scrubbed.lines().enumerate() {
        let Some(at) = line.find("const ") else {
            continue;
        };
        let rest = &line[at + 6..];
        let name: String = rest
            .trim_start()
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if name.is_empty() || !rest.contains("str") {
            continue;
        }
        if let Some(lit) = strings.iter().find(|l| l.line == lno + 1) {
            out.insert(name, lit.value.clone());
        }
    }
    out
}

/// `AtomicU64` counter fields of `*Metrics` structs (one field per
/// line, the declaration idiom throughout the workspace).
fn extract_counters(scrubbed: &str, file_idx: usize) -> Vec<CounterDecl> {
    let mut out = Vec::new();
    let mut current: Option<(String, usize)> = None; // (struct name, open depth)
    let mut depth = 0usize;
    for (lno, line) in scrubbed.lines().enumerate() {
        if let Some(at) = line.find("struct ") {
            let name: String = line[at + 7..]
                .trim_start()
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if name.ends_with("Metrics") && line.contains('{') {
                current = Some((name, depth));
            }
        }
        if let Some((sname, _)) = &current {
            if line.contains(": AtomicU64") {
                if let Some(colon) = line.find(": AtomicU64") {
                    if let Some(field) = ident_before(line, colon) {
                        out.push(CounterDecl {
                            struct_name: sname.clone(),
                            field,
                            file: file_idx,
                            line: lno + 1,
                        });
                    }
                }
            }
        }
        for c in line.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth = depth.saturating_sub(1);
                    if let Some((_, d)) = &current {
                        if depth <= *d {
                            current = None;
                        }
                    }
                }
                _ => {}
            }
        }
    }
    out
}

/// `.ident` mentions inside `impl Trace` function bodies.
fn extract_trace_mentions(m: &Machine<'_>, scrubbed: &str) -> Vec<String> {
    let mut out = Vec::new();
    for span in &m.impls {
        if span.type_name != "Trace" {
            continue;
        }
        let body = &scrubbed[span.body_start..span.body_end.max(span.body_start)];
        let bytes = body.as_bytes();
        let mut i = 0;
        while i + 1 < bytes.len() {
            if bytes[i] == b'.' && is_ident_byte(bytes[i + 1]) {
                let start = i + 1;
                let mut end = start;
                while end < bytes.len() && is_ident_byte(bytes[end]) {
                    end += 1;
                }
                out.push(body[start..end].to_owned());
                i = end;
            } else {
                i += 1;
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

fn crate_of(path: &Path) -> String {
    let rel = path.to_string_lossy().replace('\\', "/");
    let mut parts = rel.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => name.to_owned(),
        _ => "workspace".to_owned(),
    }
}

/// Extract all facts from one file.
pub fn extract(file_idx: usize, path: &Path, src: &str) -> FileFacts {
    let scrubbed = scrub(src);
    let table = line_table(&scrubbed.text);
    let test_ranges = test_line_ranges(&scrubbed.text);
    let mut machine = run_machine(file_idx, path, &scrubbed.text);
    for f in &mut machine.fns {
        f.in_test = in_ranges(&test_ranges, f.start_line);
    }
    let consts = extract_consts(&scrubbed.text, &scrubbed.strings);
    let servants = extract_servants(
        &machine,
        &scrubbed.text,
        &scrubbed.strings,
        &consts,
        &test_ranges,
        file_idx,
    );
    let counters = extract_counters(&scrubbed.text, file_idx);
    let trace_mentions = extract_trace_mentions(&machine, &scrubbed.text);
    let arg_calls = extract_arg_calls(&scrubbed.text, &scrubbed.strings, &table);
    FileFacts {
        path: path.to_path_buf(),
        crate_name: crate_of(path),
        fns: machine.fns,
        arg_calls,
        servants,
        counters,
        trace_mentions,
        consts,
        test_ranges,
        token_findings: machine.token_findings,
        order_edges: machine.order_edges,
        source_lines: src.lines().map(str::to_owned).collect(),
        scrubbed: scrubbed.text,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facts(src: &str) -> FileFacts {
        extract(0, Path::new("crates/x/src/lib.rs"), src)
    }

    #[test]
    fn fn_and_impl_structure_is_extracted() {
        let src = "impl Reactor {\n    fn run(mut self) {\n        self.tick();\n    }\n    fn tick(&mut self) {\n        helper(1);\n    }\n}\nfn helper(n: usize) {}\n";
        let f = facts(src);
        let names: Vec<&str> = f.fns.iter().map(|f| f.qualified.as_str()).collect();
        assert_eq!(names, ["Reactor::run", "Reactor::tick", "helper"]);
        assert_eq!(f.fns[0].calls.len(), 1);
        assert_eq!(f.fns[0].calls[0].name, "tick");
        assert_eq!(f.fns[0].calls[0].recv, Recv::SelfDot);
        assert_eq!(f.fns[1].calls[0].recv, Recv::Bare);
    }

    #[test]
    fn guards_are_recorded_at_call_sites() {
        let src = "fn f(&self) {\n    let g = self.cache.lock();\n    self.helper();\n}\n";
        let f = facts(src);
        let call = &f.fns[0].calls[0];
        assert_eq!(call.name, "helper");
        assert_eq!(call.guards.len(), 1);
        assert_eq!(call.guards[0].site, "cache");
    }

    #[test]
    fn acquire_and_blocking_facts_are_per_fn() {
        let src = "fn a(&self) {\n    let g = self.m.lock();\n}\nfn b(&self) {\n    x.send_frame(&f);\n}\n";
        let f = facts(src);
        assert_eq!(f.fns[0].acquires.len(), 1);
        assert_eq!(f.fns[0].acquires[0].site, "m");
        assert!(f.fns[0].blocking.is_empty());
        assert_eq!(f.fns[1].blocking.len(), 1);
        assert_eq!(f.fns[1].blocking[0].token, ".send_frame(");
    }

    #[test]
    fn servant_arms_and_interface_are_extracted() {
        let src = "const IFACE: &str = \"IDL:webfindit/Thing:1.0\";\nstruct S;\nimpl Servant for S {\n    fn interface_id(&self) -> &str {\n        IFACE\n    }\n    fn invoke(&self, operation: &str, args: &[Value]) -> InvokeResult {\n        match operation {\n            \"alpha\" => run_alpha(),\n            \"beta\" | \"gamma\" => run_beta(),\n            other => fail(other),\n        }\n    }\n    fn operations(&self) -> Vec<String> {\n        [\"alpha\", \"beta\", \"gamma\"].iter().map(|s| s.to_string()).collect()\n    }\n}\n";
        let f = facts(src);
        assert_eq!(f.servants.len(), 1);
        let s = &f.servants[0];
        assert_eq!(s.type_name, "S");
        assert_eq!(s.interface_id.as_deref(), Some("IDL:webfindit/Thing:1.0"));
        let arm_names: Vec<&str> = s.arms.iter().map(|(a, _)| a.as_str()).collect();
        assert_eq!(arm_names, ["alpha", "beta", "gamma"]);
        assert_eq!(s.operations, ["alpha", "beta", "gamma"]);
    }

    #[test]
    fn arg_calls_capture_literal_and_ident_args() {
        let src = "fn go(fed: &F, op: &str) {\n    fed.invoke(&ior, \"find_links\", &[]);\n    fed.invoke(&ior, op, &[]);\n}\n";
        let f = facts(src);
        let invokes: Vec<&ArgCall> = f.arg_calls.iter().filter(|c| c.name == "invoke").collect();
        assert_eq!(invokes.len(), 2);
        assert_eq!(invokes[0].str_args, ["find_links"]);
        assert!(invokes[1].str_args.is_empty());
        assert!(invokes[1].ident_args.contains(&"op".to_owned()));
        assert_eq!(f.fns[0].str_params, ["op"]);
    }

    #[test]
    fn nested_literal_args_are_not_top_level() {
        let src = "fn go(s: &S) {\n    s.invoke(\"members\", &[Value::string(\"Ghost\")]);\n}\n";
        let f = facts(src);
        let inv = f.arg_calls.iter().find(|c| c.name == "invoke").unwrap();
        assert_eq!(inv.str_args, ["members"]);
    }

    #[test]
    fn metrics_counters_are_extracted() {
        let src = "pub struct FooMetrics {\n    pub hits: AtomicU64,\n    pub misses: AtomicU64,\n    latencies: Mutex<u8>,\n}\n";
        let f = facts(src);
        let fields: Vec<&str> = f.counters.iter().map(|c| c.field.as_str()).collect();
        assert_eq!(fields, ["hits", "misses"]);
        assert_eq!(f.counters[0].line, 2);
    }

    #[test]
    fn trace_mentions_collect_field_accesses() {
        let src = "impl Trace {\n    pub fn event(&self, m: &Snap) {\n        let _ = m.hits;\n        self.emit(m.misses);\n    }\n}\n";
        let f = facts(src);
        assert!(f.trace_mentions.contains(&"hits".to_owned()));
        assert!(f.trace_mentions.contains(&"misses".to_owned()));
    }
}
