//! The healthcare application of the paper's §4–5, end to end: stand up
//! the 14-database deployment and replay the §5 user session (the one
//! behind Figures 4, 5, and 6), printing the browser transcript.
//!
//! Run with: `cargo run -p webfindit-examples --example healthcare_tour`

use webfindit::processor::Processor;
use webfindit::session::BrowserSession;
use webfindit::trace::Trace;
use webfindit_examples::{banner, block};
use webfindit_healthcare::sessions::SECTION5_SCRIPT;
use webfindit_healthcare::{build_healthcare, coalitions, databases, service_links};

fn main() {
    banner("Deployment (paper §4)");
    let dep = build_healthcare(1999).expect("healthcare deployment");
    println!(
        "{} databases, {} coalitions, {} service links, ORBs: {:?}",
        databases().len(),
        coalitions().len(),
        service_links().len(),
        dep.fed.orb_names()
    );
    println!("metadata wiring cost: {} ORB invocations", dep.wiring_calls);

    banner("User session (paper §5, the Figures 4–6 interaction)");
    let processor = Processor::new(dep.fed.clone());
    let mut session = BrowserSession::new("QUT Research");
    for stmt in SECTION5_SCRIPT {
        println!("\nWebTassili> {stmt}");
        let mut trace = Trace::new();
        match processor.submit(&mut session, stmt, Some(&mut trace)) {
            Ok(response) => block(&response.render()),
            Err(e) => block(&format!("error: {e}")),
        }
    }

    banner("Cross-coalition discovery (the Medical Insurance example of §2.3)");
    for stmt in [
        "Find Coalitions With Information Medical Insurance;",
        "Connect To Coalition Medical Insurance;",
        "Display Instances of Class Medical Insurance;",
        "Submit Native 'SELECT holder, cover FROM policies WHERE premium > 200' To Instance MBF;",
    ] {
        println!("\nWebTassili> {stmt}");
        match processor.submit(&mut session, stmt, None) {
            Ok(response) => block(&response.render()),
            Err(e) => block(&format!("error: {e}")),
        }
    }

    banner("Object databases through JNI / C++ bridges");
    for stmt in [
        "Submit Native 'select name, cost from Treatment where cost > 1000' To Instance Prince Charles Hospital;",
        "Submit Native 'select suburb, minutes from Callout where priority = 1' To Instance Ambulance;",
    ] {
        println!("\nWebTassili> {stmt}");
        match processor.submit(&mut session, stmt, None) {
            Ok(response) => block(&response.render()),
            Err(e) => block(&format!("error: {e}")),
        }
    }

    dep.fed.shutdown();
    println!("\ndone.");
}
