//! Property-based tests on the discovery algorithm over randomized
//! synthetic federations (DESIGN.md §7):
//!
//! * **Completeness** — every advertised topic is findable from every
//!   start site (the ring topology keeps the federation connected).
//! * **Soundness** — a topic nobody advertises is never "found", from
//!   any start site.
//! * **Locality** — a site's own coalition topic always resolves at
//!   level 0 with zero network round-trips.
//!
//! Federations carry real ORBs and TCP listeners, so the generator keeps
//! sizes small and case counts low.

use webfindit::discovery::DiscoveryEngine;
use webfindit::synth::{build, SynthConfig, SynthFederation};
use webfindit_base::prop;

#[test]
fn discovery_is_complete_sound_and_local() {
    prop::cases(8, |rng| {
        let databases = rng.gen_range(4usize..14);
        let coalition_size = rng.gen_range(1usize..4);
        let extra_links = rng.gen_range(0usize..3);
        let seed = rng.gen_range(0u64..1000);
        let synth = build(&SynthConfig {
            databases,
            coalition_size,
            orbs: 2,
            extra_links,
            ring_links: true,
            seed,
        })
        .unwrap();
        let mut engine = DiscoveryEngine::new(synth.fed.clone());
        engine.max_depth = 32;

        // Locality: own topic at level 0, free.
        for c in 0..synth.coalition_count() {
            let outcome = engine
                .find(synth.member_of(c), &SynthFederation::topic(c))
                .unwrap();
            assert!(outcome.found());
            assert_eq!(outcome.stats.found_at_level, Some(0));
            assert_eq!(outcome.stats.total_round_trips(), 0);
        }

        // Completeness: every topic from every coalition's first member.
        for start in 0..synth.coalition_count() {
            for target in 0..synth.coalition_count() {
                let outcome = engine
                    .find(synth.member_of(start), &SynthFederation::topic(target))
                    .unwrap();
                assert!(
                    outcome.found(),
                    "topic {target} unreachable from coalition {start}: {:?}",
                    outcome.stats
                );
            }
        }

        // Soundness: unadvertised topics are found nowhere.
        for start in 0..synth.coalition_count() {
            let outcome = engine
                .find(synth.member_of(start), "subject nobody advertises")
                .unwrap();
            assert!(!outcome.found(), "phantom lead: {:?}", outcome.leads);
        }

        synth.fed.shutdown();
    });
}
