//! Heap table storage with B-tree primary and secondary indexes.
//!
//! Rows live in slot-addressed heaps (`Vec<Option<Row>>`); deletion
//! tombstones the slot so that slot ids stay stable for index entries
//! and for the transaction undo log. Primary keys are enforced through
//! a B-tree unique index; `CREATE INDEX` adds non-unique secondary
//! B-trees used by the executor for equality lookups.

use crate::schema::TableSchema;
use crate::types::{Datum, Row};
use crate::{RelError, RelResult};
use std::cmp::Ordering;
use std::collections::BTreeMap;

/// A `Datum` wrapper giving the total `sort_cmp` order, usable as a
/// B-tree key.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyDatum(pub Datum);

impl Eq for KeyDatum {}

impl PartialOrd for KeyDatum {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for KeyDatum {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.sort_cmp(&other.0)
    }
}

/// A composite index key.
pub type IndexKey = Vec<KeyDatum>;

/// Build an index key from selected columns of a row.
pub fn key_of(row: &Row, cols: &[usize]) -> IndexKey {
    cols.iter().map(|&i| KeyDatum(row[i].clone())).collect()
}

/// A non-unique secondary index over one column.
#[derive(Debug, Default, Clone)]
pub struct SecondaryIndex {
    /// Index name (lowercase).
    pub name: String,
    /// Indexed column position.
    pub column: usize,
    /// Key → slots holding that key.
    map: BTreeMap<IndexKey, Vec<usize>>,
}

/// A stored table: schema, heap, and indexes.
#[derive(Debug, Clone)]
pub struct Table {
    /// The table's schema.
    pub schema: TableSchema,
    slots: Vec<Option<Row>>,
    live: usize,
    /// Unique index over the primary-key columns (if any are declared).
    pk: Option<BTreeMap<IndexKey, usize>>,
    pk_cols: Vec<usize>,
    secondary: Vec<SecondaryIndex>,
}

impl Table {
    /// Create an empty table for `schema`.
    pub fn new(schema: TableSchema) -> Table {
        let pk_cols = schema.primary_key_indices();
        Table {
            schema,
            slots: Vec::new(),
            live: 0,
            pk: if pk_cols.is_empty() {
                None
            } else {
                Some(BTreeMap::new())
            },
            pk_cols,
            secondary: Vec::new(),
        }
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live rows exist.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Names of secondary indexes.
    pub fn index_names(&self) -> Vec<String> {
        self.secondary.iter().map(|s| s.name.clone()).collect()
    }

    /// Validate and coerce a row against the schema.
    fn check_row(&self, mut row: Row) -> RelResult<Row> {
        if row.len() != self.schema.arity() {
            return Err(RelError::ArityMismatch {
                expected: self.schema.arity(),
                found: row.len(),
            });
        }
        for (i, col) in self.schema.columns.iter().enumerate() {
            if row[i].is_null() {
                if col.not_null {
                    return Err(RelError::ConstraintViolation(format!(
                        "column {}.{} is NOT NULL",
                        self.schema.name, col.name
                    )));
                }
                continue;
            }
            match row[i].coerce(col.data_type) {
                Some(v) => row[i] = v,
                None => {
                    return Err(RelError::TypeMismatch {
                        expected: format!("{} for column {}", col.data_type, col.name),
                        found: format!("{}", row[i]),
                    })
                }
            }
        }
        Ok(row)
    }

    /// Insert a row, returning its slot id.
    pub fn insert(&mut self, row: Row) -> RelResult<usize> {
        let row = self.check_row(row)?;
        if let Some(pk) = &self.pk {
            let key = key_of(&row, &self.pk_cols);
            if pk.contains_key(&key) {
                return Err(RelError::DuplicateKey(format!(
                    "{} in table {}",
                    key.iter()
                        .map(|k| k.0.to_string())
                        .collect::<Vec<_>>()
                        .join(","),
                    self.schema.name
                )));
            }
        }
        let slot = self.slots.len();
        if let Some(pk) = &mut self.pk {
            pk.insert(key_of(&row, &self.pk_cols), slot);
        }
        for idx in &mut self.secondary {
            idx.map
                .entry(vec![KeyDatum(row[idx.column].clone())])
                .or_default()
                .push(slot);
        }
        self.slots.push(Some(row));
        self.live += 1;
        Ok(slot)
    }

    /// Delete the row in `slot`, returning it (for the undo log).
    pub fn delete_slot(&mut self, slot: usize) -> Option<Row> {
        let row = self.slots.get_mut(slot)?.take()?;
        self.live -= 1;
        if let Some(pk) = &mut self.pk {
            pk.remove(&key_of(&row, &self.pk_cols));
        }
        for idx in &mut self.secondary {
            let key = vec![KeyDatum(row[idx.column].clone())];
            if let Some(slots) = idx.map.get_mut(&key) {
                slots.retain(|&s| s != slot);
                if slots.is_empty() {
                    idx.map.remove(&key);
                }
            }
        }
        Some(row)
    }

    /// Restore a previously deleted row into its original slot
    /// (transaction rollback). The slot must be empty.
    pub fn restore_slot(&mut self, slot: usize, row: Row) {
        debug_assert!(self.slots[slot].is_none(), "restoring into a live slot");
        if let Some(pk) = &mut self.pk {
            pk.insert(key_of(&row, &self.pk_cols), slot);
        }
        for idx in &mut self.secondary {
            idx.map
                .entry(vec![KeyDatum(row[idx.column].clone())])
                .or_default()
                .push(slot);
        }
        self.slots[slot] = Some(row);
        self.live += 1;
    }

    /// Replace the row in `slot`, returning the old row.
    pub fn update_slot(&mut self, slot: usize, new_row: Row) -> RelResult<Row> {
        let new_row = self.check_row(new_row)?;
        let old = self.slots[slot]
            .clone()
            .expect("update_slot targets a live slot");
        // Primary key change must stay unique.
        if let Some(pk) = &mut self.pk {
            let old_key = key_of(&old, &self.pk_cols);
            let new_key = key_of(&new_row, &self.pk_cols);
            if old_key != new_key {
                if pk.contains_key(&new_key) {
                    return Err(RelError::DuplicateKey(format!(
                        "update collides in table {}",
                        self.schema.name
                    )));
                }
                pk.remove(&old_key);
                pk.insert(new_key, slot);
            }
        }
        for idx in &mut self.secondary {
            let old_key = vec![KeyDatum(old[idx.column].clone())];
            let new_key = vec![KeyDatum(new_row[idx.column].clone())];
            if old_key != new_key {
                if let Some(slots) = idx.map.get_mut(&old_key) {
                    slots.retain(|&s| s != slot);
                    if slots.is_empty() {
                        idx.map.remove(&old_key);
                    }
                }
                idx.map.entry(new_key).or_default().push(slot);
            }
        }
        self.slots[slot] = Some(new_row);
        Ok(old)
    }

    /// Iterate live `(slot, row)` pairs.
    pub fn scan(&self) -> impl Iterator<Item = (usize, &Row)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|row| (i, row)))
    }

    /// The row in `slot`, if live.
    pub fn row(&self, slot: usize) -> Option<&Row> {
        self.slots.get(slot).and_then(Option::as_ref)
    }

    /// Point lookup by full primary key.
    pub fn lookup_pk(&self, key: &IndexKey) -> Option<usize> {
        self.pk.as_ref()?.get(key).copied()
    }

    /// Positions of the primary-key columns.
    pub fn pk_columns(&self) -> &[usize] {
        &self.pk_cols
    }

    /// Create a secondary index named `name` over `column`.
    pub fn create_index(&mut self, name: &str, column: usize) -> RelResult<()> {
        let lower = name.to_ascii_lowercase();
        if self.secondary.iter().any(|s| s.name == lower) {
            return Err(RelError::IndexExists(lower));
        }
        let mut idx = SecondaryIndex {
            name: lower,
            column,
            map: BTreeMap::new(),
        };
        for (slot, row) in self.scan() {
            idx.map
                .entry(vec![KeyDatum(row[column].clone())])
                .or_default()
                .push(slot);
        }
        self.secondary.push(idx);
        Ok(())
    }

    /// Slots whose `column` equals `value`, via a secondary index or the
    /// PK index when applicable. `None` means no usable index exists
    /// (the executor falls back to a scan).
    pub fn index_lookup(&self, column: usize, value: &Datum) -> Option<Vec<usize>> {
        if self.pk_cols.len() == 1 && self.pk_cols[0] == column {
            let key = vec![KeyDatum(value.clone())];
            return Some(self.lookup_pk(&key).into_iter().collect());
        }
        self.secondary.iter().find(|s| s.column == column).map(|s| {
            s.map
                .get(&vec![KeyDatum(value.clone())])
                .cloned()
                .unwrap_or_default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::types::DataType;

    fn beds() -> Table {
        Table::new(TableSchema::new(
            "beds",
            vec![
                Column::new("bed_id", DataType::Int).primary_key(),
                Column::new("location", DataType::Text).not_null(),
                Column::new("default_patient_type", DataType::Text),
            ],
        ))
    }

    fn row(id: i64, loc: &str) -> Row {
        vec![Datum::Int(id), Datum::Text(loc.into()), Datum::Null]
    }

    #[test]
    fn insert_scan_delete() {
        let mut t = beds();
        let s0 = t.insert(row(1, "ward A")).unwrap();
        let s1 = t.insert(row(2, "ward B")).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.scan().count(), 2);
        let deleted = t.delete_slot(s0).unwrap();
        assert_eq!(deleted[0], Datum::Int(1));
        assert_eq!(t.len(), 1);
        assert!(t.row(s0).is_none());
        assert!(t.row(s1).is_some());
    }

    #[test]
    fn duplicate_pk_rejected() {
        let mut t = beds();
        t.insert(row(1, "ward A")).unwrap();
        assert!(matches!(
            t.insert(row(1, "ward B")),
            Err(RelError::DuplicateKey(_))
        ));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn pk_free_after_delete() {
        let mut t = beds();
        let s = t.insert(row(1, "ward A")).unwrap();
        t.delete_slot(s);
        t.insert(row(1, "ward A again")).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn not_null_enforced() {
        let mut t = beds();
        let r = vec![Datum::Int(1), Datum::Null, Datum::Null];
        assert!(matches!(t.insert(r), Err(RelError::ConstraintViolation(_))));
    }

    #[test]
    fn arity_enforced() {
        let mut t = beds();
        assert!(matches!(
            t.insert(vec![Datum::Int(1)]),
            Err(RelError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn type_coercion_on_insert() {
        let mut t = Table::new(TableSchema::new(
            "f",
            vec![Column::new("x", DataType::Double)],
        ));
        t.insert(vec![Datum::Int(3)]).unwrap();
        assert_eq!(t.scan().next().unwrap().1[0], Datum::Double(3.0));
        assert!(matches!(
            t.insert(vec![Datum::Text("x".into())]),
            Err(RelError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn update_slot_maintains_pk_index() {
        let mut t = beds();
        let s = t.insert(row(1, "ward A")).unwrap();
        t.insert(row(2, "ward B")).unwrap();
        // Moving pk 1 → 3 frees 1 and occupies 3.
        let old = t.update_slot(s, row(3, "ward C")).unwrap();
        assert_eq!(old[0], Datum::Int(1));
        assert!(t.index_lookup(0, &Datum::Int(1)).unwrap().is_empty());
        assert_eq!(t.index_lookup(0, &Datum::Int(3)).unwrap(), vec![s]);
        // Colliding update rejected.
        assert!(matches!(
            t.update_slot(s, row(2, "collide")),
            Err(RelError::DuplicateKey(_))
        ));
    }

    #[test]
    fn secondary_index_lookup_and_maintenance() {
        let mut t = beds();
        let s0 = t.insert(row(1, "ward A")).unwrap();
        let s1 = t.insert(row(2, "ward A")).unwrap();
        t.insert(row(3, "ward B")).unwrap();
        t.create_index("beds_loc", 1).unwrap();
        assert!(matches!(
            t.create_index("beds_loc", 1),
            Err(RelError::IndexExists(_))
        ));
        let hits = t.index_lookup(1, &Datum::Text("ward A".into())).unwrap();
        assert_eq!(hits, vec![s0, s1]);
        t.delete_slot(s0);
        let hits = t.index_lookup(1, &Datum::Text("ward A".into())).unwrap();
        assert_eq!(hits, vec![s1]);
        // Update relocates index entry.
        t.update_slot(s1, row(2, "ward B")).unwrap();
        assert!(t
            .index_lookup(1, &Datum::Text("ward A".into()))
            .unwrap()
            .is_empty());
        assert_eq!(
            t.index_lookup(1, &Datum::Text("ward B".into()))
                .unwrap()
                .len(),
            2
        );
    }

    #[test]
    fn restore_slot_round_trips() {
        let mut t = beds();
        let s = t.insert(row(1, "ward A")).unwrap();
        let r = t.delete_slot(s).unwrap();
        t.restore_slot(s, r);
        assert_eq!(t.len(), 1);
        assert_eq!(t.index_lookup(0, &Datum::Int(1)).unwrap(), vec![s]);
    }

    #[test]
    fn no_index_means_none() {
        let t = beds();
        assert!(t.index_lookup(1, &Datum::Text("x".into())).is_none());
        assert!(t.index_lookup(2, &Datum::Null).is_none());
    }
}
