//! CORBA 2.0 Common Data Representation (CDR).
//!
//! CDR is the marshalling format GIOP uses for every message body. Its two
//! defining properties, both implemented here:
//!
//! 1. **Receiver-makes-right byte order**: every encapsulation carries a
//!    byte-order flag; the sender writes in its native order and the
//!    receiver swaps if needed. We support encoding and decoding in both
//!    orders so that "ORBs from different vendors" genuinely exchange
//!    differently-ordered bytes in tests.
//! 2. **Natural alignment**: a primitive of size *n* is aligned to an
//!    *n*-byte boundary measured from the start of the enclosing message
//!    or encapsulation, with padding octets inserted as needed.
//!
//! The [`CdrWriter`] and [`CdrReader`] below implement the primitive types,
//! strings (length-prefixed, NUL-terminated, as the spec requires),
//! sequences, and nested encapsulations (used by tagged IOR profiles).

use crate::{WireError, WireResult, MAX_MESSAGE_SIZE};

/// Byte order used by an encoder or found in an encapsulation flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ByteOrder {
    /// Most-significant byte first (network order).
    BigEndian,
    /// Least-significant byte first.
    LittleEndian,
}

impl ByteOrder {
    /// The flag octet CDR uses inside encapsulations: 0 = big, 1 = little.
    pub fn flag(self) -> u8 {
        match self {
            ByteOrder::BigEndian => 0,
            ByteOrder::LittleEndian => 1,
        }
    }

    /// Parse an encapsulation flag octet.
    pub fn from_flag(flag: u8) -> WireResult<Self> {
        match flag {
            0 => Ok(ByteOrder::BigEndian),
            1 => Ok(ByteOrder::LittleEndian),
            other => Err(WireError::BadTag {
                context: "byte-order flag",
                tag: other as u32,
            }),
        }
    }
}

/// An aligned CDR encoder.
///
/// Alignment is computed relative to the start of the buffer handed to this
/// writer, which must therefore coincide with the start of the GIOP message
/// body or encapsulation being produced.
#[derive(Debug)]
pub struct CdrWriter {
    buf: Vec<u8>,
    order: ByteOrder,
    /// Offset of the encapsulation start within `buf`; alignment is
    /// measured from here. Nonzero only for frame writers, where the
    /// buffer opens with a 12-byte GIOP header preamble so header and
    /// body share one allocation.
    base: usize,
}

impl CdrWriter {
    /// Create a writer producing bytes in the given order.
    pub fn new(order: ByteOrder) -> Self {
        CdrWriter::new_in(order, Vec::with_capacity(128))
    }

    /// Create a writer over recycled storage (cleared before use). The
    /// buffer pool hands storage in here; `into_bytes` hands it back out.
    pub fn new_in(order: ByteOrder, mut buf: Vec<u8>) -> Self {
        buf.clear();
        CdrWriter {
            buf,
            order,
            base: 0,
        }
    }

    /// Create a *frame* writer over recycled storage: the first 12 bytes
    /// are reserved (zeroed) for a GIOP header to be patched in later,
    /// and CDR alignment is measured from byte 12 — the body start — as
    /// the spec requires. This lets header and body be encoded into a
    /// single buffer with no assembly copy.
    pub fn frame(order: ByteOrder, mut buf: Vec<u8>) -> Self {
        buf.clear();
        buf.resize(12, 0);
        CdrWriter {
            buf,
            order,
            base: 12,
        }
    }

    /// The byte order this writer emits.
    pub fn order(&self) -> ByteOrder {
        self.order
    }

    /// Number of body bytes written so far (excludes any frame preamble).
    pub fn len(&self) -> usize {
        self.buf.len() - self.base
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Consume the writer, returning the encoded bytes (for a frame
    /// writer this includes the 12-byte header preamble).
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Pad with zero octets until the cursor is aligned to `align` bytes.
    pub fn align(&mut self, align: usize) {
        debug_assert!(align.is_power_of_two());
        let misalign = (self.buf.len() - self.base) % align;
        if misalign != 0 {
            for _ in 0..(align - misalign) {
                self.buf.push(0);
            }
        }
    }

    /// Write a single octet (no alignment needed).
    pub fn write_octet(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a boolean as a single octet (1 = true, 0 = false).
    pub fn write_bool(&mut self, v: bool) {
        self.write_octet(u8::from(v));
    }

    /// Write a signed 16-bit integer, aligned to 2.
    pub fn write_short(&mut self, v: i16) {
        self.align(2);
        match self.order {
            ByteOrder::BigEndian => self.buf.extend_from_slice(&v.to_be_bytes()),
            ByteOrder::LittleEndian => self.buf.extend_from_slice(&v.to_le_bytes()),
        }
    }

    /// Write an unsigned 16-bit integer, aligned to 2.
    pub fn write_ushort(&mut self, v: u16) {
        self.align(2);
        match self.order {
            ByteOrder::BigEndian => self.buf.extend_from_slice(&v.to_be_bytes()),
            ByteOrder::LittleEndian => self.buf.extend_from_slice(&v.to_le_bytes()),
        }
    }

    /// Write a signed 32-bit integer, aligned to 4.
    pub fn write_long(&mut self, v: i32) {
        self.align(4);
        match self.order {
            ByteOrder::BigEndian => self.buf.extend_from_slice(&v.to_be_bytes()),
            ByteOrder::LittleEndian => self.buf.extend_from_slice(&v.to_le_bytes()),
        }
    }

    /// Write an unsigned 32-bit integer, aligned to 4.
    pub fn write_ulong(&mut self, v: u32) {
        self.align(4);
        match self.order {
            ByteOrder::BigEndian => self.buf.extend_from_slice(&v.to_be_bytes()),
            ByteOrder::LittleEndian => self.buf.extend_from_slice(&v.to_le_bytes()),
        }
    }

    /// Write a signed 64-bit integer, aligned to 8.
    pub fn write_longlong(&mut self, v: i64) {
        self.align(8);
        match self.order {
            ByteOrder::BigEndian => self.buf.extend_from_slice(&v.to_be_bytes()),
            ByteOrder::LittleEndian => self.buf.extend_from_slice(&v.to_le_bytes()),
        }
    }

    /// Write an unsigned 64-bit integer, aligned to 8.
    pub fn write_ulonglong(&mut self, v: u64) {
        self.align(8);
        match self.order {
            ByteOrder::BigEndian => self.buf.extend_from_slice(&v.to_be_bytes()),
            ByteOrder::LittleEndian => self.buf.extend_from_slice(&v.to_le_bytes()),
        }
    }

    /// Write an IEEE-754 single-precision float, aligned to 4.
    pub fn write_float(&mut self, v: f32) {
        self.align(4);
        match self.order {
            ByteOrder::BigEndian => self.buf.extend_from_slice(&v.to_be_bytes()),
            ByteOrder::LittleEndian => self.buf.extend_from_slice(&v.to_le_bytes()),
        }
    }

    /// Write an IEEE-754 double-precision float, aligned to 8.
    pub fn write_double(&mut self, v: f64) {
        self.align(8);
        match self.order {
            ByteOrder::BigEndian => self.buf.extend_from_slice(&v.to_be_bytes()),
            ByteOrder::LittleEndian => self.buf.extend_from_slice(&v.to_le_bytes()),
        }
    }

    /// Write a CDR string: ulong length (including the terminating NUL),
    /// the UTF-8 bytes, then a NUL octet.
    ///
    /// Returns an error if the string itself contains a NUL, which CDR
    /// cannot represent.
    pub fn write_string(&mut self, s: &str) -> WireResult<()> {
        if s.as_bytes().contains(&0) {
            return Err(WireError::EmbeddedNul);
        }
        self.write_ulong(s.len() as u32 + 1);
        self.buf.extend_from_slice(s.as_bytes());
        self.buf.push(0);
        Ok(())
    }

    /// Write a `sequence<octet>`: ulong length then raw bytes.
    pub fn write_octets(&mut self, bytes: &[u8]) {
        self.write_ulong(bytes.len() as u32);
        self.buf.extend_from_slice(bytes);
    }

    /// Write raw bytes with no length prefix (caller manages framing).
    pub fn write_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Write a nested encapsulation: a `sequence<octet>` whose first octet
    /// is a byte-order flag, produced by `f` writing into a fresh writer.
    ///
    /// Tagged IOR profiles and service contexts are encoded this way, which
    /// is what lets an ORB forward profiles it does not understand.
    pub fn write_encapsulation<F>(&mut self, order: ByteOrder, f: F) -> WireResult<()>
    where
        F: FnOnce(&mut CdrWriter) -> WireResult<()>,
    {
        let mut inner = CdrWriter::new(order);
        inner.write_octet(order.flag());
        f(&mut inner)?;
        self.write_octets(&inner.into_bytes());
        Ok(())
    }
}

/// An aligned CDR decoder over a borrowed byte slice.
///
/// Like the writer, alignment is relative to the start of the slice, which
/// must be the start of a message body or encapsulation.
#[derive(Debug)]
pub struct CdrReader<'a> {
    buf: &'a [u8],
    pos: usize,
    order: ByteOrder,
}

impl<'a> CdrReader<'a> {
    /// Create a reader decoding in the given byte order.
    pub fn new(buf: &'a [u8], order: ByteOrder) -> Self {
        CdrReader { buf, pos: 0, order }
    }

    /// Create a reader over an encapsulation: the first octet is consumed
    /// as the byte-order flag.
    pub fn for_encapsulation(buf: &'a [u8]) -> WireResult<Self> {
        if buf.is_empty() {
            return Err(WireError::UnexpectedEof {
                needed: 1,
                remaining: 0,
            });
        }
        let order = ByteOrder::from_flag(buf[0])?;
        Ok(CdrReader { buf, pos: 1, order })
    }

    /// The byte order this reader decodes with.
    pub fn order(&self) -> ByteOrder {
        self.order
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> WireResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Skip padding until the cursor is aligned to `align` bytes.
    pub fn align(&mut self, align: usize) -> WireResult<()> {
        debug_assert!(align.is_power_of_two());
        let misalign = self.pos % align;
        if misalign != 0 {
            self.take(align - misalign)?;
        }
        Ok(())
    }

    /// Read a single octet.
    pub fn read_octet(&mut self) -> WireResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a boolean octet, rejecting values other than 0 or 1.
    pub fn read_bool(&mut self) -> WireResult<bool> {
        match self.read_octet()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(WireError::InvalidBoolean(other)),
        }
    }

    /// Read an aligned signed 16-bit integer.
    pub fn read_short(&mut self) -> WireResult<i16> {
        self.align(2)?;
        let b: [u8; 2] = self.take(2)?.try_into().expect("take returned 2 bytes");
        Ok(match self.order {
            ByteOrder::BigEndian => i16::from_be_bytes(b),
            ByteOrder::LittleEndian => i16::from_le_bytes(b),
        })
    }

    /// Read an aligned unsigned 16-bit integer.
    pub fn read_ushort(&mut self) -> WireResult<u16> {
        self.align(2)?;
        let b: [u8; 2] = self.take(2)?.try_into().expect("take returned 2 bytes");
        Ok(match self.order {
            ByteOrder::BigEndian => u16::from_be_bytes(b),
            ByteOrder::LittleEndian => u16::from_le_bytes(b),
        })
    }

    /// Read an aligned signed 32-bit integer.
    pub fn read_long(&mut self) -> WireResult<i32> {
        self.align(4)?;
        let b: [u8; 4] = self.take(4)?.try_into().expect("take returned 4 bytes");
        Ok(match self.order {
            ByteOrder::BigEndian => i32::from_be_bytes(b),
            ByteOrder::LittleEndian => i32::from_le_bytes(b),
        })
    }

    /// Read an aligned unsigned 32-bit integer.
    pub fn read_ulong(&mut self) -> WireResult<u32> {
        self.align(4)?;
        let b: [u8; 4] = self.take(4)?.try_into().expect("take returned 4 bytes");
        Ok(match self.order {
            ByteOrder::BigEndian => u32::from_be_bytes(b),
            ByteOrder::LittleEndian => u32::from_le_bytes(b),
        })
    }

    /// Read an aligned signed 64-bit integer.
    pub fn read_longlong(&mut self) -> WireResult<i64> {
        self.align(8)?;
        let b: [u8; 8] = self.take(8)?.try_into().expect("take returned 8 bytes");
        Ok(match self.order {
            ByteOrder::BigEndian => i64::from_be_bytes(b),
            ByteOrder::LittleEndian => i64::from_le_bytes(b),
        })
    }

    /// Read an aligned unsigned 64-bit integer.
    pub fn read_ulonglong(&mut self) -> WireResult<u64> {
        self.align(8)?;
        let b: [u8; 8] = self.take(8)?.try_into().expect("take returned 8 bytes");
        Ok(match self.order {
            ByteOrder::BigEndian => u64::from_be_bytes(b),
            ByteOrder::LittleEndian => u64::from_le_bytes(b),
        })
    }

    /// Read an aligned single-precision float.
    pub fn read_float(&mut self) -> WireResult<f32> {
        self.align(4)?;
        let b: [u8; 4] = self.take(4)?.try_into().expect("take returned 4 bytes");
        Ok(match self.order {
            ByteOrder::BigEndian => f32::from_be_bytes(b),
            ByteOrder::LittleEndian => f32::from_le_bytes(b),
        })
    }

    /// Read an aligned double-precision float.
    pub fn read_double(&mut self) -> WireResult<f64> {
        self.align(8)?;
        let b: [u8; 8] = self.take(8)?.try_into().expect("take returned 8 bytes");
        Ok(match self.order {
            ByteOrder::BigEndian => f64::from_be_bytes(b),
            ByteOrder::LittleEndian => f64::from_le_bytes(b),
        })
    }

    /// Read a CDR string (length includes trailing NUL, which is checked
    /// and stripped).
    pub fn read_string(&mut self) -> WireResult<String> {
        let len = self.read_ulong_seq_len()? as usize;
        if len == 0 {
            // Some encoders emit length 0 for an empty string instead of
            // length 1 + NUL; accept both.
            return Ok(String::new());
        }
        let bytes = self.take(len)?;
        let (body, nul) = bytes.split_at(len - 1);
        if nul != [0] {
            return Err(WireError::BadTag {
                context: "string terminator",
                tag: nul[0] as u32,
            });
        }
        String::from_utf8(body.to_vec()).map_err(|_| WireError::InvalidUtf8)
    }

    /// Read a `sequence<octet>`.
    pub fn read_octets(&mut self) -> WireResult<Vec<u8>> {
        let len = self.read_ulong_seq_len()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    /// Read `n` raw bytes with no length prefix.
    pub fn read_raw(&mut self, n: usize) -> WireResult<&'a [u8]> {
        self.take(n)
    }
}

/// Helper namespace for defensive size checking on sequence lengths.
struct ByteLimit;

impl ByteLimit {
    fn check_seq(v: u32) -> WireResult<u32> {
        if v > MAX_MESSAGE_SIZE {
            Err(WireError::TooLarge {
                declared: v as u64,
                limit: MAX_MESSAGE_SIZE as u64,
            })
        } else {
            Ok(v)
        }
    }
}

impl<'a> CdrReader<'a> {
    /// Read a sequence length, enforcing the defensive size limit so a
    /// corrupt header cannot trigger an unbounded allocation.
    fn read_ulong_seq_len(&mut self) -> WireResult<u32> {
        let v = self.read_ulong()?;
        ByteLimit::check_seq(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(order: ByteOrder) {
        let mut w = CdrWriter::new(order);
        w.write_octet(7);
        w.write_bool(true);
        w.write_short(-42);
        w.write_ushort(42);
        w.write_long(-70000);
        w.write_ulong(70000);
        w.write_longlong(-1 << 40);
        w.write_ulonglong(1 << 40);
        w.write_float(1.5);
        w.write_double(-2.25);
        w.write_string("hello webfindit").unwrap();
        w.write_octets(&[1, 2, 3]);
        let bytes = w.into_bytes();

        let mut r = CdrReader::new(&bytes, order);
        assert_eq!(r.read_octet().unwrap(), 7);
        assert!(r.read_bool().unwrap());
        assert_eq!(r.read_short().unwrap(), -42);
        assert_eq!(r.read_ushort().unwrap(), 42);
        assert_eq!(r.read_long().unwrap(), -70000);
        assert_eq!(r.read_ulong().unwrap(), 70000);
        assert_eq!(r.read_longlong().unwrap(), -1 << 40);
        assert_eq!(r.read_ulonglong().unwrap(), 1 << 40);
        assert_eq!(r.read_float().unwrap(), 1.5);
        assert_eq!(r.read_double().unwrap(), -2.25);
        assert_eq!(r.read_string().unwrap(), "hello webfindit");
        assert_eq!(r.read_octets().unwrap(), vec![1, 2, 3]);
        assert!(r.is_exhausted());
    }

    #[test]
    fn roundtrip_big_endian() {
        roundtrip(ByteOrder::BigEndian);
    }

    #[test]
    fn roundtrip_little_endian() {
        roundtrip(ByteOrder::LittleEndian);
    }

    #[test]
    fn alignment_inserts_padding() {
        let mut w = CdrWriter::new(ByteOrder::BigEndian);
        w.write_octet(1); // pos 1
        w.write_ulong(0xAABBCCDD); // pads to 4
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 8);
        assert_eq!(&bytes[1..4], &[0, 0, 0]);
        assert_eq!(&bytes[4..8], &[0xAA, 0xBB, 0xCC, 0xDD]);
    }

    #[test]
    fn alignment_is_relative_to_buffer_start() {
        let mut w = CdrWriter::new(ByteOrder::LittleEndian);
        w.write_ushort(1); // pos 2
        w.write_double(3.0); // must pad to 8
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 16);
        let mut r = CdrReader::new(&bytes, ByteOrder::LittleEndian);
        assert_eq!(r.read_ushort().unwrap(), 1);
        assert_eq!(r.read_double().unwrap(), 3.0);
    }

    #[test]
    fn frame_writer_aligns_relative_to_body_start() {
        // A frame writer reserves 12 preamble bytes; CDR alignment must
        // be measured from the body start, not the buffer start, or
        // 8-aligned primitives land off by four.
        let mut w = CdrWriter::frame(ByteOrder::BigEndian, Vec::new());
        w.write_octet(1); // body pos 1
        w.write_double(2.5); // pads to body pos 8
        assert_eq!(w.len(), 16);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 12 + 16);
        assert_eq!(&bytes[..12], &[0u8; 12]);
        let mut r = CdrReader::new(&bytes[12..], ByteOrder::BigEndian);
        assert_eq!(r.read_octet().unwrap(), 1);
        assert_eq!(r.read_double().unwrap(), 2.5);
    }

    #[test]
    fn new_in_reuses_and_clears_storage() {
        let mut recycled = Vec::with_capacity(64);
        recycled.extend_from_slice(b"stale");
        let ptr = recycled.as_ptr();
        let mut w = CdrWriter::new_in(ByteOrder::LittleEndian, recycled);
        w.write_ulong(7);
        let bytes = w.into_bytes();
        assert_eq!(bytes.as_ptr(), ptr, "storage reused");
        let mut r = CdrReader::new(&bytes, ByteOrder::LittleEndian);
        assert_eq!(r.read_ulong().unwrap(), 7);
    }

    #[test]
    fn string_rejects_embedded_nul() {
        let mut w = CdrWriter::new(ByteOrder::BigEndian);
        assert!(matches!(
            w.write_string("a\0b"),
            Err(WireError::EmbeddedNul)
        ));
    }

    #[test]
    fn string_rejects_missing_terminator() {
        // length 2, bytes "ab" (no NUL) — terminator check must fire.
        let bytes = [0, 0, 0, 2, b'a', b'b'];
        let mut r = CdrReader::new(&bytes, ByteOrder::BigEndian);
        assert!(r.read_string().is_err());
    }

    #[test]
    fn string_accepts_zero_length() {
        let bytes = [0, 0, 0, 0];
        let mut r = CdrReader::new(&bytes, ByteOrder::BigEndian);
        assert_eq!(r.read_string().unwrap(), "");
    }

    #[test]
    fn truncated_read_reports_eof() {
        let bytes = [0, 0];
        let mut r = CdrReader::new(&bytes, ByteOrder::BigEndian);
        match r.read_ulong() {
            Err(WireError::UnexpectedEof { needed, remaining }) => {
                assert_eq!(needed, 4);
                assert_eq!(remaining, 2);
            }
            other => panic!("expected EOF, got {other:?}"),
        }
    }

    #[test]
    fn bad_boolean_is_rejected() {
        let bytes = [2];
        let mut r = CdrReader::new(&bytes, ByteOrder::BigEndian);
        assert!(matches!(r.read_bool(), Err(WireError::InvalidBoolean(2))));
    }

    #[test]
    fn oversized_sequence_is_rejected() {
        // length u32::MAX sequence
        let bytes = [0xFF, 0xFF, 0xFF, 0xFF];
        let mut r = CdrReader::new(&bytes, ByteOrder::BigEndian);
        assert!(matches!(r.read_octets(), Err(WireError::TooLarge { .. })));
    }

    #[test]
    fn encapsulation_roundtrip_across_orders() {
        // Outer message big-endian, inner encapsulation little-endian —
        // exactly what happens when a VisiBroker-style ORB embeds a profile
        // in an Orbix-style IOR.
        let mut w = CdrWriter::new(ByteOrder::BigEndian);
        w.write_encapsulation(ByteOrder::LittleEndian, |inner| {
            inner.write_ulong(12345);
            inner.write_string("nested")
        })
        .unwrap();
        let bytes = w.into_bytes();

        let mut r = CdrReader::new(&bytes, ByteOrder::BigEndian);
        let encap = r.read_octets().unwrap();
        let mut ir = CdrReader::for_encapsulation(&encap).unwrap();
        assert_eq!(ir.order(), ByteOrder::LittleEndian);
        assert_eq!(ir.read_ulong().unwrap(), 12345);
        assert_eq!(ir.read_string().unwrap(), "nested");
    }
}
