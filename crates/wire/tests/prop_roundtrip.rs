//! Property-based round-trip tests for the wire layer.
//!
//! Invariant under test: for every representable `Value` and every GIOP
//! message, `decode(encode(x)) == x` in both byte orders, and hostile
//! inputs never panic the decoder.

use webfindit_base::prop::{self, string_of, vec_of};
use webfindit_base::rng::StdRng;
use webfindit_wire::cdr::{ByteOrder, CdrReader, CdrWriter};
use webfindit_wire::giop::{self, GiopMessage};
use webfindit_wire::ior::Ior;
use webfindit_wire::value::Value;

const IDENT: &str = "abcdefghijklmnopqrstuvwxyz";
const TEXT: &str = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 _.-";
const HOSTY: &str = "abcdefghijklmnopqrstuvwxyz.0123456789";
const TIDY: &str = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ:/.0123456789";

fn arb_f32(rng: &mut StdRng) -> f32 {
    // Arbitrary bit patterns, excluding NaN (breaks PartialEq).
    loop {
        let f = f32::from_bits(rng.next_u64() as u32);
        if !f.is_nan() {
            return f;
        }
    }
}

fn arb_f64(rng: &mut StdRng) -> f64 {
    loop {
        let f = f64::from_bits(rng.next_u64());
        if !f.is_nan() {
            return f;
        }
    }
}

fn arb_ior(rng: &mut StdRng) -> Ior {
    Ior::new_iiop(
        string_of(rng, TIDY, 1..30),
        string_of(rng, IDENT, 1..12),
        rng.next_u64() as u16,
        vec_of(rng, 0..16, |r| r.next_u64() as u8),
    )
}

/// An arbitrary `Value` tree of bounded depth.
fn arb_value(rng: &mut StdRng, depth: u32) -> Value {
    // At depth 0 only leaves; otherwise leaves 2/3 of the time.
    let n_leaf = 12;
    let pick = if depth == 0 {
        rng.gen_range(0..n_leaf)
    } else {
        rng.gen_range(0..n_leaf + 6)
    };
    match pick {
        0 => Value::Void,
        1 => Value::Null,
        2 => Value::Bool(rng.gen_bool(0.5)),
        3 => Value::Octet(rng.next_u64() as u8),
        4 => Value::Short(rng.next_u64() as i16),
        5 => Value::Long(rng.next_u64() as i32),
        6 => Value::LongLong(rng.next_u64() as i64),
        7 => Value::ULong(rng.next_u64() as u32),
        8 => Value::Float(arb_f32(rng)),
        9 => Value::Double(arb_f64(rng)),
        10 => Value::Str(string_of(rng, TEXT, 0..40)),
        11 => Value::ObjectRef(arb_ior(rng)),
        n if n < n_leaf + 3 => Value::Sequence(vec_of(rng, 0..6, |r| arb_value(r, depth - 1))),
        _ => Value::Struct(vec_of(rng, 0..6, |r| {
            (string_of(r, IDENT, 1..10), arb_value(r, depth - 1))
        })),
    }
}

fn arb_order(rng: &mut StdRng) -> ByteOrder {
    if rng.gen_bool(0.5) {
        ByteOrder::BigEndian
    } else {
        ByteOrder::LittleEndian
    }
}

#[test]
fn value_roundtrips() {
    prop::cases(256, |rng| {
        let v = arb_value(rng, 3);
        let order = arb_order(rng);
        let mut w = CdrWriter::new(order);
        v.encode(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut r = CdrReader::new(&bytes, order);
        let back = Value::decode(&mut r).unwrap();
        assert_eq!(back, v);
        assert!(r.is_exhausted());
    });
}

#[test]
fn request_roundtrips() {
    prop::cases(256, |rng| {
        let id = rng.next_u64() as u32;
        let key = vec_of(rng, 0..32, |r| r.next_u64() as u8);
        let op = string_of(rng, IDENT, 1..24);
        let args = vec_of(rng, 0..4, |r| arb_value(r, 2));
        let order = arb_order(rng);
        let msg = giop::request(id, key, op, args);
        let frame = msg.encode(order).unwrap();
        assert_eq!(GiopMessage::decode_frame(&frame).unwrap(), msg);
    });
}

#[test]
fn reply_roundtrips() {
    prop::cases(256, |rng| {
        let id = rng.next_u64() as u32;
        let body = arb_value(rng, 3);
        let order = arb_order(rng);
        let msg = giop::reply_ok(id, body);
        let frame = msg.encode(order).unwrap();
        assert_eq!(GiopMessage::decode_frame(&frame).unwrap(), msg);
    });
}

#[test]
fn decoder_never_panics_on_noise() {
    prop::cases(256, |rng| {
        // Any byte soup must produce Ok or Err — never a panic.
        let bytes = vec_of(rng, 0..256, |r| r.next_u64() as u8);
        let _ = GiopMessage::decode_frame(&bytes);
        let mut r = CdrReader::new(&bytes, ByteOrder::BigEndian);
        let _ = Value::decode(&mut r);
    });
}

#[test]
fn decoder_never_panics_on_bitflipped_frames() {
    prop::cases(256, |rng| {
        let v = arb_value(rng, 3);
        let order = arb_order(rng);
        let msg = giop::reply_ok(1, v);
        let mut frame = msg.encode(order).unwrap();
        let i = rng.gen_range(0..frame.len());
        let flip_mask = rng.gen_range(1u8..=255);
        frame[i] ^= flip_mask;
        let _ = GiopMessage::decode_frame(&frame);
    });
}

#[test]
fn ior_stringified_roundtrips() {
    prop::cases(256, |rng| {
        let ior = Ior::new_iiop(
            string_of(rng, TIDY, 1..40),
            string_of(rng, HOSTY, 1..20),
            rng.next_u64() as u16,
            vec_of(rng, 0..24, |r| r.next_u64() as u8),
        );
        let s = ior.to_stringified();
        assert_eq!(Ior::from_stringified(&s).unwrap(), ior);
    });
}
